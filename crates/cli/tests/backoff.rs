//! Client-backoff battery for `serve --connect`: the deterministic
//! jittered schedule is monotone-bounded (proptest), a client started
//! *before* its server succeeds by retrying refused connections, and a
//! `busy` reply with a `retry_after_ms` hint is retried rather than
//! surfaced as failure.

use mule_cli::retry::backoff_delays_ms;
use proptest::prelude::*;

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    let code = mule_cli::run(&args, &mut stdout, &mut stderr);
    (
        code,
        String::from_utf8_lossy(&stdout).into_owned(),
        String::from_utf8_lossy(&stderr).into_owned(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The schedule is monotone-bounded for every (seed, base, cap,
    /// attempts): non-decreasing, never above the cap, never below
    /// half the (capped) base envelope, and each delay within its
    /// attempt's exponential envelope.
    #[test]
    fn backoff_schedule_is_monotone_bounded(
        seed in any::<u64>(),
        base_ms in 1u64..5_000,
        max_ms in 1u64..60_000,
        attempts in 0u32..24,
    ) {
        let delays = backoff_delays_ms(seed, base_ms, max_ms, attempts);
        prop_assert_eq!(delays.len(), attempts as usize);
        prop_assert!(
            delays.windows(2).all(|w| w[0] <= w[1]),
            "schedule must never shrink: {:?}", delays
        );
        let floor = base_ms.min(max_ms) / 2;
        for (i, &d) in delays.iter().enumerate() {
            prop_assert!(d <= max_ms, "delay {i} = {d} above cap {max_ms}");
            prop_assert!(d >= floor, "delay {i} = {d} below floor {floor}");
            // Within the attempt's envelope: min(max, base·2^i).
            let envelope = base_ms
                .saturating_mul(1u64.checked_shl(i as u32).unwrap_or(u64::MAX))
                .min(max_ms);
            prop_assert!(
                d <= envelope,
                "delay {i} = {d} above its envelope {envelope}"
            );
        }
    }

    /// Determinism: the same inputs always give the same schedule.
    #[test]
    fn backoff_schedule_is_deterministic(seed in any::<u64>()) {
        prop_assert_eq!(
            backoff_delays_ms(seed, 50, 2000, 12),
            backoff_delays_ms(seed, 50, 2000, 12)
        );
    }
}

/// The connect-refused retry path: the client is launched while
/// nothing is listening, and the server comes up *after* it. With
/// backoff the request must still succeed — and the final report must
/// say how many attempts it took.
#[test]
fn connect_succeeds_against_server_started_after_the_client() {
    // Learn a free port, then release it for the late server.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let server_addr = addr.clone();
    let (tx, rx) = std::sync::mpsc::channel();
    let starter = std::thread::spawn(move || {
        // Let the client burn its first attempts against the free port.
        std::thread::sleep(std::time::Duration::from_millis(400));
        let server = mule_cli::serve::Server::start(
            mule_cli::serve::ServeConfig {
                addr: server_addr,
                ..mule_cli::serve::ServeConfig::default()
            },
            mule_cli::serve::log_to(Box::new(std::io::sink())),
        )
        .expect("late server start");
        tx.send(server).unwrap();
    });

    let (code, stdout, stderr) = run_cli(&[
        "serve",
        "--connect",
        &addr,
        "--retries",
        "10",
        "--retry-base-ms",
        "40",
        "--retry-max-ms",
        "400",
        "--request",
        r#"{"op":"ping"}"#,
    ]);
    assert_eq!(
        code, 0,
        "client must succeed once the server is up: {stderr}"
    );
    assert!(stdout.contains(r#""ok":true"#), "ping reply: {stdout}");
    assert!(
        stdout.contains("# retry: attempt"),
        "attempt counters belong in the final report: {stdout}"
    );
    assert!(
        stdout.contains("connect failure"),
        "the report names the transient fault: {stdout}"
    );

    starter.join().unwrap();
    let server = rx.recv().unwrap();
    server.request_shutdown();
    server.join();
}

/// The `busy` retry path, against a hand-rolled one-shot listener: the
/// first connection is shed with a typed `busy` + `retry_after_ms`
/// hint, the second is answered. The client must retry and exit 0.
#[test]
fn busy_reply_is_retried_honoring_the_hint() {
    use std::io::{BufRead, BufReader, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shedder = std::thread::spawn(move || {
        // First connection: read the frame, shed with a hint, close.
        let (mut s, _) = listener.accept().unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        s.write_all(
            b"{\"ok\":false,\"error\":\"busy\",\"message\":\"shed\",\"retry_after_ms\":25}\n",
        )
        .unwrap();
        drop(s);
        // Second connection: answer properly.
        let (mut s, _) = listener.accept().unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        s.write_all(b"{\"ok\":true,\"op\":\"ping\"}\n").unwrap();
    });

    let (code, stdout, stderr) = run_cli(&[
        "serve",
        "--connect",
        &addr,
        "--retries",
        "3",
        "--retry-base-ms",
        "10",
        "--request",
        r#"{"op":"ping"}"#,
    ]);
    assert_eq!(code, 0, "busy must be retried, not surfaced: {stderr}");
    assert!(stdout.contains(r#""ok":true"#), "final reply: {stdout}");
    assert!(
        stdout.contains("1 busy reply"),
        "the report counts the busy shed: {stdout}"
    );
    shedder.join().unwrap();
}

/// Retries exhausted: a persistently refused connection still fails
/// with exit 2 and a message carrying the attempt counters.
#[test]
fn exhausted_retries_fail_typed_with_attempt_counters() {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe); // nothing will listen here

    let (code, _stdout, stderr) = run_cli(&[
        "serve",
        "--connect",
        &addr,
        "--retries",
        "2",
        "--retry-base-ms",
        "5",
        "--retry-max-ms",
        "20",
    ]);
    assert_eq!(code, 2, "exhausted retries are a usage-level failure");
    assert!(stderr.contains("cannot connect"), "{stderr}");
    assert!(
        stderr.contains("gave up after 3 attempts") && stderr.contains("3 connect failures"),
        "attempt counters in the failure report: {stderr}"
    );
}
