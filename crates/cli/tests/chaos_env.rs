//! The `MULE_FAULT_PLAN` chaos hook, end to end through `mule prepare`
//! (the CI chaos-smoke step drives the same path from the shell).
//!
//! A single-`#[test]` binary on purpose: the hook reads a process-wide
//! environment variable, which must not race the other in-process CLI
//! batteries running in parallel threads.

use std::fs;

fn run(args: &[&str]) -> (i32, String, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = mule_cli::run(&args, &mut out, &mut err);
    (
        code,
        String::from_utf8(out).unwrap(),
        String::from_utf8(err).unwrap(),
    )
}

#[test]
fn fault_plan_env_crashes_the_save_and_a_clean_retry_recovers() {
    let dir = std::env::temp_dir().join(format!("mule-chaos-env-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.txt");
    fs::write(&graph, "0 1 0.9\n1 2 0.9\n0 2 0.9\n2 3 0.6\n").unwrap();
    let graph = graph.to_string_lossy().into_owned();
    let cat = dir.join("c.ugq").to_string_lossy().into_owned();
    let tmp = format!("{cat}.tmp");

    // A crashed save announces the armed plan, fails typed (exit 2),
    // commits nothing, and leaves the orphan a real power cut would.
    std::env::set_var("MULE_FAULT_PLAN", "crash-after:64");
    let (code, out, err) = run(&["prepare", &graph, "--alpha", "0.5", "--out", &cat]);
    std::env::remove_var("MULE_FAULT_PLAN");
    assert_eq!(code, 2, "crashed save must fail: {err}");
    assert!(
        out.contains("# fault plan armed: CrashAfterPrefix(64)"),
        "the armed plan is announced: {out}"
    );
    assert!(err.contains("injected crash"), "typed message: {err}");
    assert!(
        !std::path::Path::new(&cat).exists(),
        "a crashed first save must not commit a catalog"
    );
    assert!(
        std::path::Path::new(&tmp).exists(),
        "the crash leaves its orphan temp file"
    );

    // With the variable gone the retry succeeds — the guard in
    // `prepare` disarmed the plan, nothing is sticky across
    // invocations — and the open path cleared the orphan.
    let (code, out, err) = run(&["prepare", &graph, "--alpha", "0.5", "--out", &cat]);
    assert_eq!(code, 0, "clean retry must succeed: {err}");
    assert!(!out.contains("fault plan"), "no plan to announce: {out}");
    let (code, out, err) = run(&["stat", &cat]);
    assert_eq!(code, 0, "committed catalog must verify: {err}");
    assert!(out.contains("integrity"), "stat report: {out}");
    assert!(
        !std::path::Path::new(&tmp).exists(),
        "the successful save replaced the orphan"
    );

    // An unparsable spec is ignored, not fatal: a stale variable must
    // never brick the tool.
    std::env::set_var("MULE_FAULT_PLAN", "not-a-plan");
    let cat2 = dir.join("c2.ugq").to_string_lossy().into_owned();
    let (code, out, err) = run(&["prepare", &graph, "--alpha", "0.5", "--out", &cat2]);
    std::env::remove_var("MULE_FAULT_PLAN");
    assert_eq!(code, 0, "bad spec is ignored: {err}");
    assert!(!out.contains("fault plan"), "nothing armed: {out}");

    let _ = fs::remove_dir_all(&dir);
}
