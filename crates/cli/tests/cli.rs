//! In-process integration tests for the `mule` CLI: every subcommand,
//! happy paths and error paths, driven through `mule_cli::run` with
//! captured output.

use std::fs;
use std::path::{Path, PathBuf};

fn run(args: &[&str]) -> (i32, String, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = mule_cli::run(&args, &mut out, &mut err);
    (
        code,
        String::from_utf8(out).unwrap(),
        String::from_utf8(err).unwrap(),
    )
}

/// Per-test scratch directory.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mule-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write the standard text fixture: solid triangle + shaky pendant.
fn fixture_graph(dir: &Path) -> String {
    let path = dir.join("g.txt");
    fs::write(&path, "# fixture\n0 1 0.9\n1 2 0.9\n0 2 0.9\n2 3 0.6\n").unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn no_command_prints_usage() {
    let (code, _, err) = run(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("USAGE"));
}

#[test]
fn unknown_command_rejected() {
    let (code, _, err) = run(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(err.contains("frobnicate"));
}

#[test]
fn help_prints_usage_on_stdout() {
    let (code, out, _) = run(&["help"]);
    assert_eq!(code, 0);
    assert!(out.contains("enumerate"));
}

#[test]
fn stats_reports_counts() {
    let dir = scratch("stats");
    let g = fixture_graph(&dir);
    let (code, out, err) = run(&["stats", &g]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("vertices:     4"));
    assert!(out.contains("edges:        4"));
    assert!(out.contains("degeneracy:   2"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn enumerate_to_stdout_and_file() {
    let dir = scratch("enum");
    let g = fixture_graph(&dir);
    let (code, out, err) = run(&["enumerate", &g, "--alpha", "0.5"]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("0 1 2"), "{out}");
    assert!(out.contains("2 3"));

    let out_file = dir.join("cliques.txt").to_string_lossy().into_owned();
    let (code, msg, _) = run(&["enumerate", &g, "--alpha", "0.5", "--out", &out_file]);
    assert_eq!(code, 0);
    assert!(msg.contains("wrote 2 cliques"));
    let content = fs::read_to_string(&out_file).unwrap();
    assert!(content.contains("0 1 2"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn enumerate_count_only_and_min_size() {
    let dir = scratch("count");
    let g = fixture_graph(&dir);
    let (code, out, _) = run(&["enumerate", &g, "--alpha", "0.5", "--count-only"]);
    assert_eq!(code, 0);
    assert!(out.contains("cliques:      2"));
    let (code, out, _) = run(&["enumerate", &g, "--alpha", "0.5", "--min-size", "3"]);
    assert_eq!(code, 0);
    assert!(out.contains("0 1 2"));
    assert!(!out.contains("2 3\n"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn enumerate_pipeline_flags() {
    let dir = scratch("pipeline");
    let g = fixture_graph(&dir);
    // The pipeline (default) and the direct path must agree byte for
    // byte on the emitted clique list.
    let (code, piped, err) = run(&["enumerate", &g, "--alpha", "0.5"]);
    assert_eq!(code, 0, "{err}");
    let (code, direct, _) = run(&["enumerate", &g, "--alpha", "0.5", "--no-prune"]);
    assert_eq!(code, 0);
    assert_eq!(piped, direct);

    // --prune-report prefixes commented stage accounting.
    let (code, out, err) = run(&["enumerate", &g, "--alpha", "0.5", "--prune-report"]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("# prepare:"), "{out}");
    assert!(out.contains("components"), "{out}");
    // The clique payload is still intact after the report.
    assert!(out.contains("0 1 2"), "{out}");

    // Report lines are comments, so a written file still verifies.
    let (code, _, err) = run(&[
        "enumerate",
        &g,
        "--alpha",
        "0.5",
        "--prune-report",
        "--no-prune",
    ]);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("--no-prune"));

    // min-size flows through the pipeline stages.
    let (code, out, _) = run(&[
        "enumerate",
        &g,
        "--alpha",
        "0.5",
        "--min-size",
        "3",
        "--prune-report",
        "--count-only",
    ]);
    assert_eq!(code, 0);
    assert!(out.contains("cliques:      1"), "{out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn enumerate_index_flags() {
    let dir = scratch("index");
    let g = fixture_graph(&dir);
    // Every index mode — and a zero dense budget — is output-neutral:
    // the tiered index only changes how the filter answers probes.
    let (code, reference, err) = run(&["enumerate", &g, "--alpha", "0.5"]);
    assert_eq!(code, 0, "{err}");
    for extra in [
        &["--index-mode", "never"][..],
        &["--index-mode", "always"][..],
        &["--index-mode", "auto", "--index-budget", "0"][..],
        &["--index-mode", "never", "--no-prune"][..],
    ] {
        let mut args = vec!["enumerate", &g, "--alpha", "0.5"];
        args.extend_from_slice(extra);
        let (code, out, err) = run(&args);
        assert_eq!(code, 0, "{extra:?}: {err}");
        assert_eq!(out, reference, "{extra:?}");
    }
    // Bad mode values are usage errors.
    let (code, _, err) = run(&[
        "enumerate",
        &g,
        "--alpha",
        "0.5",
        "--index-mode",
        "sometimes",
    ]);
    assert_eq!(code, 2);
    assert!(err.contains("--index-mode"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn enumerate_parallel_matches_sequential() {
    let dir = scratch("par");
    let g = fixture_graph(&dir);
    let (_, seq, _) = run(&["enumerate", &g, "--alpha", "0.5"]);
    let (_, par, _) = run(&["enumerate", &g, "--alpha", "0.5", "--threads", "3"]);
    // Same cliques (header lines identical too).
    assert_eq!(seq, par);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn enumerate_requires_alpha() {
    let dir = scratch("noalpha");
    let g = fixture_graph(&dir);
    let (code, _, err) = run(&["enumerate", &g]);
    assert_eq!(code, 2);
    assert!(err.contains("--alpha"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn topk_orders_by_probability() {
    let dir = scratch("topk");
    let g = fixture_graph(&dir);
    let (code, out, err) = run(&["topk", &g, "--alpha", "0.5", "--k", "1"]);
    assert_eq!(code, 0, "{err}");
    // 0.9³ = 0.729 beats 0.6.
    assert!(out.contains("0 1 2"));
    assert!(!out.contains("2 3"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn topk_skeleton_uses_zou_semantics() {
    let dir = scratch("zou");
    // Triangle with one strong and two weak edges: the only
    // skeleton-maximal clique is the whole triangle, even though the
    // strong edge dominates under α-maximal semantics.
    let path = dir.join("z.txt");
    fs::write(&path, "0 1 0.9\n1 2 0.1\n0 2 0.1\n").unwrap();
    let g = path.to_string_lossy().into_owned();
    let (code, out, err) = run(&["topk", &g, "--k", "1", "--skeleton"]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("0 1 2"), "{out}");
    // α-maximal semantics at α = 0.5: the maximal cliques are {0,1}
    // (prob 0.9) and the isolated singleton {2} (prob 1.0) — the triangle
    // does not appear at all, and the singleton outranks the edge.
    let (code, out, _) = run(&["topk", &g, "--k", "2", "--alpha", "0.5"]);
    assert_eq!(code, 0);
    assert!(!out.contains("0 1 2"), "{out}");
    assert!(out.contains("1.0 2"), "{out}");
    assert!(out.contains("0.9 0 1"), "{out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_accepts_good_and_rejects_bad() {
    let dir = scratch("verify");
    let g = fixture_graph(&dir);
    let cliques = dir.join("c.txt").to_string_lossy().into_owned();
    let (code, _, _) = run(&["enumerate", &g, "--alpha", "0.5", "--out", &cliques]);
    assert_eq!(code, 0);
    let (code, out, _) = run(&[
        "verify",
        &g,
        "--alpha",
        "0.5",
        "--cliques",
        &cliques,
        "--complete",
    ]);
    assert_eq!(code, 0);
    assert!(out.contains("OK"));

    // Corrupt the list: drop one clique, add a non-maximal one.
    fs::write(dir.join("bad.txt"), "0.9 0 1\n").unwrap();
    let bad = dir.join("bad.txt").to_string_lossy().into_owned();
    let (code, _, err) = run(&[
        "verify",
        &g,
        "--alpha",
        "0.5",
        "--cliques",
        &bad,
        "--complete",
    ]);
    assert_eq!(code, 1, "{err}");
    assert!(err.contains("violations"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sample_matches_exact() {
    let dir = scratch("sample");
    let g = fixture_graph(&dir);
    let (code, out, err) = run(&["sample", &g, "--clique", "0,1,2", "--samples", "50000"]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("0.729"), "{out}");
    let (code, out, _) = run(&["sample", &g, "--clique", "0,3"]);
    assert_eq!(code, 0);
    assert!(out.contains("not a skeleton clique"));
    let (code, _, err) = run(&["sample", &g, "--clique", "0,0"]);
    assert_eq!(code, 2);
    assert!(err.contains("duplicates"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn convert_text_binary_round_trip() {
    let dir = scratch("convert");
    let g = fixture_graph(&dir);
    let bin = dir.join("g.ugb").to_string_lossy().into_owned();
    let back = dir.join("g2.txt").to_string_lossy().into_owned();
    let (code, out, err) = run(&["convert", &g, &bin]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("4 edges"));
    let (code, _, _) = run(&["convert", &bin, &back]);
    assert_eq!(code, 0);
    // Enumeration through both forms agrees.
    let (_, a, _) = run(&["enumerate", &g, "--alpha", "0.5"]);
    let (_, b, _) = run(&["enumerate", &bin, "--alpha", "0.5"]);
    let (_, c, _) = run(&["enumerate", &back, "--alpha", "0.5"]);
    assert_eq!(a, b);
    assert_eq!(a, c);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn convert_snap_with_assignment() {
    let dir = scratch("snap");
    let snap = dir.join("s.txt");
    fs::write(&snap, "# snap\n10 20\n20 30\n30 10\n").unwrap();
    let snap = snap.to_string_lossy().into_owned();
    let out_path = dir.join("s.ugb").to_string_lossy().into_owned();
    let (code, _, err) = run(&[
        "convert",
        &snap,
        &out_path,
        "--snap",
        "--assign",
        "fixed:0.8",
        "--seed",
        "1",
    ]);
    assert_eq!(code, 0, "{err}");
    let (code, out, _) = run(&["enumerate", &out_path, "--alpha", "0.5"]);
    assert_eq!(code, 0);
    // Triangle with p = 0.8: 0.512 ≥ 0.5 → one maximal clique.
    assert!(out.contains("count=1"), "{out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn generate_and_datasets() {
    let dir = scratch("gen");
    let out_path = dir.join("ba.ugb").to_string_lossy().into_owned();
    let (code, out, err) = run(&[
        "generate",
        "--dataset",
        "BA5000",
        "--scale",
        "0.01",
        "--out",
        &out_path,
        "--seed",
        "7",
    ]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("generated BA5000"));
    let (code, out, _) = run(&["stats", &out_path]);
    assert_eq!(code, 0);
    assert!(out.contains("vertices:     50"));

    let (code, out, _) = run(&["datasets"]);
    assert_eq!(code, 0);
    assert!(out.contains("wiki-vote"));
    assert_eq!(out.lines().count(), 13);

    let (code, _, err) = run(&["generate", "--dataset", "nope", "--out", &out_path]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown dataset"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kcore_profiles_and_thresholds() {
    let dir = scratch("kcore");
    let g = fixture_graph(&dir);
    let (code, out, err) = run(&["kcore", &g]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("max expected-degree core"));
    assert!(out.contains("core-size profile"));
    let (code, out, _) = run(&["kcore", &g, "--k", "1.5"]);
    assert_eq!(code, 0);
    // Triangle members have expected degree 1.8 within the triangle.
    assert!(out.contains("1.5-core: 3 vertices"), "{out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn worlds_reports_sampled_stats() {
    let dir = scratch("worlds");
    let g = fixture_graph(&dir);
    let (code, out, err) = run(&["worlds", &g, "--worlds", "10", "--seed", "3"]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("worlds sampled:        10"));
    assert!(out.contains("maximal cliques/world"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_reports_cleanly() {
    let (code, _, err) = run(&["stats", "/nonexistent/graph.txt"]);
    assert_eq!(code, 2);
    assert!(err.contains("cannot open"));
}

#[test]
fn prepare_stat_and_catalog_enumerate() {
    let dir = scratch("catalog");
    let g = fixture_graph(&dir);
    let cat = dir.join("g.ugq").to_string_lossy().into_owned();
    let (code, out, err) = run(&["prepare", &g, "--alpha", "0.5", "--out", &cat]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("prepared"), "{out}");

    // The header summary reflects the prepare-time settings.
    let (code, out, err) = run(&["stat", &cat]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("format:       UGQ1 v1"), "{out}");
    assert!(out.contains("alpha:        0.5"), "{out}");
    assert!(out.contains("index mode:   auto"), "{out}");
    assert!(out.contains("graph:        4 vertices, 4 edges"), "{out}");
    assert!(out.contains("integrity:    OK"), "{out}");

    // --list dumps the TOC with per-section CRC status.
    let (code, out, _) = run(&["stat", &cat, "--list"]);
    assert_eq!(code, 0);
    for section in [
        "component.0.graph",
        "component.0.map",
        "singletons",
        "schedule",
        "report",
    ] {
        assert!(out.contains(section), "missing {section} in {out}");
    }
    assert!(out.contains("OK"));
    assert!(!out.contains("BAD"), "{out}");

    // Catalog-routed enumeration is byte-identical to the direct run.
    let (_, direct, _) = run(&["enumerate", &g, "--alpha", "0.5"]);
    let (code, routed, err) = run(&["enumerate", "--catalog", &cat]);
    assert_eq!(code, 0, "{err}");
    assert_eq!(routed, direct);
    let (code, counted, _) = run(&["enumerate", "--catalog", &cat, "--count-only"]);
    assert_eq!(code, 0);
    assert!(counted.contains("cliques:      2"), "{counted}");
    let (code, threaded, _) = run(&["enumerate", "--catalog", &cat, "--threads", "3"]);
    assert_eq!(code, 0);
    assert_eq!(threaded, direct);
    // The stored prepare report is served from the catalog too.
    let (code, reported, _) = run(&["enumerate", "--catalog", &cat, "--prune-report"]);
    assert_eq!(code, 0);
    assert!(reported.contains("# prepare:"), "{reported}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn catalog_flag_conflicts_are_rejected() {
    let dir = scratch("catalog-conflict");
    let g = fixture_graph(&dir);
    let cat = dir.join("g.ugq").to_string_lossy().into_owned();
    let (code, _, err) = run(&["prepare", &g, "--alpha", "0.5", "--out", &cat]);
    assert_eq!(code, 0, "{err}");
    // Prepare-time settings cannot be respecified at open time, and the
    // graph operand is replaced by the catalog.
    for extra in [
        &["--alpha", "0.5"][..],
        &["--min-size", "3"][..],
        &["--no-prune"][..],
        &["--index-mode", "never"][..],
        &["--index-budget", "0"][..],
    ] {
        let mut args = vec!["enumerate", "--catalog", cat.as_str()];
        args.extend_from_slice(extra);
        let (code, _, err) = run(&args);
        assert_eq!(code, 2, "{extra:?} accepted");
        assert!(err.contains("--catalog"), "{extra:?}: {err}");
    }
    let (code, _, err) = run(&["enumerate", &g, "--catalog", &cat]);
    assert_eq!(code, 2);
    assert!(err.contains("graph operand"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_catalog_fails_with_typed_message() {
    let dir = scratch("catalog-corrupt");
    let g = fixture_graph(&dir);
    let cat_path = dir.join("g.ugq");
    let cat = cat_path.to_string_lossy().into_owned();
    let (code, _, err) = run(&["prepare", &g, "--alpha", "0.5", "--out", &cat]);
    assert_eq!(code, 0, "{err}");

    // Flip the last payload byte (inside the report section): the file
    // still opens structurally, but integrity must fail loudly.
    let mut bytes = fs::read(&cat_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fs::write(&cat_path, &bytes).unwrap();

    let (code, _, err) = run(&["stat", &cat]);
    assert_eq!(code, 2);
    assert!(err.contains("corrupt UGQ1 catalog"), "{err}");
    let (code, out, err) = run(&["stat", &cat, "--list"]);
    assert_eq!(code, 2);
    assert!(out.contains("BAD"), "{out}");
    assert!(err.contains("failed CRC"), "{err}");
    let (code, _, err) = run(&["enumerate", "--catalog", &cat, "--count-only"]);
    assert_eq!(code, 2);
    assert!(err.contains("corrupt UGQ1 catalog"), "{err}");

    // Truncation and a missing file are also typed errors.
    fs::write(&cat_path, &bytes[..40]).unwrap();
    let (code, _, err) = run(&["stat", &cat]);
    assert_eq!(code, 2);
    assert!(err.contains("corrupt UGQ1 catalog"), "{err}");
    let (code, _, err) = run(&["enumerate", "--catalog", "/nonexistent/x.ugq"]);
    assert_eq!(code, 2);
    assert!(err.contains("error"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

/// `mule stat` on a path that does not exist is a *usage* error (exit
/// 2) naming the file — not a "corrupt catalog" claim about a file
/// that was never there, and never a panic.
#[test]
fn stat_on_nonexistent_path_is_a_typed_usage_error() {
    let (code, out, err) = run(&["stat", "/nonexistent/catalog.ugq"]);
    assert_eq!(code, 2);
    assert!(out.is_empty(), "no partial report: {out}");
    assert!(
        err.contains("cannot open catalog") && err.contains("/nonexistent/catalog.ugq"),
        "the error must name the file and the failure: {err}"
    );
    assert!(
        !err.contains("corrupt"),
        "a missing file is not a corrupt one: {err}"
    );
}

#[test]
fn update_appends_replays_and_compacts() {
    let dir = scratch("update");
    let g = fixture_graph(&dir); // triangle 0-1-2 (0.9) + pendant 2-3 (0.6)
    let cat = dir.join("g.ugq").to_string_lossy().into_owned();
    let (code, _, err) = run(&["prepare", &g, "--alpha", "0.5", "--out", &cat]);
    assert_eq!(code, 0, "{err}");

    // Batch: add edge 1–3 and strengthen 2–3 → new maximal clique 1 2 3.
    let edges = dir.join("delta.txt");
    fs::write(&edges, "# batch\n+ 1 3 0.8\n= 2 3 0.9\n").unwrap();
    let (code, out, err) = run(&["update", &cat, "--edges", edges.to_str().unwrap()]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("applied 2 op(s)"), "{out}");
    assert!(out.contains("1 pending"), "{out}");

    // Cold open replays the pending delta.
    let (code, out, err) = run(&["enumerate", "--catalog", &cat]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("0 1 2") && out.contains("1 2 3"), "{out}");

    // The delta section is visible (and checksummed) in the TOC.
    let (code, out, _) = run(&["stat", &cat, "--list"]);
    assert_eq!(code, 0);
    assert!(out.contains("delta.0"), "{out}");

    // Compaction folds it in; answers are unchanged.
    let (code, out, err) = run(&["update", &cat, "--compact"]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("1 delta section(s) folded"), "{out}");
    let (code, out, _) = run(&["enumerate", "--catalog", &cat]);
    assert_eq!(code, 0);
    assert!(out.contains("1 2 3"), "{out}");

    // A rejected batch exits 2 and leaves the file byte-identical.
    let before = fs::read(&cat).unwrap();
    fs::write(&edges, "- 0 3\n").unwrap();
    let (code, _, err) = run(&["update", &cat, "--edges", edges.to_str().unwrap()]);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("delta rejected"), "{err}");
    assert_eq!(fs::read(&cat).unwrap(), before);

    // Malformed batch text: line-numbered parse error, exit 2.
    fs::write(&edges, "+ 1 nope 0.5\n").unwrap();
    let (code, _, err) = run(&["update", &cat, "--edges", edges.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(err.contains("line 1"), "{err}");

    // Nothing to do is a usage error.
    let (code, _, err) = run(&["update", &cat]);
    assert_eq!(code, 2);
    assert!(err.contains("nothing to do"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}
