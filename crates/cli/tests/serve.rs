//! Fault-tolerance battery for `mule serve`: the server must survive
//! every hostile scenario below — malformed, oversized and truncated
//! frames, dead catalogs, over-deadline queries, panicking requests,
//! mid-stream disconnects, load shedding — with exactly one typed
//! reply (or a closed connection) per request and no process death.
//! The final scenario is the clean drain-and-exit path.

use mule_cli::serve::{log_to, ServeConfig, Server};
use mule_cli::wire::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// One request/reply client over a persistent connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
    }

    fn read_reply(&mut self) -> Json {
        let line = self.read_line().expect("server closed without a reply");
        Json::parse(&line).unwrap_or_else(|e| panic!("unparseable reply {line:?}: {e}"))
    }

    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }

    fn roundtrip(&mut self, frame: &str) -> Json {
        self.send_raw(frame.as_bytes());
        self.send_raw(b"\n");
        self.read_reply()
    }
}

/// One-shot request on a fresh connection.
fn request(addr: SocketAddr, frame: &str) -> Json {
    Client::connect(addr).roundtrip(frame)
}

fn assert_ok(reply: &Json, what: &str) {
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{what}: {reply:?}"
    );
}

fn assert_err(reply: &Json, code: &str, what: &str) {
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(false)),
        "{what}: {reply:?}"
    );
    assert_eq!(
        reply.get("error").and_then(Json::as_str),
        Some(code),
        "{what}: {reply:?}"
    );
}

/// A dense-ish random graph big enough that enumeration does real
/// work (search nodes ≫ one probe interval), prepared and saved as a
/// catalog. Returns `(catalog path, expected count, expected pairs)`.
fn make_catalog(dir: &std::path::Path, name: &str, n: usize, seed: u64) -> TestCatalog {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ugraph_core::GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < 0.4 {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>() * 0.5).unwrap();
            }
        }
    }
    let g = b.build();
    let mut session = mule::Query::new(&g).alpha(0.05).prepare().unwrap();
    let pairs = session.collect().unwrap();
    let stats = *session.stats();
    let path = dir.join(name);
    session.save(&path).unwrap();
    TestCatalog {
        path: path.to_str().unwrap().to_string(),
        count: pairs.len() as u64,
        pairs,
        search_nodes: stats.calls,
    }
}

struct TestCatalog {
    path: String,
    count: u64,
    pairs: Vec<(Vec<u32>, f64)>,
    search_nodes: u64,
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg, log_to(Box::new(std::io::sink()))).expect("server start")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mule-serve-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The main battery: 20+ hostile scenarios against one server, then a
/// clean shutdown. Single `#[test]` so the scenarios share the server
/// and their count is explicit.
#[test]
fn server_survives_hostile_battery_then_drains_cleanly() {
    let dir = temp_dir("battery");
    let cat = make_catalog(&dir, "main.ugq", 48, 7);
    let cat2 = make_catalog(&dir, "second.ugq", 20, 11);
    assert!(
        cat.search_nodes > 2048,
        "battery graph too small to exercise amortized probes ({} nodes)",
        cat.search_nodes
    );

    let server = start(ServeConfig {
        danger_test_ops: true,
        cache_capacity: 1, // force eviction traffic between the two catalogs
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let mut scenarios = 0u32;

    // 1. ping
    assert_ok(&request(addr, r#"{"op":"ping"}"#), "ping");
    scenarios += 1;

    // 2. count matches the direct session
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{}"}}"#, cat.path),
    );
    assert_ok(&reply, "count");
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(cat.count));
    scenarios += 1;

    // 3. enumerate matches the direct session, probabilities bit-exact
    let reply = request(
        addr,
        &format!(r#"{{"op":"enumerate","catalog":"{}"}}"#, cat.path),
    );
    assert_ok(&reply, "enumerate");
    let Some(Json::Arr(cliques)) = reply.get("cliques") else {
        panic!("no cliques array")
    };
    let Some(Json::Arr(probs)) = reply.get("probs") else {
        panic!("no probs array")
    };
    assert_eq!(cliques.len(), cat.pairs.len());
    for (i, ((want_c, want_p), (got_c, got_p))) in
        cat.pairs.iter().zip(cliques.iter().zip(probs)).enumerate()
    {
        let got_c: Vec<u32> = match got_c {
            Json::Arr(vs) => vs.iter().map(|v| v.as_u64().unwrap() as u32).collect(),
            _ => panic!("clique {i} not an array"),
        };
        assert_eq!(&got_c, want_c, "clique {i}");
        assert_eq!(
            got_p.as_f64().unwrap().to_bits(),
            want_p.to_bits(),
            "prob {i} not bit-exact over the wire"
        );
    }
    scenarios += 1;

    // 4. enumerate with a row cap sets truncated and returns a prefix
    let reply = request(
        addr,
        &format!(r#"{{"op":"enumerate","catalog":"{}","limit":3}}"#, cat.path),
    );
    assert_ok(&reply, "enumerate limit");
    assert_eq!(reply.get("truncated"), Some(&Json::Bool(true)));
    let Some(Json::Arr(capped)) = reply.get("cliques") else {
        panic!()
    };
    assert_eq!(capped.len(), 3);
    scenarios += 1;

    // 5. top_k matches the direct session
    let reply = request(
        addr,
        &format!(r#"{{"op":"top_k","catalog":"{}","k":2}}"#, cat.path),
    );
    assert_ok(&reply, "top_k");
    scenarios += 1;

    // 6. malformed JSON gets bad_request — and the connection survives
    let mut c = Client::connect(addr);
    assert_err(&c.roundtrip("{nope, not json"), "bad_request", "malformed");
    assert_ok(&c.roundtrip(r#"{"op":"ping"}"#), "ping after malformed");
    drop(c); // free the worker: shadowed bindings live to end of fn
    scenarios += 1;

    // 7. a non-object frame
    assert_err(&request(addr, "[1,2,3]"), "bad_request", "non-object");
    scenarios += 1;

    // 8. missing op
    assert_err(&request(addr, r#"{"catalog":"x"}"#), "bad_request", "no op");
    scenarios += 1;

    // 9. unknown op
    assert_err(
        &request(addr, r#"{"op":"mine-bitcoin"}"#),
        "bad_request",
        "unknown op",
    );
    scenarios += 1;

    // 10. ill-typed field
    assert_err(
        &request(
            addr,
            &format!(
                r#"{{"op":"count","catalog":"{}","timeout_ms":-5}}"#,
                cat.path
            ),
        ),
        "bad_request",
        "negative timeout",
    );
    scenarios += 1;

    // 11. missing catalog field
    assert_err(
        &request(addr, r#"{"op":"count"}"#),
        "bad_request",
        "no catalog",
    );
    scenarios += 1;

    // 12. nonexistent catalog path
    assert_err(
        &request(addr, r#"{"op":"count","catalog":"/no/such/file.ugq"}"#),
        "catalog_error",
        "missing catalog",
    );
    scenarios += 1;

    // 13. corrupted catalog file
    let bad_path = dir.join("corrupt.ugq");
    std::fs::write(&bad_path, b"UGQ1 but not really").unwrap();
    assert_err(
        &request(
            addr,
            &format!(r#"{{"op":"count","catalog":"{}"}}"#, bad_path.display()),
        ),
        "catalog_error",
        "corrupt catalog",
    );
    scenarios += 1;

    // 14. an already-expired deadline is rejected *at admission*:
    //     typed deadline_exceeded with "rejected":true, no catalog
    //     work performed, and the connection (and resident session)
    //     serve the very next query.
    let mut c = Client::connect(addr);
    let reply = c.roundtrip(&format!(
        r#"{{"op":"enumerate","catalog":"{}","timeout_ms":0}}"#,
        cat.path
    ));
    assert_err(&reply, "deadline_exceeded", "zero deadline");
    assert_eq!(reply.get("rejected"), Some(&Json::Bool(true)));
    assert_eq!(
        reply.get("partial"),
        None,
        "admission rejection does no work, so nothing is partial"
    );
    let reply = c.roundtrip(&format!(r#"{{"op":"count","catalog":"{}"}}"#, cat.path));
    assert_ok(&reply, "count after deadline");
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(cat.count));
    drop(c);
    scenarios += 1;

    // 15. zero node budget trips with a typed reply and partial stats
    let reply = request(
        addr,
        &format!(
            r#"{{"op":"count","catalog":"{}","node_budget":0}}"#,
            cat.path
        ),
    );
    assert_err(&reply, "budget_exhausted", "zero budget");
    assert_eq!(reply.get("partial"), Some(&Json::Bool(true)));
    scenarios += 1;

    // 16. a budget mid-search returns a strict prefix of the stream
    let reply = request(
        addr,
        &format!(
            r#"{{"op":"enumerate","catalog":"{}","node_budget":1200}}"#,
            cat.path
        ),
    );
    assert_err(&reply, "budget_exhausted", "mid-search budget");
    let Some(Json::Arr(partial)) = reply.get("cliques") else {
        panic!()
    };
    assert!(
        partial.len() < cat.pairs.len(),
        "budget of 1200 nodes must not finish a {}-node search",
        cat.search_nodes
    );
    for (i, got) in partial.iter().enumerate() {
        let got: Vec<u32> = match got {
            Json::Arr(vs) => vs.iter().map(|v| v.as_u64().unwrap() as u32).collect(),
            _ => panic!(),
        };
        assert_eq!(
            got, cat.pairs[i].0,
            "partial row {i} must be prefix-identical"
        );
    }
    scenarios += 1;

    // 17. top_k k=0 and missing k are bad requests, not crashes
    assert_err(
        &request(
            addr,
            &format!(r#"{{"op":"top_k","catalog":"{}","k":0}}"#, cat.path),
        ),
        "bad_request",
        "k=0",
    );
    assert_err(
        &request(
            addr,
            &format!(r#"{{"op":"top_k","catalog":"{}"}}"#, cat.path),
        ),
        "bad_request",
        "missing k",
    );
    scenarios += 1;

    // 18. a panicking request is isolated: internal_error reply, the
    //     poisoned session is discarded, and the same catalog serves
    //     the next query from a fresh open.
    let reply = request(
        addr,
        &format!(r#"{{"op":"panic","catalog":"{}"}}"#, cat.path),
    );
    assert_err(&reply, "internal_error", "panic op");
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{}"}}"#, cat.path),
    );
    assert_ok(&reply, "count after panic");
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(cat.count));
    scenarios += 1;

    // 19. oversized frame: typed reply, then the connection closes
    let mut c = Client::connect(addr);
    let big = vec![b'x'; (1 << 20) + 4096];
    c.send_raw(&big);
    let line = c.read_line().expect("oversized frame must get a reply");
    let reply = Json::parse(&line).unwrap();
    assert_err(&reply, "oversized_frame", "oversized");
    assert!(
        c.read_line().is_none(),
        "connection must close after oversize"
    );
    scenarios += 1;

    // 20. truncated frame (half a request, then half-close): the server
    //     drops the connection without a reply and without dying
    let mut c = Client::connect(addr);
    c.send_raw(br#"{"op":"cou"#);
    c.writer.shutdown(Shutdown::Write).unwrap();
    assert!(c.read_line().is_none(), "truncated frame gets no reply");
    assert_ok(&request(addr, r#"{"op":"ping"}"#), "ping after truncation");
    scenarios += 1;

    // 21. mid-stream disconnect while a query is in flight
    {
        let mut c = Client::connect(addr);
        c.send_raw(format!(r#"{{"op":"enumerate","catalog":"{}"}}"#, cat.path).as_bytes());
        c.send_raw(b"\n");
        drop(c); // vanish without reading the reply
    }
    assert_ok(&request(addr, r#"{"op":"ping"}"#), "ping after disconnect");
    scenarios += 1;

    // 22. raw binary garbage with a newline is a bad request, not UB
    let mut c = Client::connect(addr);
    c.send_raw(&[0xff, 0xfe, 0x00, 0x80, b'\n']);
    assert_err(&c.read_reply(), "bad_request", "binary garbage");
    drop(c);
    scenarios += 1;

    // 23. blank lines are tolerated as keep-alives
    let mut c = Client::connect(addr);
    c.send_raw(b"\n\r\n");
    assert_ok(&c.roundtrip(r#"{"op":"ping"}"#), "ping after blank lines");
    drop(c);
    scenarios += 1;

    // 24. cache-capacity-1 thrash across two catalogs stays correct
    for round in 0..3 {
        let r1 = request(
            addr,
            &format!(r#"{{"op":"count","catalog":"{}"}}"#, cat.path),
        );
        let r2 = request(
            addr,
            &format!(r#"{{"op":"count","catalog":"{}"}}"#, cat2.path),
        );
        assert_eq!(
            r1.get("count").and_then(Json::as_u64),
            Some(cat.count),
            "round {round}"
        );
        assert_eq!(
            r2.get("count").and_then(Json::as_u64),
            Some(cat2.count),
            "round {round}"
        );
    }
    scenarios += 1;

    // 25. concurrent clients all get the right answer
    let barrier = std::sync::Barrier::new(8);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                barrier.wait();
                for _ in 0..3 {
                    let reply = request(
                        addr,
                        &format!(r#"{{"op":"count","catalog":"{}"}}"#, cat.path),
                    );
                    assert_ok(&reply, "concurrent count");
                    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(cat.count));
                }
            });
        }
    });
    scenarios += 1;

    assert!(scenarios >= 20, "battery shrank to {scenarios} scenarios");

    // Finale: clean drain-and-exit via the shutdown op.
    let reply = request(addr, r#"{"op":"shutdown"}"#);
    assert_ok(&reply, "shutdown");
    server.join(); // must return: workers drained and exited
    let _ = std::fs::remove_dir_all(&dir);
}

/// One resident base serves clients at different α: refined views are
/// cached per α, answers match fresh fixed-α prepares bit-exactly, and
/// the `stat` op exposes the refine-cache counters. Also pins the
/// α-protocol errors: base without `alpha`, α below the base's floor,
/// and an `alpha` mismatch against a fixed-α catalog.
#[test]
fn base_catalog_serves_mixed_alpha_clients() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let dir = temp_dir("mixed-alpha");
    let mut rng = SmallRng::seed_from_u64(13);
    let mut b = ugraph_core::GraphBuilder::new(32);
    for u in 0..32u32 {
        for v in (u + 1)..32 {
            if rng.gen::<f64>() < 0.3 {
                b.add_edge(u, v, 0.3 + rng.gen::<f64>() * 0.7).unwrap();
            }
        }
    }
    let g = b.build();
    let base_path = dir.join("base.ugq");
    mule::Query::new(&g)
        .alpha_floor(0.1)
        .prepare_base()
        .unwrap()
        .save(&base_path)
        .unwrap();
    let base_path = base_path.to_str().unwrap().to_string();
    let fixed = make_catalog(&dir, "fixed.ugq", 20, 5);

    let server = start(ServeConfig::default());
    let addr = server.addr();

    // Two clients at different α against the one resident base; each
    // reply must match a fresh fixed-α prepare bit-exactly.
    for alpha in [0.6, 0.2] {
        let want: Vec<(Vec<u32>, f64)> = mule::Query::new(&g)
            .alpha(alpha)
            .prepare()
            .unwrap()
            .collect()
            .unwrap();
        let reply = request(
            addr,
            &format!(r#"{{"op":"enumerate","catalog":"{base_path}","alpha":{alpha}}}"#),
        );
        assert_ok(&reply, "base enumerate");
        assert_eq!(reply.get("alpha").and_then(Json::as_f64), Some(alpha));
        let Some(Json::Arr(cliques)) = reply.get("cliques") else {
            panic!("no cliques array")
        };
        let Some(Json::Arr(probs)) = reply.get("probs") else {
            panic!("no probs array")
        };
        assert_eq!(cliques.len(), want.len(), "α = {alpha}");
        for (i, ((want_c, want_p), (got_c, got_p))) in
            want.iter().zip(cliques.iter().zip(probs)).enumerate()
        {
            let got_c: Vec<u32> = match got_c {
                Json::Arr(vs) => vs.iter().map(|v| v.as_u64().unwrap() as u32).collect(),
                _ => panic!("clique {i} not an array"),
            };
            assert_eq!(&got_c, want_c, "α = {alpha} clique {i}");
            assert_eq!(
                got_p.as_f64().unwrap().to_bits(),
                want_p.to_bits(),
                "α = {alpha} prob {i} not bit-exact"
            );
        }
    }

    // Both views are resident now: two cold refinements, no hits yet.
    let reply = request(addr, &format!(r#"{{"op":"stat","catalog":"{base_path}"}}"#));
    assert_ok(&reply, "stat");
    assert_eq!(reply.get("resident"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("base"));
    assert_eq!(reply.get("floor").and_then(Json::as_f64), Some(0.1));
    assert_eq!(reply.get("views").and_then(Json::as_u64), Some(2));
    assert_eq!(reply.get("refine_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(reply.get("refine_misses").and_then(Json::as_u64), Some(2));

    // Re-asking one of the αs is a refine-cache hit, not a re-refine.
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{base_path}","alpha":0.6}}"#),
    );
    assert_ok(&reply, "warm count");
    let reply = request(addr, &format!(r#"{{"op":"stat","catalog":"{base_path}"}}"#));
    assert_eq!(reply.get("refine_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("refine_misses").and_then(Json::as_u64), Some(2));

    // α-protocol errors, all typed, none fatal to the resident base:
    // base without alpha …
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{base_path}"}}"#),
    );
    assert_err(&reply, "bad_request", "base without alpha");
    // … α below the base's floor …
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{base_path}","alpha":0.05}}"#),
    );
    assert_err(&reply, "bad_request", "alpha below floor");
    // … and a mismatched α against a fixed catalog (exact match is ok).
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{}","alpha":0.5}}"#, fixed.path),
    );
    assert_err(&reply, "bad_request", "fixed-α mismatch");
    let reply = request(
        addr,
        &format!(
            r#"{{"op":"count","catalog":"{}","alpha":0.05}}"#,
            fixed.path
        ),
    );
    assert_ok(&reply, "fixed-α exact match");
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(fixed.count));
    let reply = request(
        addr,
        &format!(r#"{{"op":"stat","catalog":"{}"}}"#, fixed.path),
    );
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("fixed"));
    assert_eq!(reply.get("alpha").and_then(Json::as_f64), Some(0.05));

    // The base survived every error above and still serves.
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{base_path}","alpha":0.2}}"#),
    );
    assert_ok(&reply, "base serves after protocol errors");

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Load shedding: with one worker pinned by an open connection and an
/// admission queue of depth 1, the next connection gets a typed `busy`
/// reply instead of waiting forever.
#[test]
fn full_admission_queue_sheds_with_typed_busy_reply() {
    let server = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        idle_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Pin the single worker: a connection is held by its worker until
    // it closes, so replying to the ping proves the worker owns it.
    let mut pinned = Client::connect(addr);
    assert_ok(&pinned.roundtrip(r#"{"op":"ping"}"#), "pin worker");

    // Fills the queue (no worker free to pop it).
    let queued = Client::connect(addr);
    std::thread::sleep(Duration::from_millis(100)); // let the acceptor enqueue it

    // Overflow: shed with `busy`, a `retry_after_ms` hint, and close.
    let mut shed = Client::connect(addr);
    let reply = shed.read_reply();
    assert_err(&reply, "busy", "overflow connection");
    assert_eq!(
        reply.get("retry_after_ms").and_then(Json::as_u64),
        Some(50),
        "busy replies carry the retry hint: {reply:?}"
    );
    assert!(shed.read_line().is_none(), "shed connection is closed");

    // Release the worker; the queued connection must now be served.
    drop(pinned);
    let mut queued = Client {
        reader: BufReader::new(queued.writer.try_clone().unwrap()),
        writer: queued.writer,
    };
    assert_ok(&queued.roundtrip(r#"{"op":"ping"}"#), "queued conn served");

    // The shed shows up in the server-wide counters (stat, no catalog).
    let reply = queued.roundtrip(r#"{"op":"stat"}"#);
    assert_ok(&reply, "stat without catalog");
    assert_eq!(reply.get("shed").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("retries_hinted").and_then(Json::as_u64), Some(1));

    server.request_shutdown();
    drop(queued);
    server.join();
}

/// Slow-loris defense plus admission-rejection telemetry: a connection
/// dribbling a frame byte-by-byte is cut once the frame exceeds the
/// frame timeout (even though it never goes idle), an untouched
/// connection is closed at the idle timeout, and both closes — plus an
/// expired-deadline rejection — land in the `stat` counters.
#[test]
fn slow_loris_and_idle_connections_are_cut_and_counted() {
    let server = start(ServeConfig {
        idle_timeout: Duration::from_millis(1500),
        frame_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Dribble one byte every 100 ms: never idle for 1.5 s, but the
    // frame stays unfinished past the 400 ms frame deadline.
    let mut loris = Client::connect(addr);
    for b in br#"{"op":"ping"#.iter().cycle().take(12) {
        // Once the server cuts us off, writes start failing — that is
        // the expected outcome, not a test error.
        if loris.writer.write_all(&[*b]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        loris.read_line().is_none(),
        "slow-loris connection must be cut without a reply"
    );

    // A fully silent connection is closed at the idle timeout instead.
    let mut idle = Client::connect(addr);
    assert!(
        idle.read_line().is_none(),
        "idle connection must be closed without a reply"
    );

    // An already-expired request is rejected at admission.
    let reply = request(
        addr,
        r#"{"op":"count","catalog":"/irrelevant.ugq","timeout_ms":0}"#,
    );
    assert_err(&reply, "deadline_exceeded", "expired admission");
    assert_eq!(reply.get("rejected"), Some(&Json::Bool(true)));

    // All three events are visible server-wide.
    let reply = request(addr, r#"{"op":"stat"}"#);
    assert_ok(&reply, "stat");
    assert_eq!(
        reply.get("slowloris_closes").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(reply.get("idle_closes").and_then(Json::as_u64), Some(1));
    assert_eq!(
        reply.get("expired_rejected").and_then(Json::as_u64),
        Some(1)
    );

    server.request_shutdown();
    server.join();
}

/// Poisoned-cache recovery: a resident base whose requests keep
/// panicking is evicted at the poison threshold instead of wedging its
/// catalog key, and the next request cold-reopens it from disk and
/// serves correctly — with evictions and reopens counted.
#[test]
fn poisoned_base_is_evicted_and_reopened() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let dir = temp_dir("poison");
    let mut rng = SmallRng::seed_from_u64(17);
    let mut b = ugraph_core::GraphBuilder::new(24);
    for u in 0..24u32 {
        for v in (u + 1)..24 {
            if rng.gen::<f64>() < 0.3 {
                b.add_edge(u, v, 0.4 + rng.gen::<f64>() * 0.6).unwrap();
            }
        }
    }
    let g = b.build();
    let base_path = dir.join("base.ugq");
    mule::Query::new(&g)
        .prepare_base()
        .unwrap()
        .save(&base_path)
        .unwrap();
    let base_path = base_path.to_str().unwrap().to_string();
    let want = mule::Query::new(&g)
        .alpha(0.5)
        .prepare()
        .unwrap()
        .collect()
        .unwrap()
        .len() as u64;

    let server = start(ServeConfig {
        danger_test_ops: true,
        poison_threshold: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // First panic: failure recorded, base stays resident.
    let reply = request(
        addr,
        &format!(r#"{{"op":"panic","catalog":"{base_path}","alpha":0.5}}"#),
    );
    assert_err(&reply, "internal_error", "first panic");
    let reply = request(addr, &format!(r#"{{"op":"stat","catalog":"{base_path}"}}"#));
    assert_eq!(reply.get("resident"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("failures").and_then(Json::as_u64), Some(1));

    // Second panic hits the threshold: the entry is evicted.
    let reply = request(
        addr,
        &format!(r#"{{"op":"panic","catalog":"{base_path}","alpha":0.5}}"#),
    );
    assert_err(&reply, "internal_error", "second panic");
    let reply = request(addr, &format!(r#"{{"op":"stat","catalog":"{base_path}"}}"#));
    assert_eq!(
        reply.get("resident"),
        Some(&Json::Bool(false)),
        "poisoned entry must be evicted: {reply:?}"
    );
    assert_eq!(
        reply.get("poison_evictions").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(reply.get("poison_reopens").and_then(Json::as_u64), Some(0));

    // The key is not wedged: the next real query reopens from disk and
    // answers correctly, and a completed request resets the streak.
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{base_path}","alpha":0.5}}"#),
    );
    assert_ok(&reply, "count after poison eviction");
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(want));
    let reply = request(addr, &format!(r#"{{"op":"stat","catalog":"{base_path}"}}"#));
    assert_eq!(reply.get("resident"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("poison_reopens").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("failures").and_then(Json::as_u64), Some(0));

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shutdown requested while requests are still queued: every queued
/// connection is drained (served), not dropped.
#[test]
fn shutdown_drains_queued_connections() {
    let dir = temp_dir("drain");
    let cat = make_catalog(&dir, "drain.ugq", 24, 3);
    let server = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Open a few client connections with requests already written, then
    // immediately request shutdown from the host side.
    let mut clients: Vec<Client> = (0..4)
        .map(|_| {
            let mut c = Client::connect(addr);
            c.send_raw(format!(r#"{{"op":"count","catalog":"{}"}}"#, cat.path).as_bytes());
            c.send_raw(b"\n");
            c
        })
        .collect();
    // Give the acceptor (5ms poll) time to admit the connections: the
    // drain guarantee covers admitted connections, not SYN backlog.
    std::thread::sleep(Duration::from_millis(300));
    server.request_shutdown();

    // Every already-admitted connection still gets its reply.
    let mut served = 0;
    for c in &mut clients {
        if let Some(line) = c.read_line() {
            let reply = Json::parse(&line).unwrap();
            assert_ok(&reply, "drained request");
            assert_eq!(reply.get("count").and_then(Json::as_u64), Some(cat.count));
            served += 1;
        }
    }
    assert!(served > 0, "at least the admitted connections are drained");
    drop(clients);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `update` op end to end: mutates the catalog file, folds the
/// batch into the resident session (fixed and base alike), trips
/// threshold compaction, and rejects unrepresentable batches typed and
/// trace-free — while the server keeps serving the mutated graph.
#[test]
fn update_op_mutates_catalogs_and_keeps_serving() {
    let dir = temp_dir("update-op");
    // Two solid triangles, no bridge: 2 maximal cliques at α = 0.5.
    let mut b = ugraph_core::GraphBuilder::new(6);
    for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
        b.add_edge(u, v, 0.9).unwrap();
    }
    let g = b.build();
    let fixed_path = dir.join("fixed.ugq");
    mule::Query::new(&g)
        .alpha(0.5)
        .prepare()
        .unwrap()
        .save(&fixed_path)
        .unwrap();
    let base_path = dir.join("base.ugq");
    mule::Query::new(&g)
        .prepare_base()
        .unwrap()
        .save(&base_path)
        .unwrap();
    let fixed = fixed_path.to_str().unwrap().to_string();
    let base = base_path.to_str().unwrap().to_string();

    let server = start(ServeConfig {
        compact_threshold: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Warm the resident session on the pre-update graph.
    let reply = request(addr, &format!(r#"{{"op":"count","catalog":"{fixed}"}}"#));
    assert_ok(&reply, "warm count");
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(2));

    // Mutate: insert the bridge 2–3. One pending delta, no compaction.
    let reply = request(
        addr,
        &format!(r#"{{"op":"update","catalog":"{fixed}","ops":[["insert",2,3,0.8]]}}"#),
    );
    assert_ok(&reply, "update insert");
    assert_eq!(reply.get("applied").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("pending").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("compacted"), Some(&Json::Bool(false)));

    // Warm traffic now serves the mutated graph: {0,1,2}, {3,4,5}, {2,3}.
    let reply = request(addr, &format!(r#"{{"op":"count","catalog":"{fixed}"}}"#));
    assert_eq!(
        reply.get("count").and_then(Json::as_u64),
        Some(3),
        "resident session must serve the mutated graph: {reply:?}"
    );
    let reply = request(addr, r#"{"op":"stat"}"#);
    assert_eq!(reply.get("updates").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("compactions").and_then(Json::as_u64), Some(0));

    // Second update crosses --compact-threshold 2: auto-compaction.
    let reply = request(
        addr,
        &format!(r#"{{"op":"update","catalog":"{fixed}","ops":[["set",2,3,0.6]]}}"#),
    );
    assert_ok(&reply, "update set");
    assert_eq!(reply.get("compacted"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("pending").and_then(Json::as_u64), Some(0));
    let reply = request(addr, r#"{"op":"stat"}"#);
    assert_eq!(reply.get("compactions").and_then(Json::as_u64), Some(1));

    // The compacted file is byte-identical to a fresh save of a fresh
    // prepare of the mutated graph.
    let mut mb = ugraph_core::GraphBuilder::new(6);
    for (u, v, p) in [
        (0, 1, 0.9),
        (1, 2, 0.9),
        (0, 2, 0.9),
        (3, 4, 0.9),
        (4, 5, 0.9),
        (3, 5, 0.9),
        (2, 3, 0.6),
    ] {
        mb.add_edge(u, v, p).unwrap();
    }
    let fresh = mule::Query::new(&mb.build()).alpha(0.5).prepare().unwrap();
    assert_eq!(
        std::fs::read(&fixed_path).unwrap(),
        fresh.to_catalog_bytes(),
        "compacted catalog must match a fresh prepare of the mutated graph"
    );

    // Rejected batch: typed error, file untouched, server keeps serving.
    let before = std::fs::read(&fixed_path).unwrap();
    let reply = request(
        addr,
        &format!(r#"{{"op":"update","catalog":"{fixed}","ops":[["delete",0,5]]}}"#),
    );
    assert_err(&reply, "update_rejected", "unknown edge");
    assert_eq!(std::fs::read(&fixed_path).unwrap(), before);

    // Wire-level validation and addressing errors.
    assert_err(
        &request(addr, &format!(r#"{{"op":"update","catalog":"{fixed}"}}"#)),
        "bad_request",
        "missing ops",
    );
    assert_err(
        &request(addr, r#"{"op":"update","ops":[]}"#),
        "bad_request",
        "missing catalog",
    );
    assert_err(
        &request(addr, r#"{"op":"update","catalog":"/absent.ugq","ops":[]}"#),
        "catalog_error",
        "absent catalog",
    );

    // A resident base: update invalidates its refined views, and the
    // next α query refines from the mutated base.
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{base}","alpha":0.5}}"#),
    );
    assert_ok(&reply, "base warm count");
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(2));
    let reply = request(
        addr,
        &format!(r#"{{"op":"update","catalog":"{base}","ops":[["insert",2,3,0.8]]}}"#),
    );
    assert_ok(&reply, "base update");
    let reply = request(
        addr,
        &format!(r#"{{"op":"count","catalog":"{base}","alpha":0.5}}"#),
    );
    assert_eq!(
        reply.get("count").and_then(Json::as_u64),
        Some(3),
        "refined view must come from the mutated base: {reply:?}"
    );

    assert_ok(&request(addr, r#"{"op":"shutdown"}"#), "shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
