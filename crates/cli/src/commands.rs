//! The `mule` subcommand implementations.

use crate::opts::{load_graph, save_graph, Opts};
use mule::sinks::{CollectSink, CountSink};
use mule::MuleError;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::time::Duration;
use ugraph_core::{GraphStats, VertexId};

type CmdResult = Result<(), String>;

/// Shared loader for commands whose first positional is a graph file.
fn graph_from(opts: &Opts) -> Result<ugraph_core::UncertainGraph, String> {
    let path = opts.positional(0, "graph file")?;
    let seed: u64 = opts.get_or("seed", 42)?;
    load_graph(path, opts.flag("snap"), opts.get_str("assign"), seed)
}

const GRAPH_INPUT_OPTS: &[&str] = &["snap", "assign", "seed"];

fn with_input_opts<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    GRAPH_INPUT_OPTS.iter().chain(extra).copied().collect()
}

/// `mule stats <graph>` — summary statistics plus a short degree profile.
pub fn stats(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &with_input_opts(&[]))?;
    let g = graph_from(&opts)?;
    let s = GraphStats::compute(&g);
    writeln!(
        out,
        "name:         {}",
        if s.name.is_empty() {
            "(unnamed)"
        } else {
            &s.name
        }
    )
    .map_err(io_err)?;
    writeln!(out, "vertices:     {}", s.n).map_err(io_err)?;
    writeln!(out, "edges:        {}", s.m).map_err(io_err)?;
    writeln!(
        out,
        "degree:       min {} / mean {:.2} / max {}",
        s.min_degree, s.mean_degree, s.max_degree
    )
    .map_err(io_err)?;
    writeln!(out, "density:      {:.6}", s.density).map_err(io_err)?;
    writeln!(
        out,
        "probability:  min {:.4} / mean {:.4} / max {:.4}",
        s.min_prob, s.mean_prob, s.max_prob
    )
    .map_err(io_err)?;
    let (_, degeneracy) = ugraph_core::subgraph::degeneracy_order(&g);
    writeln!(out, "degeneracy:   {degeneracy}").map_err(io_err)?;
    Ok(())
}

/// `mule enumerate <graph> --alpha A [--min-size T] [--threads N]
/// [--count-only] [--out FILE] [--no-prune] [--prune-report]
/// [--index-mode auto|always|never] [--index-budget BYTES]`.
///
/// Every flag maps onto the `mule::Query` builder, and the command runs
/// over the `mule::Prepared` session it produces. The default route is
/// the full preprocessing pipeline: α-prune → `(t−1)·α` core filter →
/// shared-neighborhood peel → per-component enumeration on compact
/// remapped instances. `--no-prune` turns the size/shard stages off
/// (one identity-mapped kernel, byte-identical output);
/// `--prune-report` prints what each stage removed as `#`-prefixed
/// comment lines. `--index-mode` selects whether the tiered
/// neighborhood index is built (`never` falls back to CSR gallop/merge;
/// output is identical either way) and `--index-budget` caps the dense
/// probability tier in bytes per enumeration kernel — per component
/// when the pipeline shards (`0` disables dense rows, keeping only the
/// bitset membership tier).
///
/// With `--catalog FILE.ugq` the session comes from a prepared catalog
/// (`mule prepare`) instead of a graph file: no pipeline runs, and the
/// flags that would re-specify prepare-time settings (size threshold,
/// stage toggles, index configuration) are rejected as conflicts — only
/// the runtime flags (`--threads`, `--count-only`, `--out`,
/// `--prune-report`, `--timeout-ms`, `--node-budget`) apply. `--alpha`
/// depends on what the catalog holds: for a fixed-α instance it is a
/// conflict (α was baked in at prepare time), but for an α-generic base
/// (`mule prepare --base`) it is *required* — the base is refined at
/// that threshold, still with zero pipeline work.
///
/// `--timeout-ms N` and `--node-budget N` bound the run cooperatively
/// (see `mule::limits`): an interrupted enumeration still writes every
/// clique emitted before the trip — a byte-identical prefix of the
/// uninterrupted output — followed by a `# interrupted:` marker line,
/// and the process exits with code 3 instead of 0.
pub fn enumerate(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(
        args,
        &with_input_opts(&[
            "alpha",
            "min-size",
            "threads",
            "count-only",
            "out",
            "no-prune",
            "prune-report",
            "index-mode",
            "index-budget",
            "catalog",
            "timeout-ms",
            "node-budget",
        ]),
    )?;
    let started = std::time::Instant::now();

    let mut session = if let Some(cat_path) = opts.get_str("catalog") {
        // The catalog *is* the query configuration: size threshold,
        // stage toggles and index settings were fixed at prepare time,
        // so the flags that would re-specify them are conflicts, not
        // overrides — silently ignoring either side would lie about
        // what ran. α is the exception when the catalog holds an
        // α-generic base: there it *is* the query parameter.
        if opts.num_positional() > 0 {
            return Err("--catalog replaces the graph operand".into());
        }
        opts.conflicts(
            &[
                "min-size",
                "no-prune",
                "index-mode",
                "index-budget",
                "snap",
                "assign",
            ],
            "--catalog: that setting is baked into the catalog",
        )?;
        let cat_path = cat_path.to_string();
        let data =
            std::fs::read(&cat_path).map_err(|e| format!("cannot open {cat_path:?}: {e}"))?;
        let is_base = ugraph_io::Catalog::from_bytes(ugraph_io::Bytes::from(data.clone()))
            .map(|c| c.header().flags & ugraph_io::catalog::FLAG_ALPHA_BASE != 0)
            .unwrap_or(false);
        let threads: usize = opts.get_or("threads", 1)?;
        if is_base {
            let alpha: f64 = opts.get_opt("alpha")?.ok_or_else(|| {
                format!("{cat_path} holds an α-generic base: --alpha selects the refinement threshold and is required")
            })?;
            let mut base =
                mule::Query::open_base_bytes(data).map_err(|e| format!("{cat_path}: {e}"))?;
            base.set_threads(threads.max(1)).map_err(fmt_err)?;
            base.refine(alpha).map_err(fmt_err)?
        } else {
            opts.conflicts(
                &["alpha"],
                "--catalog: that setting is baked into the catalog",
            )?;
            let mut session =
                mule::Query::open_bytes(data).map_err(|e| format!("{cat_path}: {e}"))?;
            session.set_threads(threads.max(1)).map_err(fmt_err)?;
            session
        }
    } else {
        let g = graph_from(&opts)?;
        let alpha: f64 = opts.required("alpha")?;
        let min_size: usize = opts.get_or("min-size", 0)?;
        let threads: usize = opts.get_or("threads", 1)?;
        let no_prune = opts.flag("no-prune");
        if no_prune && opts.flag("prune-report") {
            return Err("--prune-report requires the pipeline; drop --no-prune".into());
        }
        let default_cfg = mule::MuleConfig::default();
        let mut query = mule::Query::new(&g)
            .alpha(alpha)
            .min_size(min_size)
            .threads(threads.max(1))
            .index_mode(opts.get_or("index-mode", default_cfg.index_mode)?)
            .dense_index_bytes(opts.get_or("index-budget", default_cfg.dense_index_bytes)?);
        if no_prune {
            query = query
                .core_filter(false)
                .shared_neighborhood(false)
                .shard_components(false);
        }
        query.prepare().map_err(fmt_err)?
    };
    let timeout_ms: Option<u64> = opts.get_opt("timeout-ms")?;
    let node_budget: Option<u64> = opts.get_opt("node-budget")?;
    session.set_deadline(timeout_ms.map(Duration::from_millis));
    session.set_node_budget(node_budget);
    if opts.flag("prune-report") {
        for line in session.report().render().lines() {
            writeln!(out, "# {line}").map_err(io_err)?;
        }
    }

    if opts.flag("count-only") {
        let mut sink = CountSink::new();
        let interrupted = split_interrupt(session.stream(&mut sink).map(|_| ()))?;
        writeln!(out, "cliques:      {}", sink.count).map_err(io_err)?;
        writeln!(out, "max size:     {}", sink.max_size).map_err(io_err)?;
        writeln!(out, "output ids:   {}", sink.total_vertices).map_err(io_err)?;
        writeln!(out, "search nodes: {}", session.stats().calls).map_err(io_err)?;
        writeln!(out, "elapsed:      {:.3}s", started.elapsed().as_secs_f64()).map_err(io_err)?;
        if let Some(e) = interrupted {
            writeln!(out, "# interrupted: {e} — counts above are partial").map_err(io_err)?;
            return Err(format!("INTERRUPTED: {e}"));
        }
        return Ok(());
    }

    // When a limit is configured, stream into a collector so the rows
    // emitted before an interruption survive it (`Prepared::collect`
    // discards the partial set on error); otherwise `collect` may fan
    // out across threads.
    let (pairs, interrupted): (Vec<(Vec<VertexId>, f64)>, Option<MuleError>) =
        if timeout_ms.is_some() || node_budget.is_some() {
            let mut sink = CollectSink::new();
            let interrupted = split_interrupt(session.stream(&mut sink).map(|_| ()))?;
            (sink.into_pairs(), interrupted)
        } else {
            (session.collect().map_err(fmt_err)?, None)
        };

    match opts.get_str("out") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path:?}: {e}"))?;
            let mut w = BufWriter::new(file);
            ugraph_io::write_clique_list(&mut w, session.alpha(), &pairs).map_err(io_err)?;
            if let Some(e) = &interrupted {
                writeln!(w, "# interrupted: {e} — list above is a prefix").map_err(io_err)?;
            }
            w.flush().map_err(io_err)?;
            writeln!(
                out,
                "wrote {} cliques to {path} in {:.3}s",
                pairs.len(),
                started.elapsed().as_secs_f64()
            )
            .map_err(io_err)?;
        }
        None => {
            ugraph_io::write_clique_list(&mut *out, session.alpha(), &pairs).map_err(io_err)?;
            if let Some(e) = &interrupted {
                writeln!(out, "# interrupted: {e} — list above is a prefix").map_err(io_err)?;
            }
        }
    }
    if let Some(e) = interrupted {
        return Err(format!("INTERRUPTED: {e}"));
    }
    Ok(())
}

/// Separate an interruption (deadline / budget / cancel — partial
/// results are still valid) from a hard error. `Ok(Some(e))` means the
/// run was interrupted by `e`; other `MuleError`s propagate as strings.
fn split_interrupt(r: Result<(), MuleError>) -> Result<Option<MuleError>, String> {
    match r {
        Ok(()) => Ok(None),
        Err(e) if e.interrupted_stats().is_some() => Ok(Some(e)),
        Err(e) => Err(fmt_err(e)),
    }
}

/// `mule prepare <graph> --alpha A --out FILE.ugq [--min-size T]
/// [--no-prune] [--index-mode auto|always|never] [--index-budget BYTES]`
/// — or `mule prepare <graph> --base [--floor F] --out FILE.ugq …`.
///
/// Runs the preprocessing pipeline exactly as `mule enumerate` would and
/// persists the prepared session as a UGQ1 catalog instead of querying
/// it. A later `mule enumerate --catalog FILE.ugq` (or
/// `mule::Query::open` from Rust) serves byte-identical results without
/// re-running a single pipeline stage — prepare once, cold-open many.
///
/// With `--base` the catalog stores an **α-generic base** instead: only
/// the α-independent work runs (prune at `--floor`, default `0.0` =
/// keep everything; component shard; index build), and the resulting
/// file serves *every* `α ≥ floor` — `mule enumerate --catalog F.ugq
/// --alpha A` refines at A with no pipeline work. `--alpha` therefore
/// conflicts with `--base`; α is supplied at query time.
pub fn prepare(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(
        args,
        &with_input_opts(&[
            "alpha",
            "min-size",
            "out",
            "no-prune",
            "index-mode",
            "index-budget",
            "base",
            "floor",
        ]),
    )?;
    let g = graph_from(&opts)?;
    let base_mode = opts.flag("base");
    if !base_mode && (opts.get_str("floor").is_some() || opts.flag("floor")) {
        return Err("--floor requires --base (a fixed-α catalog has no floor)".into());
    }
    let out_path: String = opts.required("out")?;
    // Chaos drills (CI and by hand): MULE_FAULT_PLAN=<spec> injects an
    // IO fault into this prepare's save — see `ugraph_io::fault`. The
    // save then fails typed, and the catalog path is untouched. The
    // plan is scoped to this invocation: the guard disarms on every
    // exit path so an embedding process (tests, a resident front end)
    // never inherits a stale plan on this thread.
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            ugraph_io::fault::disarm();
        }
    }
    let _disarm = match ugraph_io::fault::arm_from_env("MULE_FAULT_PLAN") {
        Some(plan) => {
            writeln!(out, "# fault plan armed: {plan:?}").map_err(io_err)?;
            Some(Disarm)
        }
        None => None,
    };
    let min_size: usize = opts.get_or("min-size", 0)?;
    let default_cfg = mule::MuleConfig::default();
    let started = std::time::Instant::now();
    let mut query = mule::Query::new(&g)
        .min_size(min_size)
        .index_mode(opts.get_or("index-mode", default_cfg.index_mode)?)
        .dense_index_bytes(opts.get_or("index-budget", default_cfg.dense_index_bytes)?);
    if opts.flag("no-prune") {
        query = query
            .core_filter(false)
            .shared_neighborhood(false)
            .shard_components(false);
    }
    if base_mode {
        opts.conflicts(
            &["alpha"],
            "--base: α is a query-time parameter there (bound it with --floor)",
        )?;
        let floor: f64 = opts.get_or("floor", 0.0)?;
        let base = query.alpha_floor(floor).prepare_base().map_err(fmt_err)?;
        base.save(&out_path).map_err(fmt_err)?;
        let bytes = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
        writeln!(
            out,
            "prepared base {} -> {out_path} ({} components, floor {floor}, {bytes} bytes) in {:.3}s",
            opts.positional(0, "graph file")?,
            base.num_components(),
            started.elapsed().as_secs_f64()
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let alpha: f64 = opts.required("alpha")?;
    let session = query.alpha(alpha).prepare().map_err(fmt_err)?;
    session.save(&out_path).map_err(fmt_err)?;
    let bytes = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
    let report = session.report();
    writeln!(
        out,
        "prepared {} -> {out_path} ({} components, {} singletons, {bytes} bytes) in {:.3}s",
        opts.positional(0, "graph file")?,
        report.components_kept,
        report.singleton_vertices,
        started.elapsed().as_secs_f64()
    )
    .map_err(io_err)?;
    Ok(())
}

/// `mule update <catalog.ugq> --edges FILE [--compact]` — append a
/// mutation batch to a prepared catalog.
///
/// `FILE` is a text batch, one op per line (`#` comments allowed):
///
/// ```text
/// + u v p     insert edge {u, v} with probability p
/// - u v       delete edge {u, v}
/// = u v p     set the probability of edge {u, v} to p
/// ```
///
/// The batch is validated against the catalog's artifact (with any
/// already-pending deltas replayed) and appended as a `delta.{i}`
/// section through the atomic-durable save path — a rejected or
/// interrupted update leaves the file byte-identical to before. A later
/// `mule enumerate --catalog` / `Query::open` replays pending deltas
/// on open, serving results byte-identical to a fresh prepare of the
/// mutated graph. `--compact` folds all pending deltas into the core
/// sections afterwards (it also works alone, with no `--edges`).
/// `MULE_FAULT_PLAN` injects IO faults for chaos drills, as in
/// `mule prepare`.
pub fn update(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &["edges", "compact"])?;
    let path = opts.positional(0, "catalog file")?;
    let edges = opts.get_str("edges");
    if edges.is_none() && !opts.flag("compact") {
        return Err("nothing to do: pass --edges FILE and/or --compact".into());
    }
    // Same per-invocation fault-plan scope as `prepare` (see there).
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            ugraph_io::fault::disarm();
        }
    }
    let _disarm = match ugraph_io::fault::arm_from_env("MULE_FAULT_PLAN") {
        Some(plan) => {
            writeln!(out, "# fault plan armed: {plan:?}").map_err(io_err)?;
            Some(Disarm)
        }
        None => None,
    };
    let started = std::time::Instant::now();
    if let Some(file) = edges {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file:?}: {e}"))?;
        let delta = mule::GraphDelta::parse_text(&text).map_err(|e| format!("{file}: {e}"))?;
        let pending =
            mule::catalog::append_delta(path, &delta).map_err(|e| format!("{path}: {e}"))?;
        writeln!(
            out,
            "applied {} op(s) to {path} ({pending} pending delta section(s)) in {:.3}s",
            delta.len(),
            started.elapsed().as_secs_f64()
        )
        .map_err(io_err)?;
    }
    if opts.flag("compact") {
        let folded = mule::catalog::compact(path).map_err(|e| format!("{path}: {e}"))?;
        writeln!(
            out,
            "compacted {path}: {folded} delta section(s) folded in {:.3}s",
            started.elapsed().as_secs_f64()
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// `mule stat <catalog.ugq> [--list]` — summarize a prepared catalog.
///
/// Prints the header fields (threshold — or, for an α-generic base
/// catalog, the α-floor — stage toggles, index settings, source-graph
/// fingerprint, per-section-kind sizes for the base layout) and
/// verifies every checksum; `--list` adds the TOC, one row per section
/// with offset, length and CRC status. A structurally invalid or
/// corrupted file exits 2 with a typed message.
pub fn stat(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &["list"])?;
    let path = opts.positional(0, "catalog file")?;
    let cat = ugraph_io::Catalog::open(path).map_err(|e| match e {
        // A path that cannot be read is a usage error, not a corrupt
        // catalog: name the file and say so, aligned with serve's
        // typed catalog_error replies (exit code stays 2).
        ugraph_io::CatalogError::Io(io) => format!("cannot open catalog {path:?}: {io}"),
        other => format!("{path}: {other}"),
    })?;
    let h = cat.header();
    let is_base = h.flags & ugraph_io::catalog::FLAG_ALPHA_BASE != 0;
    let stages: Vec<&str> = [
        (ugraph_io::catalog::FLAG_CORE_FILTER, "core-filter"),
        (
            ugraph_io::catalog::FLAG_SHARED_NEIGHBORHOOD,
            "shared-neighborhood",
        ),
        (
            ugraph_io::catalog::FLAG_SHARD_COMPONENTS,
            "shard-components",
        ),
    ]
    .iter()
    .filter(|(bit, _)| h.flags & bit != 0)
    .map(|&(_, name)| name)
    .collect();
    let index_mode = match h.index_mode {
        0 => "auto",
        1 => "always",
        2 => "never",
        _ => "unknown",
    };
    writeln!(out, "catalog:      {path}").map_err(io_err)?;
    writeln!(out, "format:       UGQ1 v{}", ugraph_io::catalog::VERSION).map_err(io_err)?;
    if is_base {
        writeln!(out, "kind:         α-generic base").map_err(io_err)?;
        writeln!(out, "alpha floor:  {}", f64::from_bits(h.alpha_bits)).map_err(io_err)?;
    } else {
        writeln!(out, "kind:         prepared instance").map_err(io_err)?;
        writeln!(out, "alpha:        {}", f64::from_bits(h.alpha_bits)).map_err(io_err)?;
    }
    writeln!(out, "min size:     {}", h.min_size).map_err(io_err)?;
    writeln!(
        out,
        "stages:       {}",
        if stages.is_empty() {
            "(none)".to_string()
        } else {
            stages.join(" ")
        }
    )
    .map_err(io_err)?;
    writeln!(out, "index mode:   {index_mode}").map_err(io_err)?;
    writeln!(
        out,
        "index budget: dense {} / max {} bytes",
        h.dense_index_bytes, h.max_index_bytes
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "graph:        {} vertices, {} edges",
        h.original_vertices, h.original_edges
    )
    .map_err(io_err)?;
    writeln!(out, "sections:     {}", cat.sections().len()).map_err(io_err)?;
    if is_base {
        // Per-section-kind byte totals for the base layout: how much of
        // the resident artifact is graphs vs id maps vs metadata.
        let (mut graphs, mut maps, mut other) = (0u64, 0u64, 0u64);
        for e in cat.sections() {
            if e.name.ends_with(".graph") {
                graphs += e.length;
            } else if e.name.ends_with(".map") {
                maps += e.length;
            } else {
                other += e.length;
            }
        }
        writeln!(
            out,
            "section size: graphs {graphs} / maps {maps} / other {other} bytes"
        )
        .map_err(io_err)?;
    }
    writeln!(out, "file size:    {} bytes", cat.file_len()).map_err(io_err)?;
    if opts.flag("list") {
        writeln!(out, "{:<24} {:>10} {:>10}  crc", "name", "offset", "length").map_err(io_err)?;
        let mut bad = 0usize;
        for e in cat.sections() {
            let ok = cat.section_crc_ok(e);
            bad += usize::from(!ok);
            writeln!(
                out,
                "{:<24} {:>10} {:>10}  {}",
                e.name,
                e.offset,
                e.length,
                if ok { "OK" } else { "BAD" }
            )
            .map_err(io_err)?;
        }
        if bad > 0 {
            return Err(format!("{path}: {bad} section(s) failed CRC validation"));
        }
    }
    cat.verify().map_err(|e| format!("{path}: {e}"))?;
    writeln!(out, "integrity:    OK").map_err(io_err)?;
    Ok(())
}

/// `mule topk <graph> --alpha A --k K [--skeleton]`.
///
/// Default: the k most probable *α-maximal* cliques (this library's
/// semantics), served by a `mule::Query` session's adaptive `top_k`
/// (the β branch-admission cut). With `--skeleton`: the related-work
/// problem (Zou et al., ICDE 2010) — the k most probable maximal
/// cliques of the deterministic skeleton, found by branch-and-bound (no
/// α involved).
pub fn topk(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &with_input_opts(&["alpha", "k", "skeleton"]))?;
    let g = graph_from(&opts)?;
    let k: usize = opts.required("k")?;
    if opts.flag("skeleton") {
        let (top, stats) = mule::zou_topk::zou_top_k(&g, k, 0.0);
        writeln!(out, "# skeleton-maximal top-{k} (Zou et al. semantics)").map_err(io_err)?;
        writeln!(
            out,
            "# search: {} nodes, {} bound-pruned",
            stats.nodes, stats.bound_pruned
        )
        .map_err(io_err)?;
        ugraph_io::write_clique_list(&mut *out, 1.0, &top).map_err(io_err)?;
        return Ok(());
    }
    let alpha: f64 = opts.required("alpha")?;
    // Always build the session so α is validated even for k = 0 —
    // "nothing" is a valid CLI ask, but a bad threshold never is.
    let mut session = mule::Query::new(&g)
        .alpha(alpha)
        .prepare()
        .map_err(fmt_err)?;
    let top = if k == 0 {
        Vec::new() // the API makes k = 0 an error; the CLI keeps it empty
    } else {
        session.top_k(k).map_err(fmt_err)?
    };
    ugraph_io::write_clique_list(&mut *out, alpha, &top).map_err(io_err)?;
    Ok(())
}

/// `mule verify <graph> --alpha A --cliques FILE [--complete]`.
pub fn verify(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &with_input_opts(&["alpha", "cliques", "complete"]))?;
    let g = graph_from(&opts)?;
    let alpha: f64 = opts.required("alpha")?;
    let path: String = opts.required("cliques")?;
    let file = File::open(&path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let pairs = ugraph_io::read_clique_list(BufReader::new(file)).map_err(fmt_err)?;
    let cliques: Vec<Vec<VertexId>> = pairs.into_iter().map(|(c, _)| c).collect();
    let violations = if opts.flag("complete") {
        mule::verify::verify_complete(&g, alpha, &cliques).map_err(fmt_err)?
    } else {
        mule::verify::verify_sound(&g, alpha, &cliques).map_err(fmt_err)?
    };
    if violations.is_empty() {
        writeln!(out, "OK: {} cliques verified", cliques.len()).map_err(io_err)?;
        Ok(())
    } else {
        let detail: Vec<String> = violations.iter().take(20).map(|v| v.to_string()).collect();
        Err(format!(
            "VERIFY-FAILED: {} violations\n{}",
            violations.len(),
            detail.join("\n")
        ))
    }
}

/// `mule sample <graph> --clique V,V,... [--samples N] [--seed S]`.
pub fn sample(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &with_input_opts(&["clique", "samples"]))?;
    let g = graph_from(&opts)?;
    let spec: String = opts.required("clique")?;
    let samples: usize = opts.get_or("samples", 100_000)?;
    let seed: u64 = opts.get_or("seed", 42)?;
    let clique: Vec<VertexId> = spec
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<VertexId>()
                .map_err(|_| format!("bad vertex {t:?}"))
        })
        .collect::<Result<_, _>>()?;
    let canonical = ugraph_core::clique::canonicalize(&g, &clique)
        .ok_or_else(|| format!("{clique:?} has duplicates or out-of-range vertices"))?;
    let exact = ugraph_core::clique::clique_probability(&g, &canonical);
    let mut rng = ugraph_gen::rng::rng_from_seed(seed);
    let estimate =
        ugraph_core::sample::estimate_clique_probability(&g, &canonical, samples, &mut rng);
    match exact {
        Some(p) => writeln!(out, "exact clique probability:   {p:.6}").map_err(io_err)?,
        None => writeln!(out, "exact clique probability:   0 (not a skeleton clique)")
            .map_err(io_err)?,
    }
    writeln!(out, "sampled ({samples} worlds):  {estimate:.6}").map_err(io_err)?;
    Ok(())
}

/// `mule convert <in> <out> [--snap] [--assign MODEL] [--seed S]`.
pub fn convert(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &with_input_opts(&[]))?;
    let input = opts.positional(0, "input file")?;
    let output = opts.positional(1, "output file")?;
    let seed: u64 = opts.get_or("seed", 42)?;
    let g = load_graph(input, opts.flag("snap"), opts.get_str("assign"), seed)?;
    save_graph(&g, output)?;
    writeln!(
        out,
        "converted {input} -> {output} ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    )
    .map_err(io_err)?;
    Ok(())
}

/// `mule generate --dataset NAME --out FILE [--seed S] [--scale X]`.
pub fn generate(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &["dataset", "out", "seed", "scale"])?;
    let name: String = opts.required("dataset")?;
    let out_path: String = opts.required("out")?;
    let seed: u64 = opts.get_or("seed", 42)?;
    let scale: f64 = opts.get_or("scale", 1.0)?;
    let spec = ugraph_gen::datasets::by_name(&name)
        .ok_or_else(|| format!("unknown dataset {name:?} (see `mule datasets`)"))?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(format!("--scale {scale} outside (0, 1]"));
    }
    let g = spec.build_scaled(seed, scale);
    save_graph(&g, &out_path)?;
    writeln!(
        out,
        "generated {name} at scale {scale}: {} vertices, {} edges -> {out_path}",
        g.num_vertices(),
        g.num_edges()
    )
    .map_err(io_err)?;
    Ok(())
}

/// `mule datasets` — list the Table 1 registry.
pub fn datasets(args: &[String], out: &mut dyn Write) -> CmdResult {
    let _ = Opts::parse(args, &[])?;
    for spec in ugraph_gen::datasets::table1() {
        writeln!(
            out,
            "{:<15} n={:<7} m={:<8} {}",
            spec.name, spec.paper_n, spec.paper_m, spec.category
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// `mule kcore <graph> [--k K]` — expected-degree core decomposition.
pub fn kcore(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &with_input_opts(&["k"]))?;
    let g = graph_from(&opts)?;
    let decomp = mule::kcore::CoreDecomposition::compute(&g);
    writeln!(out, "max expected-degree core: {:.4}", decomp.max_core()).map_err(io_err)?;
    if let Some(k) = opts.get_str("k") {
        let k: f64 = k.parse().map_err(|_| format!("invalid --k {k:?}"))?;
        let members = decomp.core(k);
        writeln!(out, "{k}-core: {} vertices", members.len()).map_err(io_err)?;
        if members.len() <= 50 {
            writeln!(out, "members: {members:?}").map_err(io_err)?;
        }
    } else {
        // Profile: core sizes at a few thresholds up to the maximum.
        let max = decomp.max_core();
        writeln!(out, "core-size profile:").map_err(io_err)?;
        for frac in [0.25, 0.5, 0.75, 1.0] {
            let k = max * frac;
            writeln!(out, "  k={k:>10.4}: {} vertices", decomp.core(k).len()).map_err(io_err)?;
        }
    }
    Ok(())
}

/// `mule worlds <graph> [--worlds N] [--seed S]` — sampled possible-world
/// maximal-clique statistics (Bron–Kerbosch per world).
pub fn worlds(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(args, &with_input_opts(&["worlds"]))?;
    let g = graph_from(&opts)?;
    let worlds: usize = opts.get_or("worlds", 20)?;
    let seed: u64 = opts.get_or("seed", 42)?;
    let mut rng = ugraph_gen::rng::rng_from_seed(seed);
    let s = mule::worlds::sampled_world_clique_stats(&g, worlds, &mut rng);
    writeln!(out, "worlds sampled:        {}", s.worlds).map_err(io_err)?;
    writeln!(
        out,
        "maximal cliques/world: mean {:.1} (min {}, max {})",
        s.mean_count, s.min_count, s.max_count
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "largest clique/world:  mean {:.2}, overall max {}",
        s.mean_max_size, s.max_size
    )
    .map_err(io_err)?;
    Ok(())
}

/// `mule serve` — the TCP query server over prepared catalogs, plus a
/// minimal client mode for scripting and CI.
///
/// Server: `mule serve [--addr HOST:PORT] [--workers N]
/// [--queue-depth N] [--cache N] [--max-frame-bytes N]
/// [--default-timeout-ms N] [--idle-timeout-ms N]
/// [--frame-timeout-ms N] [--busy-retry-ms N] [--poison-threshold N]
/// [--log FILE] [--danger-test-ops]`. Binds, prints `listening on
/// HOST:PORT`, and serves newline-JSON requests (see `mule_cli::wire`)
/// until a `shutdown` frame arrives; then drains and exits 0.
///
/// Client: `mule serve --connect HOST:PORT [--request JSON] [--text]
/// [--no-newline] [--retries N] [--retry-base-ms N] [--retry-max-ms N]
/// [--retry-seed S]`. Sends `--request` verbatim (default
/// `{"op":"ping"}` — verbatim means malformed frames can be exercised
/// deliberately), prints the reply line, and maps typed failures onto
/// the usual exit codes: interrupted queries exit 3, other error
/// replies exit 2. Refused connections and `busy` replies are retried
/// up to `--retries` times on a deterministic jittered exponential
/// backoff (see `mule_cli::retry`), honoring the server's
/// `retry_after_ms` hint; when any retries happened, the final report
/// includes a `# retry:` attempt-counter line (suppressed under
/// `--text`, whose output must stay diffable). `--text` renders an
/// `enumerate` reply in the `write_clique_list` format so outputs diff
/// cleanly against a direct `mule enumerate`. `--no-newline` omits the
/// frame terminator and half-closes the socket — a deliberately
/// truncated frame.
pub fn serve(args: &[String], out: &mut dyn Write) -> CmdResult {
    let opts = Opts::parse(
        args,
        &[
            "addr",
            "workers",
            "queue-depth",
            "cache",
            "max-frame-bytes",
            "default-timeout-ms",
            "idle-timeout-ms",
            "frame-timeout-ms",
            "busy-retry-ms",
            "poison-threshold",
            "compact-threshold",
            "log",
            "danger-test-ops",
            "connect",
            "request",
            "text",
            "no-newline",
            "retries",
            "retry-base-ms",
            "retry-max-ms",
            "retry-seed",
        ],
    )?;
    if let Some(addr) = opts.get_str("connect") {
        return serve_client(addr, &opts, out);
    }
    for key in [
        "request",
        "text",
        "no-newline",
        "retries",
        "retry-base-ms",
        "retry-max-ms",
        "retry-seed",
    ] {
        if opts.get_str(key).is_some() || opts.flag(key) {
            return Err(format!("--{key} requires --connect (client mode)"));
        }
    }
    let default_cfg = crate::serve::ServeConfig::default();
    let cfg = crate::serve::ServeConfig {
        addr: opts
            .get_str("addr")
            .unwrap_or(&default_cfg.addr)
            .to_string(),
        workers: opts.get_or("workers", default_cfg.workers)?,
        queue_depth: opts.get_or("queue-depth", default_cfg.queue_depth)?,
        cache_capacity: opts.get_or("cache", default_cfg.cache_capacity)?,
        max_frame_bytes: opts.get_or("max-frame-bytes", default_cfg.max_frame_bytes)?,
        default_timeout_ms: opts.get_opt("default-timeout-ms")?,
        idle_timeout: Duration::from_millis(opts.get_or(
            "idle-timeout-ms",
            default_cfg.idle_timeout.as_millis() as u64,
        )?),
        frame_timeout: Duration::from_millis(opts.get_or(
            "frame-timeout-ms",
            default_cfg.frame_timeout.as_millis() as u64,
        )?),
        busy_retry_ms: opts.get_or("busy-retry-ms", default_cfg.busy_retry_ms)?,
        poison_threshold: opts.get_or("poison-threshold", default_cfg.poison_threshold)?,
        compact_threshold: opts.get_or("compact-threshold", default_cfg.compact_threshold)?,
        danger_test_ops: opts.flag("danger-test-ops"),
    };
    let log: crate::serve::Log = match opts.get_str("log") {
        Some(path) => {
            let f = File::create(path).map_err(|e| format!("cannot create {path:?}: {e}"))?;
            crate::serve::log_to(Box::new(f))
        }
        None => crate::serve::log_to(Box::new(std::io::stderr())),
    };
    let server = crate::serve::Server::start(cfg, log).map_err(io_err)?;
    writeln!(out, "listening on {}", server.addr()).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    server.join();
    writeln!(out, "serve: drained and exiting").map_err(io_err)?;
    Ok(())
}

/// One client attempt: connect, send the frame, read one reply line.
/// `Err` = connect failed (retryable); `Ok(None)` = connection closed
/// without a reply (final); `Ok(Some(line))` = a reply arrived.
fn client_attempt(addr: &str, request: &str, no_newline: bool) -> Result<Option<String>, String> {
    use std::io::BufRead;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(io_err)?;
    stream.write_all(request.as_bytes()).map_err(io_err)?;
    if no_newline {
        // Deliberately truncated frame: half-close so the server sees
        // EOF mid-frame.
        stream.shutdown(std::net::Shutdown::Write).map_err(io_err)?;
    } else {
        stream.write_all(b"\n").map_err(io_err)?;
    }
    let mut reply = String::new();
    std::io::BufReader::new(&mut stream)
        .read_line(&mut reply)
        .map_err(io_err)?;
    let reply = reply.trim_end().to_string();
    Ok((!reply.is_empty()).then_some(reply))
}

/// If `reply` is a typed `busy` error, its `retry_after_ms` hint
/// (0 when the server sent none) — the signal that a retry is wanted.
fn busy_retry_hint(reply: &str) -> Option<u64> {
    let v = crate::wire::Json::parse(reply).ok()?;
    if v.get("ok") != Some(&crate::wire::Json::Bool(false))
        || v.get("error").and_then(crate::wire::Json::as_str) != Some("busy")
    {
        return None;
    }
    Some(
        v.get("retry_after_ms")
            .and_then(crate::wire::Json::as_u64)
            .unwrap_or(0),
    )
}

/// The `--connect` client half of `mule serve`: one request with
/// bounded, deterministically jittered retries on transient faults
/// (connect refused, `busy`). Non-transient replies — including typed
/// interrupts, which are *results* — are never retried.
fn serve_client(addr: &str, opts: &Opts, out: &mut dyn Write) -> CmdResult {
    let request = opts.get_str("request").unwrap_or("{\"op\":\"ping\"}");
    let retries: u32 = opts.get_or("retries", 3)?;
    let base_ms: u64 = opts.get_or("retry-base-ms", 50)?;
    let max_ms: u64 = opts.get_or("retry-max-ms", 2000)?;
    let seed: u64 = opts.get_or("retry-seed", 42)?;
    let delays = crate::retry::backoff_delays_ms(seed, base_ms, max_ms, retries);
    let mut connect_failures = 0u32;
    let mut busy_replies = 0u32;
    let mut attempt = 0u32;
    let reply = loop {
        attempt += 1;
        let mut hint = None;
        let fault = match client_attempt(addr, request, opts.flag("no-newline")) {
            Err(e) => {
                connect_failures += 1;
                e
            }
            Ok(None) => {
                // Closed without a reply (e.g. a deliberately truncated
                // frame): final, exactly as before retries existed.
                writeln!(out, "(connection closed without reply)").map_err(io_err)?;
                return Ok(());
            }
            Ok(Some(reply)) => match busy_retry_hint(&reply) {
                None => break reply,
                Some(h) => {
                    busy_replies += 1;
                    hint = Some(h);
                    format!("server replied busy: {addr} shed the connection")
                }
            },
        };
        if attempt > retries {
            return Err(format!(
                "{fault} (gave up after {attempt} attempts: \
                 {connect_failures} connect failures, {busy_replies} busy replies)"
            ));
        }
        let scheduled = delays[(attempt - 1) as usize];
        let delay = hint.map_or(scheduled, |h| scheduled.max(h));
        std::thread::sleep(Duration::from_millis(delay));
    };
    // Attempt counters in the final report — only when something was
    // actually retried, and never under --text (whose output must stay
    // byte-diffable against a direct `mule enumerate`).
    if attempt > 1 && !opts.flag("text") {
        writeln!(
            out,
            "# retry: attempt {attempt} succeeded after \
             {connect_failures} connect failure(s), {busy_replies} busy reply(s)"
        )
        .map_err(io_err)?;
    }
    let parsed = crate::wire::Json::parse(&reply);
    if opts.flag("text") {
        if let Ok(v) = &parsed {
            if v.get("cliques").is_some() {
                let alpha = v
                    .get("alpha")
                    .and_then(crate::wire::Json::as_f64)
                    .unwrap_or(0.0);
                let pairs = clique_pairs(v)?;
                ugraph_io::write_clique_list(&mut *out, alpha, &pairs).map_err(io_err)?;
            } else {
                writeln!(out, "{reply}").map_err(io_err)?;
            }
        }
    } else {
        writeln!(out, "{reply}").map_err(io_err)?;
    }
    // Map typed failure replies onto exit codes.
    if let Ok(v) = parsed {
        if v.get("ok") == Some(&crate::wire::Json::Bool(false)) {
            let code = v
                .get("error")
                .and_then(crate::wire::Json::as_str)
                .unwrap_or("unknown");
            let message = v
                .get("message")
                .and_then(crate::wire::Json::as_str)
                .unwrap_or("");
            return if matches!(code, "deadline_exceeded" | "budget_exhausted" | "cancelled") {
                Err(format!("INTERRUPTED: {code}: {message}"))
            } else {
                Err(format!("server replied {code}: {message}"))
            };
        }
    }
    Ok(())
}

/// Decode the `cliques` + `probs` arrays of an `enumerate` reply.
fn clique_pairs(v: &crate::wire::Json) -> Result<Vec<(Vec<VertexId>, f64)>, String> {
    use crate::wire::Json;
    let (Some(Json::Arr(cliques)), Some(Json::Arr(probs))) = (v.get("cliques"), v.get("probs"))
    else {
        return Err("reply lacks cliques/probs arrays".into());
    };
    if cliques.len() != probs.len() {
        return Err("cliques/probs length mismatch".into());
    }
    cliques
        .iter()
        .zip(probs)
        .map(|(c, p)| {
            let Json::Arr(vs) = c else {
                return Err("clique is not an array".to_string());
            };
            let clique: Vec<VertexId> = vs
                .iter()
                .map(|x| {
                    x.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| "vertex is not a u32".to_string())
                })
                .collect::<Result<_, _>>()?;
            let prob = p.as_f64().ok_or("prob is not a number")?;
            Ok((clique, prob))
        })
        .collect()
}

fn io_err(e: std::io::Error) -> String {
    format!("I/O error: {e}")
}

fn fmt_err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}
