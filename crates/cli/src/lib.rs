//! # mule-cli — the `mule` command-line tool
//!
//! A front end over the workspace for mining maximal cliques from
//! uncertain graphs without writing Rust:
//!
//! ```text
//! mule generate --dataset ca-GrQc --scale 0.1 --out g.ugb
//! mule stats g.ugb
//! mule enumerate g.ugb --alpha 0.1 --out cliques.txt
//! mule enumerate g.ugb --alpha 0.1 --min-size 4 --count-only
//! mule prepare g.ugb --alpha 0.1 --out g.ugq
//! mule stat g.ugq --list
//! mule enumerate --catalog g.ugq --count-only
//! mule topk g.ugb --alpha 0.1 --k 10
//! mule verify g.ugb --alpha 0.1 --cliques cliques.txt
//! mule sample g.ugb --clique 3,17,42 --samples 100000
//! mule convert g.ugb g.txt
//! ```
//!
//! Graph files ending in `.ugb` use the binary format; everything else is
//! the `u v p` text edge list. SNAP `u v` lists load via
//! `--snap --assign uniform` (probabilities drawn per edge, seeded).
//!
//! The crate is a thin argument-handling layer; all logic lives in the
//! library crates. `run` is exposed for integration tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod commands;
pub mod opts;
pub mod retry;
pub mod serve;
pub mod wire;

use std::io::Write;

/// Top-level usage string.
pub const USAGE: &str = "mule — maximal cliques in uncertain graphs (MULE, ICDE 2015)

USAGE: mule <command> [options]

COMMANDS:
  stats      <graph>                        summarize a graph
  enumerate  <graph> --alpha A              enumerate α-maximal cliques
               [--min-size T] [--threads N] [--count-only] [--out FILE]
               [--no-prune]                 (bypass the preprocessing pipeline)
               [--prune-report]             (print per-stage removal counts)
               [--index-mode auto|always|never]  (tiered neighborhood index;
                                            'never' = CSR gallop/merge only)
               [--index-budget BYTES]       (dense probability-row tier cap,
                                            per component kernel; 0 keeps
                                            only the bitset tier)
               [--timeout-ms N] [--node-budget N]  (bound the run; an
                                            interrupted run writes the
                                            output prefix plus a
                                            '# interrupted:' marker and
                                            exits 3)
  enumerate  --catalog FILE.ugq             enumerate from a prepared catalog
               [--threads N] [--count-only] (α, size threshold and index
               [--out FILE] [--prune-report] settings come from the catalog)
               [--timeout-ms N] [--node-budget N]
  prepare    <graph> --alpha A --out F.ugq  run the pipeline once, persist the
               [--min-size T] [--no-prune]  prepared session as a UGQ1 catalog
               [--index-mode M] [--index-budget BYTES]
  update     <catalog.ugq> --edges FILE     append a mutation batch (one op per
               [--compact]                  line: '+ u v p' insert, '- u v'
                                            delete, '= u v p' re-weight) as a
                                            crash-safe delta section; --compact
                                            folds pending deltas into the core
  stat       <catalog.ugq> [--list]         catalog header summary; --list adds
                                            the TOC with per-section CRC status
  topk       <graph> --alpha A --k K        k most probable α-maximal cliques
               [--skeleton]                 (skeleton-maximal instead: Zou et al.)
  verify     <graph> --alpha A --cliques F  verify a clique list
               [--complete]                 (also check completeness; n ≤ 25)
  sample     <graph> --clique V,V,..        Monte-Carlo clique probability
               [--samples N] [--seed S]
  convert    <in> <out>                     convert between text and .ugb
               [--snap] [--assign MODEL] [--seed S]
  generate   --dataset NAME --out FILE      build a Table-1 dataset stand-in
               [--seed S] [--scale X]       (NAME as in the paper, e.g. BA5000)
  serve      [--addr HOST:PORT]             TCP query server over .ugq catalogs
               [--workers N] [--queue-depth N] [--cache N]
               [--default-timeout-ms N] [--idle-timeout-ms N]
               [--frame-timeout-ms N]       (slow-loris cutoff per frame)
               [--busy-retry-ms N]          (retry_after_ms hint on 'busy')
               [--poison-threshold N]       (failures before a wedged base
                                            entry is evicted and reopened)
               [--compact-threshold N]      (pending deltas at which an
                                            'update' op auto-compacts; 0 off)
               [--log FILE] [--danger-test-ops]
               (newline-JSON protocol; 'shutdown' op drains and exits)
  serve      --connect HOST:PORT            client: send one request frame
               [--request JSON] [--text] [--no-newline]
               [--retries N] [--retry-base-ms N] [--retry-max-ms N]
               [--retry-seed S]             (deterministic jittered backoff on
                                            connect-refused and 'busy')
  kcore      <graph> [--k K]                expected-degree core decomposition
  worlds     <graph> [--worlds N] [--seed S] maximal-clique stats over sampled worlds
  datasets                                  list available dataset names

Graph files: '.ugb' = binary, otherwise 'u v p' text edge list.
Probability models for --assign: uniform | uniform:LO:HI | fixed:P | string-like
";

/// Run the CLI with explicit arguments and output streams; returns the
/// process exit code. `main` wraps this; tests call it directly.
pub fn run(args: &[String], stdout: &mut dyn Write, stderr: &mut dyn Write) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        let _ = write!(stderr, "{USAGE}");
        return 2;
    };
    let result = match command.as_str() {
        "stats" => commands::stats(rest, stdout),
        "enumerate" => commands::enumerate(rest, stdout),
        "prepare" => commands::prepare(rest, stdout),
        "update" => commands::update(rest, stdout),
        "stat" => commands::stat(rest, stdout),
        "topk" => commands::topk(rest, stdout),
        "verify" => commands::verify(rest, stdout),
        "sample" => commands::sample(rest, stdout),
        "convert" => commands::convert(rest, stdout),
        "generate" => commands::generate(rest, stdout),
        "datasets" => commands::datasets(rest, stdout),
        "kcore" => commands::kcore(rest, stdout),
        "worlds" => commands::worlds(rest, stdout),
        "serve" => commands::serve(rest, stdout),
        "help" | "--help" | "-h" => {
            let _ = write!(stdout, "{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => 0,
        Err(msg) => {
            let _ = writeln!(stderr, "error: {msg}");
            // Usage errors exit 2, verification failures exit 1 and
            // interrupted (deadline / budget / cancelled) runs exit 3 —
            // both flagged by the command with a sentinel prefix.
            if let Some(stripped) = msg.strip_prefix("VERIFY-FAILED: ") {
                let _ = writeln!(stderr, "{stripped}");
                1
            } else if msg.starts_with("INTERRUPTED: ") {
                3
            } else {
                2
            }
        }
    }
}
