//! The `mule serve` front end: a fault-tolerant TCP query server over
//! prepared UGQ1 catalogs.
//!
//! Std-only networking (newline-delimited JSON over `TcpListener`; see
//! [`crate::wire`] for the frame format) with the robustness shape the
//! exemplar serving systems use:
//!
//! * **Bounded admission.** Accepted connections enter a fixed-depth
//!   queue; when it is full the listener replies with a typed `busy`
//!   error and closes, instead of queueing unboundedly or hanging the
//!   client.
//! * **Big-stack scoped workers.** Requests run on
//!   `crossbeam::thread::scope` workers with
//!   [`mule::thread_util::BIG_STACK_BYTES`] (128 MiB) stacks — the
//!   enumeration kernel recurses per clique vertex, and a serving
//!   process must not die of stack overflow on an adversarial catalog.
//! * **Resident session LRU, α-aware.** Cache entries are keyed by
//!   catalog path and cold-opened on miss by sniffing the catalog
//!   header: a fixed-α catalog becomes one resident [`Prepared`]
//!   session, while an α-generic base catalog (`mule prepare --base`)
//!   becomes one resident [`mule::Base`] with its *own* LRU of refined
//!   per-α [`Prepared`] views hanging off it — the expensive
//!   α-independent artifact is loaded once and every requested α is a
//!   cheap refinement (cache-hit or [`mule::Base::refine`]), never a
//!   full pipeline run. Per-base `refine_hits` / `refine_misses`
//!   counters are surfaced by the `stat` op. Entries are *taken out*
//!   of the cache while a request runs — no lock is held during
//!   enumeration, a poisoned view can simply be dropped, and the base
//!   it came from survives. (A `stat` issued while the only resident
//!   entry is in flight reports `resident:false`; counters are
//!   lifetime totals and come back with the entry.)
//! * **Per-request deadlines and budgets.** `timeout_ms` /
//!   `node_budget` request fields (or the server-wide
//!   `--default-timeout-ms`) arm the session's cooperative limits;
//!   interrupted queries return typed `deadline_exceeded` /
//!   `budget_exhausted` replies with partial stats, and the session
//!   goes back into the cache unharmed.
//! * **Panic isolation.** Each request body runs under
//!   [`std::panic::catch_unwind`]; a panicking request gets an
//!   `internal_error` reply, its session is discarded, and the server
//!   keeps serving.
//! * **Clean drain.** A `shutdown` request stops the accept loop;
//!   workers finish the queued connections, then the process exits.
//!
//! Every hostile input — malformed JSON, oversized or truncated
//! frames, mid-stream disconnects, unknown ops, missing catalogs —
//! produces either one complete typed error reply or a closed
//! connection. Never a partial frame, never a dead server.
//!
//! # Durability &amp; recovery
//!
//! The chaos-hardening layer on top of the above:
//!
//! * **Slow-loris defense.** Besides the per-connection *idle* timeout
//!   (no bytes at all), a connection that dribbles a frame one byte at
//!   a time is cut off once the frame has been in flight longer than
//!   `--frame-timeout-ms` — a peer can no longer pin a worker by
//!   trickling forever.
//! * **Retry contract.** A shed connection's `busy` reply carries
//!   `retry_after_ms`, the server's hint for the client's next attempt;
//!   `serve --connect` honors it (taking the max of the hint and its
//!   own jittered exponential backoff) and retries both `busy` replies
//!   and refused connections up to `--retries` times. Interrupted
//!   queries (`deadline_exceeded` / `budget_exhausted` / `cancelled`)
//!   keep exit code 3 at the CLI — they are *results* (partial,
//!   typed), not transient faults, and are never retried.
//! * **Deadline-aware admission.** The effective deadline
//!   (`timeout_ms`, else `--default-timeout-ms`) is checked *before*
//!   any catalog work: an already-expired request (zero budget) gets a
//!   typed `deadline_exceeded` with `"rejected":true` instead of
//!   consuming a session, open, or refine.
//! * **Poisoned-entry recovery.** A resident base whose refines or
//!   views keep panicking is not allowed to wedge its catalog key:
//!   after `--poison-threshold` failures the entry is evicted and the
//!   next request cold-reopens the catalog from disk (which is itself
//!   crash-safe — saves are atomic-durable and orphan temp files are
//!   cleaned on open; see `ugraph_io::catalog`'s "Durability &amp;
//!   recovery" docs). Evictions and reopens are counted.
//! * **Resilience counters.** The `stat` op (catalog field now
//!   optional) reports server-wide totals: `shed`, `retries_hinted`,
//!   `expired_rejected`, `idle_closes`, `slowloris_closes`,
//!   `poison_evictions`, `poison_reopens`, `panics_isolated`,
//!   `updates`, `compactions`.
//! * **Live mutation.** The `update` op appends a typed
//!   [`mule::GraphDelta`] batch to the catalog file (validated and
//!   atomic-durable — see [`mule::catalog::append_delta`]) and folds
//!   the same batch into the resident session via the incremental
//!   [`mule::Prepared::apply`] / [`mule::Base::apply`] path, dropping
//!   a base's stale refined views; past `--compact-threshold` pending
//!   sections the catalog is rewritten clean
//!   ([`mule::catalog::compact`]). Warm and cold queries alike serve
//!   the mutated graph, byte-identical to a fresh prepare of it.

use crate::wire::{err_reply, ok_reply, Json, ObjBuilder, Request};
use mule::sinks::{CollectSink, CountSink};
use mule::{Base, MuleError, Prepared, Query};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tunables; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the bound address is
    /// printed and available via [`Server::addr`]).
    pub addr: String,
    /// Request worker threads (each on a 128 MiB stack).
    pub workers: usize,
    /// Admission-queue depth; beyond it, connections are shed with a
    /// typed `busy` reply.
    pub queue_depth: usize,
    /// Resident prepared-session LRU capacity (catalog paths).
    pub cache_capacity: usize,
    /// Largest accepted request frame in bytes; longer lines get an
    /// `oversized_frame` reply and the connection is closed.
    pub max_frame_bytes: usize,
    /// Deadline applied when a request doesn't carry `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Per-connection idle read timeout.
    pub idle_timeout: Duration,
    /// Maximum time one frame may stay in flight (first byte to
    /// newline) before the connection is cut — slow-loris defense.
    pub frame_timeout: Duration,
    /// The `retry_after_ms` hint attached to `busy` replies.
    pub busy_retry_ms: u64,
    /// Consecutive refine/view failures before a resident base entry
    /// is evicted (and later reopened from disk) instead of staying
    /// wedged in the cache.
    pub poison_threshold: u32,
    /// Pending `delta.{i}` sections at which an `update` triggers
    /// automatic catalog compaction (`mule::catalog::compact`); `0`
    /// disables auto-compaction (deltas accumulate until `mule update
    /// --compact` or a manual compact).
    pub compact_threshold: usize,
    /// Honor the `panic` test op (fault-injection drills only).
    pub danger_test_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 8,
            max_frame_bytes: 1 << 20,
            default_timeout_ms: None,
            idle_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(10),
            busy_retry_ms: 50,
            poison_threshold: 3,
            compact_threshold: 8,
            danger_test_ops: false,
        }
    }
}

/// Blocking-read slice: a worker waiting for the next frame wakes this
/// often to check the shutdown flag and the idle clock, so a drain
/// never stalls behind a silent-but-open connection.
const READ_POLL: Duration = Duration::from_millis(100);

/// Where server diagnostics go (one line per event).
pub type Log = Arc<Mutex<Box<dyn Write + Send>>>;

/// Build a [`Log`] over any writer.
pub fn log_to(w: Box<dyn Write + Send>) -> Log {
    Arc::new(Mutex::new(w))
}

/// Lifetime resilience totals, surfaced by the `stat` op. All relaxed:
/// they are monotone telemetry, not synchronization.
#[derive(Default)]
struct Counters {
    /// Connections shed with a `busy` reply (admission queue full).
    shed: AtomicU64,
    /// `retry_after_ms` hints attached to replies.
    retries_hinted: AtomicU64,
    /// Requests rejected at admission with an already-expired deadline.
    expired_rejected: AtomicU64,
    /// Connections closed for idling past the idle timeout.
    idle_closes: AtomicU64,
    /// Connections cut for dribbling a frame past the frame timeout.
    slowloris_closes: AtomicU64,
    /// Resident entries evicted after repeated refine/view failures.
    poison_evictions: AtomicU64,
    /// Cold reopens of a previously poison-evicted catalog key.
    poison_reopens: AtomicU64,
    /// Request-body panics caught and turned into `internal_error`.
    panics_isolated: AtomicU64,
    /// `update` batches accepted (appended to a catalog file).
    updates: AtomicU64,
    /// Automatic threshold-triggered catalog compactions.
    compactions: AtomicU64,
}

impl Counters {
    fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
    fn get(c: &AtomicU64) -> f64 {
        c.load(Ordering::Relaxed) as f64
    }
}

struct Shared {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    cache: Mutex<SessionCache>,
    counters: Counters,
    /// Catalog keys whose resident entry was poison-evicted; a
    /// successful cold reopen removes the key and counts a reopen.
    poisoned: Mutex<Vec<String>>,
    log: Log,
}

impl Shared {
    fn log(&self, line: &str) {
        if let Ok(mut w) = self.log.lock() {
            let _ = writeln!(w, "[serve] {line}");
            let _ = w.flush();
        }
    }
}

/// One resident cache entry: what a catalog path resolves to.
///
/// Both variants are hundreds of bytes; the cache holds a handful of
/// entries and they move only on take/put, so boxing buys nothing.
#[allow(clippy::large_enum_variant)]
enum Resident {
    /// A fixed-α prepared instance — the catalog bakes in its α.
    Fixed(Prepared),
    /// An α-generic base plus its refined per-α views.
    Base(BaseEntry),
}

/// A resident [`Base`] with an LRU of refined [`Prepared`] views keyed
/// by the requested α's bit pattern, plus lifetime refine-cache
/// counters (`hits` = view served from the LRU, `misses` = view built
/// by [`Base::refine`], including the first request after a cold open).
struct BaseEntry {
    base: Base,
    /// Most-recently-used at the back; views are *taken* while in use.
    views: Vec<(u64, Prepared)>,
    view_cap: usize,
    refine_hits: u64,
    refine_misses: u64,
    /// Consecutive refine/view panics; at the server's poison
    /// threshold the whole entry is evicted and later reopened from
    /// disk instead of wedging its catalog key.
    failures: u32,
}

impl BaseEntry {
    fn take_view(&mut self, bits: u64) -> Option<Prepared> {
        let i = self.views.iter().position(|(b, _)| *b == bits)?;
        Some(self.views.remove(i).1)
    }

    fn put_view(&mut self, bits: u64, view: Prepared) {
        self.views.retain(|(b, _)| *b != bits);
        self.views.push((bits, view));
        while self.views.len() > self.view_cap.max(1) {
            self.views.remove(0); // least recently used α
        }
    }
}

/// Most-recently-used at the back; entries are *taken* while in use.
struct SessionCache {
    cap: usize,
    entries: Vec<(String, Resident)>,
}

impl SessionCache {
    fn take(&mut self, key: &str) -> Option<Resident> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Non-removing lookup for the `stat` op; does not refresh recency.
    fn peek(&self, key: &str) -> Option<&Resident> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, r)| r)
    }

    fn put(&mut self, key: String, entry: Resident) {
        self.entries.retain(|(k, _)| *k != key);
        self.entries.push((key, entry));
        while self.entries.len() > self.cap.max(1) {
            self.entries.remove(0); // least recently used
        }
    }
}

/// A running server: bound address plus the supervisor join handle.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving in background threads; returns once the
    /// listener is accepting.
    pub fn start(cfg: ServeConfig, log: Log) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cache_cap = cfg.cache_capacity;
        let shared = Arc::new(Shared {
            cfg,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cache: Mutex::new(SessionCache {
                cap: cache_cap,
                entries: Vec::new(),
            }),
            counters: Counters::default(),
            poisoned: Mutex::new(Vec::new()),
            log,
        });
        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("mule-serve-supervisor".to_string())
            .spawn(move || supervise(listener, sup_shared))?;
        Ok(Server {
            addr,
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown from the hosting process (same effect as a
    /// `shutdown` frame).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
    }

    /// Block until the server has drained and every worker exited.
    pub fn join(mut self) {
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// Accept loop plus worker pool; returns when shut down and drained.
fn supervise(listener: TcpListener, shared: Arc<Shared>) {
    shared.log(&format!(
        "listening on {} ({} workers, queue depth {})",
        listener
            .local_addr()
            .map_or("?".to_string(), |a| a.to_string()),
        shared.cfg.workers,
        shared.cfg.queue_depth
    ));
    let result = crossbeam::thread::scope(|scope| {
        for i in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            scope
                .builder()
                .name(format!("mule-serve-worker-{i}"))
                .stack_size(mule::thread_util::BIG_STACK_BYTES)
                .spawn(move |_| worker_loop(&shared))
                .expect("spawn serve worker");
        }
        accept_loop(&listener, &shared);
        // Wake sleeping workers so they notice the shutdown flag and
        // drain whatever is still queued.
        shared.queue_cv.notify_all();
    });
    debug_assert!(result.is_ok(), "worker panics are caught per-request");
    shared.log("drained; exiting");
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => admit(stream, peer, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                shared.log(&format!("accept error: {e}"));
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn admit(mut stream: TcpStream, peer: SocketAddr, shared: &Shared) {
    let mut queue = shared.queue.lock().unwrap();
    if queue.len() >= shared.cfg.queue_depth {
        drop(queue); // shed load without holding the lock for I/O
        Counters::bump(&shared.counters.shed);
        Counters::bump(&shared.counters.retries_hinted);
        shared.log(&format!(
            "busy: shedding {peer} (retry_after_ms {})",
            shared.cfg.busy_retry_ms
        ));
        let line = err_reply("busy", "admission queue full, retry later")
            .field("retry_after_ms", Json::Num(shared.cfg.busy_retry_ms as f64))
            .render();
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.write_all(b"\n");
        return; // dropped => closed
    }
    queue.push_back(stream);
    drop(queue);
    shared.queue_cv.notify_one();
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = next_connection(shared) {
        handle_connection(stream, shared);
    }
}

/// Pop an accepted connection; `None` only after shutdown *and* an
/// empty queue — queued work is drained, not dropped.
fn next_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = shared.queue.lock().unwrap();
    loop {
        if let Some(s) = queue.pop_front() {
            return Some(s);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let (guard, _) = shared
            .queue_cv
            .wait_timeout(queue, Duration::from_millis(100))
            .unwrap();
        queue = guard;
    }
}

enum Frame {
    Line(String),
    Oversized,
    Closed,
    /// No bytes at all for the idle window.
    IdleExpired,
    /// A frame stayed in flight (started but unfinished) past the
    /// frame timeout — the slow-loris signature.
    Stalled,
}

/// Incremental newline framing over a raw stream; never allocates past
/// the configured cap.
struct FrameReader {
    buf: Vec<u8>,
    max: usize,
}

impl FrameReader {
    /// Wait for the next frame, polling in short slices so a blocked
    /// worker notices a shutdown request within [`READ_POLL`] instead
    /// of a full idle timeout. Returns [`Frame::Closed`] on EOF,
    /// reset, or shutdown-while-idle; [`Frame::IdleExpired`] when no
    /// bytes arrive for the idle window; [`Frame::Stalled`] when
    /// a started frame dribbles past `frame_timeout` without its
    /// newline (slow loris).
    fn next(
        &mut self,
        stream: &mut TcpStream,
        shutdown: &AtomicBool,
        idle_timeout: Duration,
        frame_timeout: Duration,
    ) -> Frame {
        let mut last_data = std::time::Instant::now();
        // Leftover bytes from the previous read already start a frame.
        let mut frame_start: Option<Instant> = (!self.buf.is_empty()).then(Instant::now);
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(nl + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => Frame::Line(s),
                    // Invalid UTF-8 is a malformed frame, not a crash.
                    Err(e) => Frame::Line(String::from_utf8_lossy(e.as_bytes()).into_owned()),
                };
            }
            if self.buf.len() > self.max {
                return Frame::Oversized;
            }
            if let Some(started) = frame_start {
                if started.elapsed() >= frame_timeout {
                    return Frame::Stalled;
                }
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Frame::Closed, // EOF (truncated frame if buf non-empty)
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    last_data = std::time::Instant::now();
                    frame_start.get_or_insert(last_data);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // One poll slice expired with no data: drop the
                    // connection if the server is draining or the
                    // client has been silent past the idle window.
                    if shutdown.load(Ordering::Acquire) {
                        return Frame::Closed;
                    }
                    if last_data.elapsed() >= idle_timeout {
                        return Frame::IdleExpired;
                    }
                }
                Err(_) => return Frame::Closed, // reset mid-frame
            }
        }
    }
}

fn send_line(stream: &mut TcpStream, line: &str) -> bool {
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    // One write_all per reply: the frame is either fully queued to the
    // kernel or the connection is abandoned — no partial frames from
    // interleaved writers.
    stream
        .write_all(&framed)
        .and_then(|_| stream.flush())
        .is_ok()
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let peer = stream
        .peer_addr()
        .map_or("?".to_string(), |a| a.to_string());
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut frames = FrameReader {
        buf: Vec::new(),
        max: shared.cfg.max_frame_bytes,
    };
    loop {
        match frames.next(
            &mut stream,
            &shared.shutdown,
            shared.cfg.idle_timeout,
            shared.cfg.frame_timeout,
        ) {
            Frame::Closed => {
                // EOF, reset, or shutdown — possibly mid-frame; the
                // client is gone either way.
                return;
            }
            Frame::IdleExpired => {
                Counters::bump(&shared.counters.idle_closes);
                shared.log(&format!("{peer}: idle timeout; closing"));
                return;
            }
            Frame::Stalled => {
                Counters::bump(&shared.counters.slowloris_closes);
                shared.log(&format!(
                    "{peer}: frame in flight past {:?}; cutting slow connection",
                    shared.cfg.frame_timeout
                ));
                return; // mid-frame: cannot reply in-protocol, just cut
            }
            Frame::Oversized => {
                shared.log(&format!("{peer}: oversized frame"));
                let line = err_reply(
                    "oversized_frame",
                    &format!("request exceeds {} bytes", shared.cfg.max_frame_bytes),
                )
                .render();
                let _ = send_line(&mut stream, &line);
                return; // cannot resync framing; close
            }
            Frame::Line(text) => {
                if text.trim().is_empty() {
                    continue; // blank keep-alive lines are tolerated
                }
                let (reply, close) = handle_frame(&text, shared, &peer);
                if !send_line(&mut stream, &reply) {
                    shared.log(&format!("{peer}: write failed (client disconnected)"));
                    return;
                }
                if close || shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// Decode and execute one frame. Returns `(reply line, close?)`.
/// Catches panics: the request gets `internal_error`, the server lives.
fn handle_frame(text: &str, shared: &Shared, peer: &str) -> (String, bool) {
    let request = match Json::parse(text).and_then(|v| Request::from_json(&v)) {
        Ok(r) => r,
        Err(e) => {
            shared.log(&format!("{peer}: bad request: {e}"));
            return (err_reply("bad_request", &e).render(), false);
        }
    };
    match request.op.as_str() {
        "ping" => (ok_reply("ping").render(), false),
        "shutdown" => {
            shared.log(&format!("{peer}: shutdown requested"));
            shared.shutdown.store(true, Ordering::Release);
            shared.queue_cv.notify_all();
            (ok_reply("shutdown").render(), true)
        }
        "panic" if !shared.cfg.danger_test_ops => (
            err_reply("bad_request", "op \"panic\" requires --danger-test-ops").render(),
            false,
        ),
        "stat" => (run_stat(&request, shared), false),
        "update" => (run_update(&request, shared, peer), false),
        "count" | "enumerate" | "top_k" | "panic" => {
            let reply = run_query(&request, shared, peer);
            (reply, false)
        }
        other => (
            err_reply("bad_request", &format!("unknown op {other:?}")).render(),
            false,
        ),
    }
}

/// Cold-open a catalog path into a resident entry, sniffing the header
/// for the α-base flag to pick the right open path.
fn open_resident(catalog: &str, view_cap: usize) -> Result<Resident, String> {
    // Clear any orphan temp a crashed save left beside the catalog;
    // atomic saves guarantee the catalog itself is never torn.
    ugraph_io::fault::cleanup_orphan(std::path::Path::new(catalog));
    let data = std::fs::read(catalog).map_err(|e| e.to_string())?;
    let is_base = ugraph_io::Catalog::from_bytes(ugraph_io::Bytes::from(data.clone()))
        .map(|c| c.header().flags & ugraph_io::catalog::FLAG_ALPHA_BASE != 0)
        .unwrap_or(false);
    if is_base {
        let base = Query::open_base_bytes(data).map_err(|e| e.to_string())?;
        Ok(Resident::Base(BaseEntry {
            base,
            views: Vec::new(),
            view_cap,
            refine_hits: 0,
            refine_misses: 0,
            failures: 0,
        }))
    } else {
        Query::open_bytes(data)
            .map(Resident::Fixed)
            .map_err(|e| e.to_string())
    }
}

/// Execute a catalog-backed query with panic isolation. The resident
/// entry is taken out of the LRU (or cold-opened) before
/// `catch_unwind`, so no lock is ever poisoned; on success it is
/// returned to the cache, on panic the executing view is dropped (but
/// a resident base, which never ran inside the request, survives).
fn run_query(request: &Request, shared: &Shared, peer: &str) -> String {
    let Some(catalog) = request.catalog.clone() else {
        return err_reply("bad_request", "missing field \"catalog\"").render();
    };
    // Deadline-aware admission: resolve the effective deadline (the
    // request's, else the server default) *before* any catalog work.
    // A zero budget is already expired — reject it typed and cheap
    // rather than opening/taking a session it cannot use.
    let mut request = request.clone();
    request.timeout_ms = request.timeout_ms.or(shared.cfg.default_timeout_ms);
    let request = &request;
    if request.timeout_ms == Some(0) {
        Counters::bump(&shared.counters.expired_rejected);
        shared.log(&format!(
            "{peer}: rejected at admission: deadline already expired"
        ));
        return err_reply(
            "deadline_exceeded",
            "request deadline already expired at admission; no work performed",
        )
        .field("rejected", Json::Bool(true))
        .render();
    }
    let cached = shared.cache.lock().unwrap().take(&catalog);
    let was_cached = cached.is_some();
    let resident = match cached {
        Some(r) => r,
        None => match open_resident(&catalog, shared.cfg.cache_capacity) {
            Ok(r) => {
                // A key on the poisoned list coming back resident is a
                // successful recovery — count the reopen.
                let mut poisoned = shared.poisoned.lock().unwrap();
                if let Some(i) = poisoned.iter().position(|k| k == &catalog) {
                    poisoned.remove(i);
                    Counters::bump(&shared.counters.poison_reopens);
                    shared.log(&format!(
                        "{peer}: reopened previously poisoned catalog {catalog:?}"
                    ));
                }
                r
            }
            Err(e) => {
                shared.log(&format!("{peer}: catalog {catalog:?}: {e}"));
                return err_reply("catalog_error", &format!("{catalog}: {e}")).render();
            }
        },
    };
    match resident {
        Resident::Fixed(session) => {
            if let Some(a) = request.alpha {
                if a.to_bits() != session.alpha().to_bits() {
                    let msg = format!(
                        "catalog is a fixed-α prepared instance at α = {}; \
                         omit \"alpha\" or match it exactly",
                        session.alpha()
                    );
                    let mut cache = shared.cache.lock().unwrap();
                    cache.put(catalog, Resident::Fixed(session));
                    return err_reply("bad_request", &msg).render();
                }
            }
            run_view(request, shared, peer, catalog, None, session, was_cached)
        }
        Resident::Base(mut entry) => {
            let Some(alpha) = request.alpha else {
                shared
                    .cache
                    .lock()
                    .unwrap()
                    .put(catalog, Resident::Base(entry));
                return err_reply(
                    "bad_request",
                    "catalog holds an α-generic base: field \"alpha\" is required",
                )
                .render();
            };
            let bits = alpha.to_bits();
            let view = match entry.take_view(bits) {
                Some(v) => {
                    entry.refine_hits += 1;
                    v
                }
                None => {
                    entry.refine_misses += 1;
                    // Refinement runs on cached state a previous panic
                    // may have mangled — isolate it exactly like the
                    // request body, and count a failure against the
                    // entry so a wedged base gets evicted, not retried
                    // forever.
                    let refined = catch_unwind(AssertUnwindSafe(|| entry.base.refine(alpha)));
                    match refined {
                        Ok(Ok(v)) => v,
                        Ok(Err(e)) => {
                            // e.g. α below the base's floor — a client
                            // error; the base stays resident.
                            let msg = e.to_string();
                            shared
                                .cache
                                .lock()
                                .unwrap()
                                .put(catalog, Resident::Base(entry));
                            return err_reply("bad_request", &msg).render();
                        }
                        Err(_) => {
                            Counters::bump(&shared.counters.panics_isolated);
                            shared.log(&format!(
                                "{peer}: refine(α={alpha}) panicked on {catalog:?}"
                            ));
                            poison_or_restore(shared, catalog, entry);
                            return err_reply(
                                "internal_error",
                                "refine panicked; base failure recorded",
                            )
                            .render();
                        }
                    }
                }
            };
            run_view(
                request,
                shared,
                peer,
                catalog,
                Some((entry, bits)),
                view,
                was_cached,
            )
        }
    }
}

/// Run the op body on one prepared view under panic isolation, then
/// return the view — and, for a base-backed view, the base entry with
/// its counters — to the cache.
fn run_view(
    request: &Request,
    shared: &Shared,
    peer: &str,
    catalog: String,
    base: Option<(BaseEntry, u64)>,
    session: Prepared,
    was_cached: bool,
) -> String {
    let req = request.clone();
    let shed = AssertUnwindSafe((session, req));
    let outcome = catch_unwind(move || {
        let AssertUnwindSafe((mut session, req)) = shed;
        let reply = execute(&mut session, &req);
        // Limits are per-request state; never leak them into the next
        // request served from the cache.
        session.set_deadline(None);
        session.set_node_budget(None);
        session.set_cancel_token(None);
        (reply, session)
    });
    match outcome {
        Ok((reply, session)) => {
            let resident = match base {
                None => Resident::Fixed(session),
                Some((mut entry, bits)) => {
                    entry.put_view(bits, session);
                    // A completed request clears the consecutive-
                    // failure streak: poisoning targets wedged
                    // entries, not occasionally unlucky ones.
                    entry.failures = 0;
                    Resident::Base(entry)
                }
            };
            shared.cache.lock().unwrap().put(catalog, resident);
            reply
        }
        Err(payload) => {
            Counters::bump(&shared.counters.panics_isolated);
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            shared.log(&format!(
                "{peer}: request panicked ({what}); session discarded (was cached: {was_cached})"
            ));
            if let Some((entry, _)) = base {
                // Only the refined view unwound; the base survives —
                // unless repeated failures say it is itself wedged.
                poison_or_restore(shared, catalog, entry);
            }
            err_reply(
                "internal_error",
                "request worker panicked; session discarded",
            )
            .render()
        }
    }
}

/// Record one failure against a base entry: restore it to the cache,
/// or — at the server's poison threshold — evict it and remember the
/// key so the next cold reopen is counted as a recovery.
fn poison_or_restore(shared: &Shared, catalog: String, mut entry: BaseEntry) {
    entry.failures += 1;
    if entry.failures >= shared.cfg.poison_threshold.max(1) {
        Counters::bump(&shared.counters.poison_evictions);
        shared.log(&format!(
            "poisoned: evicting {catalog:?} after {} consecutive failures; \
             next request reopens from disk",
            entry.failures
        ));
        let mut poisoned = shared.poisoned.lock().unwrap();
        if !poisoned.iter().any(|k| k == &catalog) {
            poisoned.push(catalog);
        }
        // entry dropped here — views and base are discarded.
    } else {
        shared
            .cache
            .lock()
            .unwrap()
            .put(catalog, Resident::Base(entry));
    }
}

/// The `update` op: append a mutation batch to the catalog file, fold
/// it into the resident session (if any), and auto-compact past the
/// server's threshold.
///
/// Ordering is durability-first: the batch lands on disk (validated,
/// atomic-durable; see [`mule::catalog::append_delta`]) before any
/// in-memory state moves, so a crash after the reply can only leave
/// *more* persisted than resident — never the reverse. The resident
/// fold then keeps warm traffic on the mutated graph without a cold
/// reopen: a fixed-α session gets [`mule::Prepared::apply`], a resident
/// base gets [`mule::Base::apply`] and drops its refined per-α views
/// (all stale). If the resident fold fails or panics the entry is
/// simply evicted — the next request cold-reopens from the
/// deltas-replayed file, which the append already proved valid.
fn run_update(request: &Request, shared: &Shared, peer: &str) -> String {
    let Some(catalog) = request.catalog.clone() else {
        return err_reply("bad_request", "missing field \"catalog\"").render();
    };
    let Some(delta) = request.ops.as_ref() else {
        return err_reply("bad_request", "update requires field \"ops\"").render();
    };
    let started = Instant::now();
    let pending = match mule::catalog::append_delta(&catalog, delta) {
        Ok(p) => p,
        Err(MuleError::Delta(msg)) => {
            shared.log(&format!("{peer}: update rejected on {catalog:?}: {msg}"));
            return err_reply("update_rejected", &msg).render();
        }
        Err(e) => {
            shared.log(&format!("{peer}: update on {catalog:?}: {e}"));
            return err_reply("catalog_error", &format!("{catalog}: {e}")).render();
        }
    };
    Counters::bump(&shared.counters.updates);
    // Bind the take outside the `if let` scrutinee: the guard temporary
    // would otherwise live for the whole body and deadlock on the
    // re-lock in the success arm.
    let taken = shared.cache.lock().unwrap().take(&catalog);
    if let Some(resident) = taken {
        let folded = catch_unwind(AssertUnwindSafe(|| match resident {
            Resident::Fixed(mut session) => session.apply(delta).map(|()| Resident::Fixed(session)),
            Resident::Base(mut entry) => entry.base.apply(delta).map(|()| {
                // Every refined per-α view was derived from the
                // pre-update base: all stale, drop them.
                entry.views.clear();
                Resident::Base(entry)
            }),
        }));
        match folded {
            Ok(Ok(entry)) => shared.cache.lock().unwrap().put(catalog.clone(), entry),
            Ok(Err(e)) => shared.log(&format!(
                "{peer}: resident fold failed on {catalog:?} ({e}); evicted, next request reopens"
            )),
            Err(_) => {
                Counters::bump(&shared.counters.panics_isolated);
                shared.log(&format!(
                    "{peer}: resident fold panicked on {catalog:?}; evicted"
                ));
            }
        }
    }
    let mut compacted = false;
    let threshold = shared.cfg.compact_threshold;
    if threshold > 0 && pending >= threshold {
        match mule::catalog::compact(&catalog) {
            Ok(folded) => {
                compacted = folded > 0;
                if compacted {
                    Counters::bump(&shared.counters.compactions);
                    shared.log(&format!(
                        "{peer}: compacted {catalog:?} ({folded} pending deltas folded)"
                    ));
                }
            }
            // Compaction failure is not an update failure: the appended
            // delta is durable and replayable; compaction retries on
            // the next threshold crossing.
            Err(e) => shared.log(&format!(
                "{peer}: compaction of {catalog:?} failed ({e}); deltas remain pending"
            )),
        }
    }
    ok_reply("update")
        .field("applied", Json::Num(delta.len() as f64))
        .field(
            "pending",
            Json::Num(if compacted { 0.0 } else { pending as f64 }),
        )
        .field("compacted", Json::Bool(compacted))
        .field("elapsed_ms", Json::Num(ms(started)))
        .render()
}

/// The `stat` op: server-wide resilience counters, plus — when the
/// (optional) `catalog` field is present — what is resident for that
/// path, without cold-opening or touching recency. A base entry also
/// reports its refine-cache counters.
fn run_stat(request: &Request, shared: &Shared) -> String {
    let c = &shared.counters;
    let mut reply: ObjBuilder = ok_reply("stat")
        .field("shed", Json::Num(Counters::get(&c.shed)))
        .field(
            "retries_hinted",
            Json::Num(Counters::get(&c.retries_hinted)),
        )
        .field(
            "expired_rejected",
            Json::Num(Counters::get(&c.expired_rejected)),
        )
        .field("idle_closes", Json::Num(Counters::get(&c.idle_closes)))
        .field(
            "slowloris_closes",
            Json::Num(Counters::get(&c.slowloris_closes)),
        )
        .field(
            "poison_evictions",
            Json::Num(Counters::get(&c.poison_evictions)),
        )
        .field(
            "poison_reopens",
            Json::Num(Counters::get(&c.poison_reopens)),
        )
        .field(
            "panics_isolated",
            Json::Num(Counters::get(&c.panics_isolated)),
        )
        .field("updates", Json::Num(Counters::get(&c.updates)))
        .field("compactions", Json::Num(Counters::get(&c.compactions)));
    let Some(catalog) = request.catalog.as_deref() else {
        return reply.render();
    };
    reply = reply.field("catalog", Json::Str(catalog.to_string()));
    let cache = shared.cache.lock().unwrap();
    match cache.peek(catalog) {
        None => reply.field("resident", Json::Bool(false)).render(),
        Some(Resident::Fixed(session)) => reply
            .field("resident", Json::Bool(true))
            .field("kind", Json::Str("fixed".to_string()))
            .field("alpha", Json::Num(session.alpha()))
            .render(),
        Some(Resident::Base(entry)) => reply
            .field("resident", Json::Bool(true))
            .field("kind", Json::Str("base".to_string()))
            .field("floor", Json::Num(entry.base.floor()))
            .field("views", Json::Num(entry.views.len() as f64))
            .field("refine_hits", Json::Num(entry.refine_hits as f64))
            .field("refine_misses", Json::Num(entry.refine_misses as f64))
            .field("failures", Json::Num(entry.failures as f64))
            .render(),
    }
}

/// The op body proper — everything here may run under a deadline.
fn execute(session: &mut Prepared, req: &Request) -> String {
    if req.op == "panic" {
        panic!("deliberate test panic (danger op)");
    }
    session.set_deadline(req.timeout_ms.map(Duration::from_millis));
    session.set_node_budget(req.node_budget);
    let started = Instant::now();
    match req.op.as_str() {
        "count" => {
            let mut sink = CountSink::new();
            match session.stream(&mut sink) {
                Ok(stats) => ok_reply("count")
                    .field("count", Json::Num(sink.count as f64))
                    .field("max_size", Json::Num(sink.max_size as f64))
                    .field("search_nodes", Json::Num(stats.calls as f64))
                    .field("elapsed_ms", Json::Num(ms(started)))
                    .render(),
                Err(e) => interrupted_reply(e),
            }
        }
        "enumerate" => {
            let mut sink = CollectSink::new();
            let result = session.stream(&mut sink).copied();
            let limit = req.limit.unwrap_or(u64::MAX) as usize;
            let pairs = sink.into_pairs();
            let truncated = pairs.len() > limit;
            let shown = &pairs[..pairs.len().min(limit)];
            let cliques = Json::Arr(
                shown
                    .iter()
                    .map(|(c, _)| Json::Arr(c.iter().map(|&v| Json::Num(v as f64)).collect()))
                    .collect(),
            );
            let probs = Json::Arr(shown.iter().map(|&(_, p)| Json::Num(p)).collect());
            match result {
                Ok(stats) => ok_reply("enumerate")
                    .field("alpha", Json::Num(session.alpha()))
                    .field("count", Json::Num(pairs.len() as f64))
                    .field("truncated", Json::Bool(truncated))
                    .field("cliques", cliques)
                    .field("probs", probs)
                    .field("search_nodes", Json::Num(stats.calls as f64))
                    .field("elapsed_ms", Json::Num(ms(started)))
                    .render(),
                // The partial prefix is still included: the emitted
                // rows are a byte-identical prefix of the full stream
                // (the library's interruption guarantee).
                Err(e) => match interrupt_code(&e) {
                    Some(code) => err_reply(code, &e.to_string())
                        .field("partial", Json::Bool(true))
                        .field("alpha", Json::Num(session.alpha()))
                        .field("count", Json::Num(pairs.len() as f64))
                        .field("cliques", cliques)
                        .field("probs", probs)
                        .field("elapsed_ms", Json::Num(ms(started)))
                        .render(),
                    None => err_reply("query_error", &e.to_string()).render(),
                },
            }
        }
        "top_k" => {
            let Some(k) = req.k else {
                return err_reply("bad_request", "top_k requires field \"k\"").render();
            };
            match session.top_k(k as usize) {
                Ok(top) => ok_reply("top_k")
                    .field("alpha", Json::Num(session.alpha()))
                    .field(
                        "cliques",
                        Json::Arr(
                            top.iter()
                                .map(|(c, _)| {
                                    Json::Arr(c.iter().map(|&v| Json::Num(v as f64)).collect())
                                })
                                .collect(),
                        ),
                    )
                    .field(
                        "probs",
                        Json::Arr(top.iter().map(|&(_, p)| Json::Num(p)).collect()),
                    )
                    .field("elapsed_ms", Json::Num(ms(started)))
                    .render(),
                Err(MuleError::ZeroTopK) => {
                    err_reply("bad_request", "k must be at least 1").render()
                }
                Err(e) => interrupted_reply(e),
            }
        }
        _ => unreachable!("handle_frame routed a non-query op"),
    }
}

fn ms(started: Instant) -> f64 {
    started.elapsed().as_secs_f64() * 1e3
}

fn interrupt_code(e: &MuleError) -> Option<&'static str> {
    match e {
        MuleError::DeadlineExceeded { .. } => Some("deadline_exceeded"),
        MuleError::BudgetExhausted { .. } => Some("budget_exhausted"),
        MuleError::Cancelled { .. } => Some("cancelled"),
        _ => None,
    }
}

fn interrupted_reply(e: MuleError) -> String {
    match (interrupt_code(&e), e.interrupted_stats()) {
        (Some(code), Some(stats)) => err_reply(code, &e.to_string())
            .field("partial", Json::Bool(true))
            .field("emitted", Json::Num(stats.emitted as f64))
            .field("search_nodes", Json::Num(stats.calls as f64))
            .render(),
        _ => err_reply("query_error", &e.to_string()).render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_cache_takes_and_evicts_lru() {
        // Build tiny sessions via the in-memory catalog path.
        let g =
            ugraph_core::builder::from_edges(3, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)]).unwrap();
        let make = || {
            let s = Query::new(&g).alpha(0.5).prepare().unwrap();
            let bytes = s.to_catalog_bytes();
            Resident::Fixed(Query::open_bytes(bytes).unwrap())
        };
        let mut cache = SessionCache {
            cap: 2,
            entries: Vec::new(),
        };
        cache.put("a".into(), make());
        cache.put("b".into(), make());
        cache.put("c".into(), make()); // evicts "a" (LRU)
        assert!(cache.take("a").is_none());
        let b = cache.take("b").unwrap();
        assert!(cache.peek("b").is_none(), "take removes");
        cache.put("b".into(), b);
        cache.put("d".into(), make()); // evicts "c" — "b" was refreshed
        assert!(cache.take("c").is_none());
        assert!(cache.peek("b").is_some());
        assert!(cache.take("b").is_some());
    }

    #[test]
    fn base_entry_view_lru_and_counters() {
        let g =
            ugraph_core::builder::from_edges(3, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.5)]).unwrap();
        let base = Query::new(&g).prepare_base().unwrap();
        let mut entry = BaseEntry {
            base,
            views: Vec::new(),
            view_cap: 2,
            refine_hits: 0,
            refine_misses: 0,
            failures: 0,
        };
        // Simulate the request flow: miss → refine → put back.
        for alpha in [0.9, 0.5, 0.9, 0.25, 0.7, 0.9] {
            let bits = f64::to_bits(alpha);
            let view = match entry.take_view(bits) {
                Some(v) => {
                    entry.refine_hits += 1;
                    v
                }
                None => {
                    entry.refine_misses += 1;
                    entry.base.refine(alpha).unwrap()
                }
            };
            assert_eq!(view.alpha().to_bits(), bits);
            entry.put_view(bits, view);
        }
        // 0.9 hit once warm, then evicted by 0.25/0.7 (cap 2) → misses
        // for 0.9, 0.5, 0.25, 0.7 and the re-refined final 0.9.
        assert_eq!(entry.refine_hits, 1);
        assert_eq!(entry.refine_misses, 5);
        assert_eq!(entry.views.len(), 2);
        // The resident views answer byte-identically to fresh prepares.
        let mut warm = entry.take_view(f64::to_bits(0.9)).unwrap();
        let mut fresh = Query::new(&g).alpha(0.9).prepare().unwrap();
        assert_eq!(warm.collect().unwrap(), fresh.collect().unwrap());
    }

    #[test]
    fn open_resident_sniffs_catalog_kind() {
        let g =
            ugraph_core::builder::from_edges(3, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)]).unwrap();
        let dir = std::env::temp_dir().join(format!("mule-serve-sniff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fixed_path = dir.join("fixed.ugq");
        let base_path = dir.join("base.ugq");
        Query::new(&g)
            .alpha(0.5)
            .prepare()
            .unwrap()
            .save(&fixed_path)
            .unwrap();
        Query::new(&g)
            .prepare_base()
            .unwrap()
            .save(&base_path)
            .unwrap();
        match open_resident(fixed_path.to_str().unwrap(), 4).unwrap() {
            Resident::Fixed(s) => assert_eq!(s.alpha(), 0.5),
            Resident::Base(_) => panic!("fixed catalog opened as base"),
        }
        match open_resident(base_path.to_str().unwrap(), 4).unwrap() {
            Resident::Base(e) => assert_eq!(e.base.floor(), 0.0),
            Resident::Fixed(_) => panic!("base catalog opened as fixed"),
        }
        assert!(open_resident(dir.join("absent.ugq").to_str().unwrap(), 4).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
