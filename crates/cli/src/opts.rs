//! Option parsing and graph loading shared by the subcommands.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use ugraph_core::{DuplicatePolicy, UncertainGraph};
use ugraph_gen::probs::EdgeProbModel;

/// Parsed subcommand arguments: positional operands plus `--key value` /
/// `--flag` options.
#[derive(Debug, Default)]
pub struct Opts {
    positional: Vec<String>,
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Opts {
    /// Parse; `allowed` names the valid option keys (sans `--`).
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Self, String> {
        let mut out = Opts::default();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let (key, inline) = match name.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (name.to_string(), None),
                };
                if !allowed.contains(&key.as_str()) {
                    return Err(format!("unknown option --{key}"));
                }
                if let Some(v) = inline {
                    out.values.insert(key, v);
                } else if iter.peek().is_some_and(|n| !n.starts_with("--")) {
                    out.values.insert(key, iter.next().unwrap().clone());
                } else {
                    out.flags.push(key);
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional operand, or an error naming it.
    pub fn positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing {what}"))
    }

    /// Number of positional operands.
    pub fn num_positional(&self) -> usize {
        self.positional.len()
    }

    /// Required `--key` value, parsed. The parse error's own message is
    /// surfaced (e.g. `IndexMode`'s "expected auto|always|never").
    pub fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .values
            .get(key)
            .ok_or_else(|| format!("missing required option --{key}"))?;
        raw.parse()
            .map_err(|e| format!("invalid value for --{key}: {raw:?} ({e})"))
    }

    /// Optional `--key` value with default. Parse errors surface their
    /// own message, like [`Self::required`].
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("invalid value for --{key}: {raw:?} ({e})")),
        }
    }

    /// Optional `--key` value, parsed; `Ok(None)` when absent. Parse
    /// errors surface their own message, like [`Self::required`].
    pub fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| format!("invalid value for --{key}: {raw:?} ({e})")),
        }
    }

    /// Optional raw string value.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Bare flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Reject every listed option (given either as `--key value` or as a
    /// bare flag) with a message naming `why` — for flags that are
    /// mutually exclusive with a mode the command is already in.
    pub fn conflicts(&self, keys: &[&str], why: &str) -> Result<(), String> {
        for key in keys {
            if self.get_str(key).is_some() || self.flag(key) {
                return Err(format!("--{key} conflicts with {why}"));
            }
        }
        Ok(())
    }
}

/// Parse an `--assign` probability-model spec:
/// `uniform`, `uniform:LO:HI`, `fixed:P`, `string-like`.
pub fn parse_prob_model(spec: &str) -> Result<EdgeProbModel, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["uniform"] => Ok(EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 }),
        ["uniform", lo, hi] => {
            let lo: f64 = lo.parse().map_err(|_| format!("bad lo in {spec:?}"))?;
            let hi: f64 = hi.parse().map_err(|_| format!("bad hi in {spec:?}"))?;
            if !(0.0..1.0).contains(&lo) || lo >= hi || hi > 1.0 {
                return Err(format!("uniform range {lo}:{hi} invalid"));
            }
            Ok(EdgeProbModel::Uniform { lo, hi })
        }
        ["fixed", p] => {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("bad probability in {spec:?}"))?;
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!("fixed probability {p} outside (0, 1]"));
            }
            Ok(EdgeProbModel::Fixed(p))
        }
        ["string-like"] => Ok(EdgeProbModel::StringLike),
        _ => Err(format!("unknown probability model {spec:?}")),
    }
}

/// True if a path should use the binary format.
pub fn is_binary_path(path: &str) -> bool {
    Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("ugb"))
}

/// Load a graph from a file: `.ugb` binary, otherwise text. `snap` +
/// `assign`/`seed` route through the SNAP reader.
pub fn load_graph(
    path: &str,
    snap: bool,
    assign: Option<&str>,
    seed: u64,
) -> Result<UncertainGraph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let reader = BufReader::new(file);
    if is_binary_path(path) {
        if snap {
            return Err("--snap does not apply to binary files".into());
        }
        return ugraph_io::read_binary(reader).map_err(|e| format!("{path}: {e}"));
    }
    if snap {
        let model = parse_prob_model(assign.unwrap_or("uniform"))?;
        let mut rng = ugraph_gen::rng::rng_from_seed(seed);
        let loaded = ugraph_io::read_snap_edgelist(reader, || model.sample(&mut rng))
            .map_err(|e| format!("{path}: {e}"))?;
        Ok(loaded.graph)
    } else {
        let loaded = ugraph_io::read_prob_edgelist(reader, DuplicatePolicy::Error)
            .map_err(|e| format!("{path}: {e}"))?;
        Ok(loaded.graph)
    }
}

/// Save a graph to a file, format by extension.
pub fn save_graph(g: &UncertainGraph, path: &str) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path:?}: {e}"))?;
    let writer = BufWriter::new(file);
    if is_binary_path(path) {
        ugraph_io::write_binary(g, writer).map_err(|e| format!("{path}: {e}"))
    } else {
        ugraph_io::write_prob_edgelist(g, writer).map_err(|e| format!("{path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_mixed_positional_and_options() {
        let o = Opts::parse(
            &args(&["g.txt", "--alpha", "0.5", "--count-only"]),
            &["alpha", "count-only"],
        )
        .unwrap();
        assert_eq!(o.positional(0, "graph").unwrap(), "g.txt");
        assert_eq!(o.required::<f64>("alpha").unwrap(), 0.5);
        assert!(o.flag("count-only"));
        assert_eq!(o.num_positional(), 1);
    }

    #[test]
    fn missing_required_reported() {
        let o = Opts::parse(&args(&["g.txt"]), &["alpha"]).unwrap();
        assert!(o.required::<f64>("alpha").unwrap_err().contains("--alpha"));
        assert!(o.positional(1, "output file").is_err());
    }

    #[test]
    fn get_opt_distinguishes_absent_from_invalid() {
        let o = Opts::parse(&args(&["--timeout-ms", "250"]), &["timeout-ms"]).unwrap();
        assert_eq!(o.get_opt::<u64>("timeout-ms").unwrap(), Some(250));
        assert_eq!(o.get_opt::<u64>("node-budget").unwrap(), None);
        let bad = Opts::parse(&args(&["--timeout-ms", "soon"]), &["timeout-ms"]).unwrap();
        assert!(bad
            .get_opt::<u64>("timeout-ms")
            .unwrap_err()
            .contains("--timeout-ms"));
    }

    #[test]
    fn unknown_option_rejected() {
        assert!(Opts::parse(&args(&["--bogus", "1"]), &["alpha"]).is_err());
    }

    #[test]
    fn prob_model_specs() {
        assert_eq!(
            parse_prob_model("uniform").unwrap(),
            EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 }
        );
        assert_eq!(
            parse_prob_model("uniform:0.2:0.8").unwrap(),
            EdgeProbModel::Uniform { lo: 0.2, hi: 0.8 }
        );
        assert_eq!(
            parse_prob_model("fixed:0.7").unwrap(),
            EdgeProbModel::Fixed(0.7)
        );
        assert_eq!(
            parse_prob_model("string-like").unwrap(),
            EdgeProbModel::StringLike
        );
        for bad in [
            "nope",
            "uniform:0.9:0.1",
            "fixed:0",
            "fixed:2",
            "uniform:a:b",
        ] {
            assert!(parse_prob_model(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn binary_path_detection() {
        assert!(is_binary_path("x.ugb"));
        assert!(is_binary_path("x.UGB"));
        assert!(!is_binary_path("x.txt"));
        assert!(!is_binary_path("ugb"));
    }
}
