//! Binary entry point for the `mule` CLI; all logic lives in the library
//! (see `mule_cli::run`) so integration tests can drive it in-process.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = mule_cli::run(&args, &mut std::io::stdout(), &mut std::io::stderr());
    std::process::exit(code);
}
