//! The `mule serve` wire format: one JSON object per line, both ways.
//!
//! The workspace's `serde` shim is a deliberate no-op (the build is
//! offline), so the protocol layer is hand-rolled: a small recursive-
//! descent JSON parser ([`Json::parse`]) plus an escaping serializer
//! ([`Json::render`]). The dialect is standard JSON restricted to what
//! the protocol needs — objects, arrays, strings, numbers, booleans
//! and `null`; no comments, no trailing commas, numbers parsed as
//! `f64` (integral fields are validated to be exact integers when
//! extracted).
//!
//! # Requests
//!
//! ```text
//! {"op":"ping"}
//! {"op":"count",     "catalog":"g.ugq", "timeout_ms":500, "node_budget":100000}
//! {"op":"enumerate", "catalog":"g.ugq", "limit":1000}
//! {"op":"enumerate", "catalog":"base.ugq", "alpha":0.5}
//! {"op":"top_k",     "catalog":"g.ugq", "k":5}
//! {"op":"update",    "catalog":"g.ugq", "ops":[["insert",2,3,0.8],["delete",0,1],["set",1,2,0.95]]}
//! {"op":"stat"}                              (server-wide counters only)
//! {"op":"stat",      "catalog":"base.ugq"}
//! {"op":"shutdown"}
//! {"op":"panic"}            (only honored with --danger-test-ops)
//! ```
//!
//! `update` mutates the catalog *file* (a `delta.{i}` section appended
//! through the atomic-durable save path; see `mule::catalog`) and folds
//! the same batch into the resident session, so subsequent queries —
//! warm or cold — serve the mutated graph. Each element of `ops` is a
//! tagged array: `["insert", u, v, p]`, `["delete", u, v]`,
//! `["set", u, v, p]`, applied in order with sequential semantics
//! (see `mule::delta` for the representability contract). The reply
//! carries `"pending"` (delta sections now on disk) and
//! `"compacted":true` when the append crossed the server's
//! `--compact-threshold` and the catalog was rewritten clean. A batch
//! the artifact rejects (unknown edge, out-of-range vertex, lossy
//! instance) is an `update_rejected` error and touches neither the
//! file nor the resident session.
//!
//! `alpha` selects the refinement threshold when the catalog holds an
//! α-generic base (`mule prepare --base`) — **required** there, since
//! the base has no α of its own. Against a fixed-α catalog it is
//! optional and must match the baked-in threshold exactly when present
//! (a mismatch is a `bad_request`, never a silently different answer).
//!
//! # Replies
//!
//! Success replies carry `"ok":true` plus op-specific fields
//! (`cliques`, `probs`, `count`, `search_nodes`, `elapsed_ms`,
//! `alpha`, `truncated`). `stat` always reports the server-wide
//! resilience counters (`"shed"`, `"retries_hinted"`,
//! `"expired_rejected"`, `"idle_closes"`, `"slowloris_closes"`,
//! `"poison_evictions"`, `"poison_reopens"`, `"panics_isolated"`);
//! when its optional `catalog` field is present it adds the
//! resident-cache entry for that path: `"resident"`, and when resident
//! `"kind"` (`"base"`/`"fixed"`) plus — for a base — `"floor"`,
//! `"views"` (the refined per-α sessions currently resident), the
//! per-base `"refine_hits"` / `"refine_misses"` counters (a view taken
//! from the LRU vs built by refinement; diagnosing mixed-α workloads
//! is exactly watching the miss counter) and `"failures"` (consecutive
//! failures toward the poison threshold). Failures carry `"ok":false`,
//! a stable machine-readable `"error"` code and a human `"message"`:
//!
//! `bad_request` · `oversized_frame` · `busy` · `catalog_error` ·
//! `deadline_exceeded` · `budget_exhausted` · `cancelled` ·
//! `query_error` · `internal_error` · `shutting_down`
//!
//! # Retry contract
//!
//! A `busy` reply (admission queue full) carries `"retry_after_ms"`,
//! the server's hint for when to try again; `serve --connect` honors
//! it, taking the max of the hint and its own jittered exponential
//! backoff, and also retries refused connections the same way. A
//! request whose effective deadline is already expired at admission
//! (`timeout_ms` 0, or a zero server default) is rejected before any
//! work as `deadline_exceeded` with `"rejected":true`. Interrupted
//! queries (`deadline_exceeded` / `budget_exhausted` / `cancelled`)
//! additionally report `"partial":true` with the stats counters at the
//! moment the limit tripped; at the CLI they exit 3 and are **not**
//! retried — a partial result is a result, not a transient fault.
//!
//! Every request — malformed, oversized, hostile — gets exactly one
//! complete reply line or a closed connection; never a partial frame,
//! never a panic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are validated on extraction).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an
    /// error (a frame is exactly one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serialize back to compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    // `{:?}` is Rust's shortest round-tripping float
                    // repr — probabilities survive a network hop
                    // bit-exactly.
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience builder for reply objects.
#[derive(Debug, Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a field.
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.0.push((key.to_string(), value));
        self
    }

    /// Finish into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }

    /// Finish and render in one step — the shape every reply takes.
    pub fn render(self) -> String {
        self.build().render()
    }
}

/// A success reply skeleton: `{"ok":true,"op":<op>,...}`.
pub fn ok_reply(op: &str) -> ObjBuilder {
    ObjBuilder::new()
        .field("ok", Json::Bool(true))
        .field("op", Json::Str(op.to_string()))
}

/// An error reply skeleton: `{"ok":false,"error":<code>,"message":<m>,...}`.
pub fn err_reply(code: &str, message: &str) -> ObjBuilder {
    ObjBuilder::new()
        .field("ok", Json::Bool(false))
        .field("error", Json::Str(code.to_string()))
        .field("message", Json::Str(message.to_string()))
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!(
            "unexpected byte {:?} at offset {}",
            *c as char, pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number {text:?} at offset {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number {text:?}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogates are rejected rather than paired —
                        // the protocol never emits them.
                        let c = char::from_u32(code).ok_or("\\u escape is not a scalar value")?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at offset {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The operation: `ping`, `count`, `enumerate`, `top_k`, `update`,
    /// `stat`, `shutdown`, `panic`.
    pub op: String,
    /// Path of the `.ugq` catalog the query runs against.
    pub catalog: Option<String>,
    /// Clique-probability threshold. Required when the catalog holds an
    /// α-generic base (it selects the refinement); optional against a
    /// fixed-α catalog, where a mismatch is rejected.
    pub alpha: Option<f64>,
    /// Per-request deadline, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-request search-node budget.
    pub node_budget: Option<u64>,
    /// `k` for `top_k`.
    pub k: Option<u64>,
    /// Row cap for `enumerate` replies.
    pub limit: Option<u64>,
    /// The mutation batch for `update`, decoded from the `ops` array.
    pub ops: Option<mule::GraphDelta>,
}

impl Request {
    /// Decode a parsed frame into a request, validating field types.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("request must be a JSON object".into());
        }
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field \"op\"")?
            .to_string();
        let field_u64 = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(f) => f
                    .as_u64()
                    .map(Some)
                    .ok_or(format!("field {key:?} must be a non-negative integer")),
            }
        };
        let alpha = match v.get("alpha") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let a = f
                    .as_f64()
                    .ok_or("field \"alpha\" must be a number".to_string())?;
                // The parser already rejects non-finite literals; the
                // range check keeps the error at the wire layer instead
                // of deep inside refinement.
                if !(a > 0.0 && a <= 1.0) {
                    return Err(format!("field \"alpha\" must lie in (0, 1], got {a}"));
                }
                Some(a)
            }
        };
        let ops = match v.get("ops") {
            None | Some(Json::Null) => None,
            Some(o) => Some(decode_ops(o)?),
        };
        Ok(Request {
            op,
            catalog: v.get("catalog").and_then(Json::as_str).map(str::to_string),
            alpha,
            timeout_ms: field_u64("timeout_ms")?,
            node_budget: field_u64("node_budget")?,
            k: field_u64("k")?,
            limit: field_u64("limit")?,
            ops,
        })
    }
}

/// Decode the `ops` array of an `update` request into a typed batch:
/// `["insert", u, v, p]` / `["delete", u, v]` / `["set", u, v, p]`.
/// Structure (arity, tags, integer endpoints) is validated here at the
/// wire layer; *semantic* validation (edge visibility, probability
/// range, vertex range) stays in `mule::delta` where the artifact is.
fn decode_ops(v: &Json) -> Result<mule::GraphDelta, String> {
    let Json::Arr(items) = v else {
        return Err("field \"ops\" must be an array of op arrays".into());
    };
    let mut delta = mule::GraphDelta::new();
    for (i, item) in items.iter().enumerate() {
        let Json::Arr(parts) = item else {
            return Err(format!("ops[{i}] must be an array"));
        };
        let tag = parts.first().and_then(Json::as_str).ok_or(format!(
            "ops[{i}] must start with \"insert\", \"delete\" or \"set\""
        ))?;
        let endpoint = |j: usize| -> Result<u32, String> {
            parts
                .get(j)
                .and_then(Json::as_u64)
                .filter(|&x| x <= u32::MAX as u64)
                .map(|x| x as u32)
                .ok_or(format!("ops[{i}][{j}] must be a vertex id"))
        };
        let prob = |j: usize| -> Result<f64, String> {
            parts
                .get(j)
                .and_then(Json::as_f64)
                .ok_or(format!("ops[{i}][{j}] must be a number"))
        };
        match (tag, parts.len()) {
            ("insert", 4) => delta.push(mule::DeltaOp::Insert {
                u: endpoint(1)?,
                v: endpoint(2)?,
                p: prob(3)?,
            }),
            ("delete", 3) => delta.push(mule::DeltaOp::Delete {
                u: endpoint(1)?,
                v: endpoint(2)?,
            }),
            ("set", 4) => delta.push(mule::DeltaOp::SetProb {
                u: endpoint(1)?,
                v: endpoint(2)?,
                p: prob(3)?,
            }),
            (tag, len) => {
                return Err(format!(
                    "ops[{i}]: unknown or malformed op ({tag:?} with {len} elements)"
                ))
            }
        }
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rerenders_nested_values() {
        let text = r#"{"op":"enumerate","k":3,"probs":[0.5,1e-3,-2.25],"ok":true,"x":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("enumerate"));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("x"), Some(&Json::Null));
        let rerendered = Json::parse(&v.render()).unwrap();
        assert_eq!(v, rerendered);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for p in [0.1, 0.7290000000000001, 1e-300, 0.3333333333333333] {
            let v = Json::Num(p);
            let back = Json::parse(&v.render()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), p.to_bits(), "{p}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "line\nbreak \"quoted\" back\\slash tab\t bell\u{7} ünïcode";
        let v = Json::Str(nasty.to_string());
        assert_eq!(Json::parse(&v.render()).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        for bad in [
            "",
            "{",
            "}",
            "{\"op\"}",
            "{\"op\":}",
            "{'op':'x'}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1}trailing",
            "nul",
            "1e999",
            "{\"a\":\"\\u12\"}",
            "{\"a\":\"\\q\"}",
            "\u{7}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn request_decoding_validates_types() {
        let v = Json::parse(r#"{"op":"count","catalog":"g.ugq","timeout_ms":250}"#).unwrap();
        let r = Request::from_json(&v).unwrap();
        assert_eq!(r.op, "count");
        assert_eq!(r.catalog.as_deref(), Some("g.ugq"));
        assert_eq!(r.timeout_ms, Some(250));
        assert_eq!(r.node_budget, None);
        assert_eq!(r.alpha, None);

        let v = Json::parse(r#"{"op":"enumerate","catalog":"b.ugq","alpha":0.25}"#).unwrap();
        let r = Request::from_json(&v).unwrap();
        assert_eq!(r.alpha, Some(0.25));
        let v = Json::parse(r#"{"op":"enumerate","alpha":null}"#).unwrap();
        assert_eq!(Request::from_json(&v).unwrap().alpha, None);

        for bad in [
            r#"[1,2,3]"#,
            r#"{"noop":"count"}"#,
            r#"{"op":7}"#,
            r#"{"op":"count","timeout_ms":-1}"#,
            r#"{"op":"count","timeout_ms":0.5}"#,
            r#"{"op":"count","k":"three"}"#,
            r#"{"op":"enumerate","alpha":"high"}"#,
            r#"{"op":"enumerate","alpha":0}"#,
            r#"{"op":"enumerate","alpha":1.5}"#,
            r#"{"op":"enumerate","alpha":-0.25}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn update_ops_decode_to_typed_batches() {
        let v = Json::parse(
            r#"{"op":"update","catalog":"g.ugq",
                "ops":[["insert",2,3,0.8],["delete",0,1],["set",1,2,0.95]]}"#,
        )
        .unwrap();
        let r = Request::from_json(&v).unwrap();
        let delta = r.ops.unwrap();
        assert_eq!(
            delta.ops(),
            &[
                mule::DeltaOp::Insert { u: 2, v: 3, p: 0.8 },
                mule::DeltaOp::Delete { u: 0, v: 1 },
                mule::DeltaOp::SetProb {
                    u: 1,
                    v: 2,
                    p: 0.95
                },
            ]
        );
        // Empty batch decodes (it is the artifact's no-op).
        let v = Json::parse(r#"{"op":"update","ops":[]}"#).unwrap();
        assert!(Request::from_json(&v).unwrap().ops.unwrap().is_empty());
        let v = Json::parse(r#"{"op":"count","ops":null}"#).unwrap();
        assert_eq!(Request::from_json(&v).unwrap().ops, None);

        for bad in [
            r#"{"op":"update","ops":"no"}"#,
            r#"{"op":"update","ops":[7]}"#,
            r#"{"op":"update","ops":[[7,0,1]]}"#,
            r#"{"op":"update","ops":[["insert",0,1]]}"#,
            r#"{"op":"update","ops":[["insert",0,1,0.5,9]]}"#,
            r#"{"op":"update","ops":[["delete",0]]}"#,
            r#"{"op":"update","ops":[["delete",0,1,0.5]]}"#,
            r#"{"op":"update","ops":[["set",0,1]]}"#,
            r#"{"op":"update","ops":[["upsert",0,1,0.5]]}"#,
            r#"{"op":"update","ops":[["insert",-1,1,0.5]]}"#,
            r#"{"op":"update","ops":[["insert",0.5,1,0.5]]}"#,
            r#"{"op":"update","ops":[["insert",4294967296,1,0.5]]}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn reply_builders_emit_protocol_shape() {
        let ok = ok_reply("ping").render();
        assert_eq!(ok, r#"{"ok":true,"op":"ping"}"#);
        let err = err_reply("busy", "queue full").render();
        assert_eq!(err, r#"{"ok":false,"error":"busy","message":"queue full"}"#);
    }
}
