//! Deterministic jittered exponential backoff for `serve --connect`.
//!
//! The client retries transient faults — a refused connection (server
//! not up yet or restarting) and typed `busy` replies (admission queue
//! full) — on a schedule computed *up front* from a seed, so a given
//! invocation's timing is reproducible: no wall-clock entropy, no
//! thundering herd of identical clients (different seeds decorrelate
//! their jitter), and a property test can pin the schedule's shape.
//!
//! Attempt `i` targets the exponential envelope `dᵢ = min(max_ms,
//! base_ms·2ⁱ)` and draws its jitter uniformly from `[dᵢ/2, dᵢ]`;
//! the drawn delays are then clamped to be non-decreasing. The result
//! is *monotone-bounded*: every delay lies in `[base_ms/2, max_ms]`
//! (after capping), within its attempt's envelope, and the schedule
//! never shrinks — which `crates/cli/tests/backoff.rs` proves by
//! proptest. A server `retry_after_ms` hint is honored by taking the
//! max of hint and scheduled delay, which preserves monotonicity.

use rand::{Rng, SeedableRng};

/// The full delay schedule (milliseconds) for `attempts` retries:
/// deterministic in `(seed, base_ms, max_ms, attempts)`, jittered
/// within each attempt's exponential envelope, non-decreasing, and
/// capped at `max_ms`. `base_ms` of 0 yields an all-zero schedule
/// (busy-spin retries — allowed, but the CLI default is 50 ms).
pub fn backoff_delays_ms(seed: u64, base_ms: u64, max_ms: u64, attempts: u32) -> Vec<u64> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut delays = Vec::with_capacity(attempts as usize);
    let mut prev = 0u64;
    for i in 0..attempts {
        let envelope = base_ms
            .saturating_mul(1u64.checked_shl(i).unwrap_or(u64::MAX))
            .min(max_ms);
        let jittered = envelope / 2 + rng.gen_range(0..=envelope.div_ceil(2));
        let delay = jittered.min(max_ms).max(prev);
        prev = delay;
        delays.push(delay);
    }
    delays
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let a = backoff_delays_ms(7, 50, 2000, 10);
        let b = backoff_delays_ms(7, 50, 2000, 10);
        let c = backoff_delays_ms(8, 50, 2000, 10);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should decorrelate jitter");
    }

    #[test]
    fn schedule_is_monotone_and_bounded() {
        let d = backoff_delays_ms(42, 50, 2000, 16);
        assert_eq!(d.len(), 16);
        assert!(d.windows(2).all(|w| w[0] <= w[1]), "non-decreasing: {d:?}");
        assert!(d.iter().all(|&ms| ms <= 2000), "capped: {d:?}");
        assert!(d[0] >= 25, "first delay at least base/2: {d:?}");
        // The envelope doubles: by attempt 6 the cap must be reachable.
        assert!(d[15] >= 1000, "tail reaches the cap region: {d:?}");
    }

    #[test]
    fn zero_base_spins_and_zero_attempts_is_empty() {
        assert!(backoff_delays_ms(1, 0, 100, 4).iter().all(|&ms| ms == 0));
        assert!(backoff_delays_ms(1, 50, 100, 0).is_empty());
    }
}
