//! Deterministic maximal-clique enumeration: Bron–Kerbosch with Tomita
//! pivoting.
//!
//! The paper builds on the classic deterministic machinery (refs 8, 42 in its
//! bibliography): Bron–Kerbosch explores maximal cliques of a deterministic
//! graph, and Tomita et al.'s pivot rule makes it worst-case optimal
//! `O(3^{n/3})`, matching Moon–Moser. We implement it over the skeleton
//! `(V, E)` of an uncertain graph (probabilities ignored) for two purposes:
//!
//! * a cross-check: as α → 0⁺ every skeleton clique becomes an α-clique, so
//!   MULE's output must coincide with the deterministic maximal cliques;
//!   at α = 1 it must coincide with Bron–Kerbosch on the `p = 1` subgraph;
//! * a reference point for the `3^{n/3}` vs `C(n, n/2)` bound comparison
//!   (Section 3).

use ugraph_core::{UncertainGraph, VertexId};

/// Enumerate all maximal cliques of the deterministic skeleton of `g`
/// (every possible edge treated as present). Cliques are sorted ascending;
/// the list is sorted lexicographically.
pub fn bron_kerbosch(g: &UncertainGraph) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    let mut r = Vec::new();
    let p: Vec<VertexId> = g.vertices().collect();
    bk_recurse(g, &mut r, p, Vec::new(), &mut out);
    out.sort();
    out
}

fn bk_recurse(
    g: &UncertainGraph,
    r: &mut Vec<VertexId>,
    p: Vec<VertexId>,
    x: Vec<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
) {
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        out.push(clique);
        return;
    }
    // Tomita pivot: the vertex of P ∪ X with the most neighbors inside P
    // minimizes the branching set P \ Γ(pivot).
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| g.contains_edge(u, w)).count())
        .expect("P ∪ X non-empty here");
    let branch: Vec<VertexId> = p
        .iter()
        .copied()
        .filter(|&v| !g.contains_edge(pivot, v))
        .collect();
    let mut p = p;
    let mut x = x;
    for v in branch {
        let p2: Vec<VertexId> = p
            .iter()
            .copied()
            .filter(|&w| g.contains_edge(v, w))
            .collect();
        let x2: Vec<VertexId> = x
            .iter()
            .copied()
            .filter(|&w| g.contains_edge(v, w))
            .collect();
        r.push(v);
        bk_recurse(g, r, p2, x2, out);
        r.pop();
        p.retain(|&w| w != v);
        x.push(v);
    }
}

/// Count maximal cliques of the deterministic skeleton.
pub fn count_maximal_cliques_deterministic(g: &UncertainGraph) -> u64 {
    bron_kerbosch(g).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::moon_moser;
    use ugraph_core::builder::{complete_graph, from_edges, GraphBuilder};
    use ugraph_core::Prob;

    #[test]
    fn complete_graph_single_clique() {
        let g = complete_graph(5, Prob::new(0.3).unwrap());
        assert_eq!(bron_kerbosch(&g), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn triangle_with_pendant() {
        let g = from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5), (2, 3, 0.5)]).unwrap();
        assert_eq!(bron_kerbosch(&g), vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn edgeless_graph_singletons() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(bron_kerbosch(&g), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn empty_graph_empty_clique() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(bron_kerbosch(&g), vec![Vec::<VertexId>::new()]);
    }

    #[test]
    fn path_graph_edges_are_maximal() {
        let g = from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]).unwrap();
        assert_eq!(bron_kerbosch(&g), vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    /// Moon–Moser graphs: complete multipartite K(3,3,…,3) attains exactly
    /// 3^{n/3} maximal cliques — the deterministic extremal family.
    #[test]
    fn moon_moser_graph_attains_bound() {
        for parts in [2usize, 3] {
            let n = 3 * parts;
            let mut b = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if u / 3 != v / 3 {
                        b.add_edge(u, v, 0.5).unwrap();
                    }
                }
            }
            let g = b.build();
            assert_eq!(
                count_maximal_cliques_deterministic(&g),
                moon_moser(n) as u64,
                "n = {n}"
            );
        }
    }
}
