//! Brute-force enumeration over all `2^n` vertex subsets.
//!
//! The obviously-correct oracle: check every subset against the reference
//! [`ugraph_core::clique::is_alpha_maximal`] predicate. Exponential in `n`
//! and quadratic per subset — usable to roughly `n ≤ 20`, which is plenty
//! for randomized cross-checking of MULE, DFS–NOIP and LARGE–MULE, and for
//! verifying Theorem 1 exhaustively on small `n`.

use ugraph_core::{clique, GraphError, UncertainGraph, VertexId};

/// Hard cap on `n` to keep accidental misuse from hanging a test suite.
pub const MAX_NAIVE_VERTICES: usize = 25;

/// Enumerate all α-maximal cliques by subset enumeration. Cliques are
/// sorted ascending; the list is sorted lexicographically.
///
/// # Panics
/// Panics if `g` has more than [`MAX_NAIVE_VERTICES`] vertices.
pub fn enumerate_naive(g: &UncertainGraph, alpha: f64) -> Result<Vec<Vec<VertexId>>, GraphError> {
    let alpha = UncertainGraph::validate_alpha(alpha)?.get();
    let n = g.num_vertices();
    assert!(
        n <= MAX_NAIVE_VERTICES,
        "naive enumeration is exponential; {n} vertices exceeds the {MAX_NAIVE_VERTICES} cap"
    );
    let mut out = Vec::new();
    let mut members = Vec::with_capacity(n);
    for mask in 0u32..(1u32 << n) {
        members.clear();
        members.extend((0..n as u32).filter(|&v| mask >> v & 1 == 1));
        if clique::is_alpha_maximal(g, &members, alpha) {
            out.push(members.clone());
        }
    }
    out.sort();
    Ok(out)
}

/// Count α-maximal cliques by subset enumeration.
pub fn count_naive(g: &UncertainGraph, alpha: f64) -> Result<u64, GraphError> {
    Ok(enumerate_naive(g, alpha)?.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_core::builder::{complete_graph, from_edges, GraphBuilder};
    use ugraph_core::Prob;

    #[test]
    fn triangle_with_pendant() {
        let g = from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.6)]).unwrap();
        assert_eq!(
            enumerate_naive(&g, 0.5).unwrap(),
            vec![vec![0, 1, 2], vec![2, 3]]
        );
        assert_eq!(
            enumerate_naive(&g, 0.75).unwrap(),
            vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![3]]
        );
    }

    #[test]
    fn empty_graph_yields_empty_clique() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(
            enumerate_naive(&g, 0.5).unwrap(),
            vec![Vec::<VertexId>::new()]
        );
    }

    #[test]
    fn edgeless_graph_yields_singletons() {
        let g = GraphBuilder::new(2).build();
        assert_eq!(enumerate_naive(&g, 0.5).unwrap(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn complete_graph_counts() {
        // K4 p=1/2, α = 2^{-1}: pairs only → C(4,2) = 6.
        let g = complete_graph(4, Prob::new(0.5).unwrap());
        assert_eq!(count_naive(&g, 0.5).unwrap(), 6);
        // α = 2^{-3}: triangles → C(4,3) = 4.
        assert_eq!(count_naive(&g, 0.125).unwrap(), 4);
        // α small enough for the full K4 (prob 2^{-6}).
        assert_eq!(count_naive(&g, 0.015).unwrap(), 1);
    }

    #[test]
    #[should_panic]
    fn cap_enforced() {
        let g = GraphBuilder::new(MAX_NAIVE_VERTICES + 1).build();
        let _ = enumerate_naive(&g, 0.5);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let g = GraphBuilder::new(2).build();
        assert!(enumerate_naive(&g, 0.0).is_err());
    }
}
