//! DFS–NOIP — the paper's evaluation baseline (Algorithm 7): depth-first
//! search **with NO Incremental Probability computation**.
//!
//! Structurally the same search as MULE (vertices added in increasing id
//! order, candidates restricted to common neighbors), but:
//!
//! * the clique probability `clq(C ∪ {u})` is recomputed from the edge
//!   probabilities every time a candidate is tested — Θ(|C|) lookups per
//!   candidate instead of MULE's one multiplication;
//! * maximality is decided by a full scan for extender vertices —
//!   Θ(n · |C|) — instead of MULE's O(1) check of `I = ∅ ∧ X = ∅`.
//!
//! Figure 1 of the paper (and the `fig1` harness binary) measures exactly
//! this gap; on wiki-vote at α = 10⁻⁴ the paper reports 114 s for MULE vs
//! more than 11 hours for DFS–NOIP.
//!
//! The baseline deliberately ignores the tiered neighborhood index
//! (`ugraph_core::NeighborhoodIndex`): its cost model is per-edge binary
//! search plus full probability recomputation, and accelerating its
//! membership tests would blur exactly the gap the comparison isolates.

use crate::kernel::Arena;
use crate::sinks::{CliqueSink, CollectSink, Control};
use crate::stats::EnumerationStats;
use std::ops::Range;
use ugraph_core::{clique, subgraph, GraphError, UncertainGraph, VertexId};

/// The DFS–NOIP enumerator. Mirrors [`crate::Mule`]'s interface so the
/// benchmark harness can drive either interchangeably.
///
/// The candidate lists live in the same kind of span arena MULE uses
/// (append at the tail, truncate to backtrack), so the measured gap
/// between the two algorithms is the paper's — probability recomputation
/// and full maximality scans — not allocator traffic.
pub struct DfsNoip {
    g: UncertainGraph,
    alpha: f64,
    stats: EnumerationStats,
    /// Candidate-vertex arena reused across runs.
    arena: Arena<VertexId>,
    /// Scratch for `clq(C ∪ {u})` recomputation (the NOIP cost model
    /// rebuilds the member list; the buffer is merely reused).
    scratch: Vec<VertexId>,
    /// Current-clique buffer, reused across runs.
    clique_buf: Vec<VertexId>,
}

impl DfsNoip {
    /// Prepare a DFS–NOIP run. Like MULE, edges below α are pruned up
    /// front (both algorithms get the benefit of Observation 3; the paper's
    /// comparison isolates the incremental-probability machinery).
    pub fn new(g: &UncertainGraph, alpha: f64) -> Result<Self, GraphError> {
        let alpha = UncertainGraph::validate_alpha(alpha)?.get();
        let pruned = subgraph::prune_below_alpha(g, alpha)?;
        Ok(Self::from_pruned(pruned, alpha))
    }

    /// Wrap a graph that is **already α-pruned** (and an already
    /// validated α) without the redundant prune pass — the session
    /// API's per-component constructor ([`crate::Engine::Noip`]), where
    /// pipeline stage 1 pruned before sharding.
    pub(crate) fn from_pruned(pruned: UncertainGraph, alpha: f64) -> Self {
        DfsNoip {
            g: pruned,
            alpha,
            stats: EnumerationStats::new(),
            arena: Arena::new(),
            scratch: Vec::new(),
            clique_buf: Vec::new(),
        }
    }

    /// Counters from the most recent run.
    pub fn stats(&self) -> &EnumerationStats {
        &self.stats
    }

    /// Enumerate all α-maximal cliques into `sink`.
    pub fn run<S: CliqueSink>(&mut self, sink: &mut S) -> &EnumerationStats {
        self.stats = EnumerationStats::new();
        let mut arena = std::mem::take(&mut self.arena);
        let mut c = std::mem::take(&mut self.clique_buf);
        arena.clear();
        c.clear();
        if self.g.num_vertices() == 0 {
            // Degenerate case: the empty clique is maximal in the empty
            // graph (kept consistent with MULE and the oracle).
            self.stats.calls = 1;
            self.stats.emitted = 1;
            sink.emit(&c, 1.0);
        } else {
            for u in self.g.vertices() {
                arena.push(u);
            }
            self.recurse(&mut c, 0..arena.mark(), &mut arena, sink);
        }
        self.arena = arena;
        self.clique_buf = c;
        &self.stats
    }

    /// Algorithm 7. `c` is the current clique, `i_span` the candidate list
    /// (vertices known adjacent to all of `c`, not yet filtered for this
    /// level) as an arena span. The span is the arena tail when the call
    /// starts, so the filter compacts it in place; child candidate lists
    /// are appended behind it and truncated on backtrack.
    fn recurse<S: CliqueSink>(
        &mut self,
        c: &mut Vec<VertexId>,
        i_span: Range<usize>,
        arena: &mut Arena<VertexId>,
        sink: &mut S,
    ) -> Control {
        self.stats.calls += 1;
        self.stats.max_depth = self.stats.max_depth.max(c.len());
        // Lines 1–4: drop candidates not greater than max(C) and those whose
        // extension falls below α — recomputing each clique probability from
        // scratch (the "NOIP" in the name). In-place compaction of the
        // span, which is the current arena tail.
        debug_assert_eq!(i_span.end, arena.mark());
        let max_c: i64 = c.last().map_or(-1, |&v| v as i64);
        let mut write = i_span.start;
        for idx in i_span.clone() {
            self.stats.i_candidates_scanned += 1;
            let u = arena.get(idx);
            if (u as i64) > max_c && self.clq_with(c, u) >= self.alpha {
                arena.set(write, u);
                write += 1;
            }
        }
        arena.truncate(write);
        let i_span = i_span.start..write;
        // Lines 5–8: dead end — C may still be maximal via vertices smaller
        // than max(C); run the full (expensive) maximality check.
        if i_span.is_empty() {
            if self.is_maximal_full_scan(c) {
                self.stats.emitted += 1;
                let q = clique::clique_probability(&self.g, c)
                    .expect("search invariant: C is a clique");
                return sink.emit(c, q);
            }
            return Control::Continue;
        }
        // Lines 9–15.
        for idx in i_span.clone() {
            let v = arena.get(idx);
            c.push(v);
            let ctl = if self.is_maximal_full_scan(c) {
                self.stats.emitted += 1;
                let q = clique::clique_probability(&self.g, c)
                    .expect("search invariant: C' is a clique");
                sink.emit(c, q)
            } else {
                // I' ← I ∩ Γ(v): merge the remaining candidates with v's
                // adjacency, appended at the tail for the child.
                let mark = arena.mark();
                for j in i_span.clone() {
                    let w = arena.get(j);
                    if w != v && self.g.contains_edge(v, w) {
                        arena.push(w);
                    }
                }
                let ctl = self.recurse(c, mark..arena.mark(), arena, sink);
                arena.truncate(mark);
                ctl
            };
            c.pop();
            if ctl == Control::Stop {
                return Control::Stop;
            }
        }
        Control::Continue
    }

    /// `clq(C ∪ {u})` recomputed from scratch: Θ(|C|²) probability lookups.
    /// Returns a value below α when the extension is not a clique at all.
    fn clq_with(&mut self, c: &[VertexId], u: VertexId) -> f64 {
        self.scratch.clear();
        self.scratch.extend_from_slice(c);
        self.scratch.push(u);
        clique::clique_probability(&self.g, &self.scratch).unwrap_or(0.0)
    }

    /// Full maximality scan (the Θ(n · |C|) check the paper charges this
    /// baseline for): `C` is α-maximal iff it is an α-clique and no vertex
    /// extends it above the threshold.
    fn is_maximal_full_scan(&mut self, c: &[VertexId]) -> bool {
        self.stats.x_candidates_scanned += self.g.num_vertices() as u64;
        clique::is_alpha_maximal(&self.g, c, self.alpha)
    }
}

/// Convenience wrapper mirroring
/// [`crate::enumerate::enumerate_maximal_cliques`].
pub fn enumerate_maximal_cliques_noip(
    g: &UncertainGraph,
    alpha: f64,
) -> Result<Vec<Vec<VertexId>>, GraphError> {
    let mut algo = DfsNoip::new(g, alpha)?;
    let mut sink = CollectSink::new();
    algo.run(&mut sink);
    Ok(sink.into_sorted_cliques())
}

/// Pipeline variant of [`enumerate_maximal_cliques_noip`]: even the
/// baseline benefits from the preprocessing layer. Thin delegate over
/// the session API with [`crate::Engine::Noip`] — each compact
/// prepared component gets its own DFS–NOIP run, with id translation
/// folded into the sink layer and isolated vertices emitted directly.
/// Same output as the direct run.
pub fn enumerate_maximal_cliques_noip_prepared(
    g: &UncertainGraph,
    alpha: f64,
) -> Result<Vec<Vec<VertexId>>, GraphError> {
    let mut session = crate::Query::new(g)
        .alpha(alpha)
        .engine(crate::Engine::Noip)
        .prepare()
        .map_err(crate::MuleError::expect_graph)?;
    Ok(session
        .sorted_cliques()
        .expect("unlimited run cannot be interrupted"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_maximal_cliques;
    use crate::naive::enumerate_naive;
    use ugraph_core::builder::{complete_graph, from_edges, GraphBuilder};
    use ugraph_core::Prob;

    fn fixture() -> UncertainGraph {
        from_edges(5, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.6)]).unwrap()
    }

    #[test]
    fn matches_mule_on_fixture() {
        let g = fixture();
        for alpha in [0.9, 0.75, 0.5, 0.25, 1e-9] {
            assert_eq!(
                enumerate_maximal_cliques_noip(&g, alpha).unwrap(),
                enumerate_maximal_cliques(&g, alpha).unwrap(),
                "α = {alpha}"
            );
        }
    }

    #[test]
    fn matches_naive_on_complete_graph() {
        let g = complete_graph(5, Prob::new(0.5).unwrap());
        for alpha in [0.5, 0.125, 0.015, 0.0009] {
            assert_eq!(
                enumerate_maximal_cliques_noip(&g, alpha).unwrap(),
                enumerate_naive(&g, alpha).unwrap(),
                "α = {alpha}"
            );
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g0 = GraphBuilder::new(0).build();
        assert_eq!(
            enumerate_maximal_cliques_noip(&g0, 0.5).unwrap(),
            vec![Vec::<VertexId>::new()]
        );
        let g3 = GraphBuilder::new(3).build();
        assert_eq!(
            enumerate_maximal_cliques_noip(&g3, 0.5).unwrap(),
            vec![vec![0], vec![1], vec![2]]
        );
    }

    #[test]
    fn prepared_variant_matches_direct() {
        // Disconnected structure + isolated vertex: the per-component
        // path must reassemble the exact direct output.
        let g = from_edges(
            8,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (4, 5, 0.7),
                (5, 6, 0.2),
            ],
        )
        .unwrap();
        for alpha in [0.9, 0.5, 0.1] {
            assert_eq!(
                enumerate_maximal_cliques_noip_prepared(&g, alpha).unwrap(),
                enumerate_maximal_cliques_noip(&g, alpha).unwrap(),
                "α = {alpha}"
            );
        }
        let g0 = GraphBuilder::new(0).build();
        assert_eq!(
            enumerate_maximal_cliques_noip_prepared(&g0, 0.5).unwrap(),
            vec![Vec::<VertexId>::new()]
        );
    }

    #[test]
    fn no_duplicate_emissions() {
        let g = complete_graph(6, Prob::new(0.5).unwrap());
        let cliques = enumerate_maximal_cliques_noip(&g, 0.125).unwrap();
        let mut dedup = cliques.clone();
        dedup.dedup();
        assert_eq!(cliques.len(), dedup.len());
        assert_eq!(cliques.len(), 20);
    }

    #[test]
    fn does_more_probability_work_than_mule() {
        // The whole point of the baseline: it rescans candidates with Θ(|C|)
        // lookups. Its scan counters must dominate MULE's on a non-trivial
        // input.
        let g = complete_graph(8, Prob::new(0.5).unwrap());
        let alpha = 0.5f64.powi(3);
        let mut noip = DfsNoip::new(&g, alpha).unwrap();
        let mut s1 = crate::sinks::CountSink::new();
        noip.run(&mut s1);
        let mut m = crate::Mule::new(&g, alpha).unwrap();
        let mut s2 = crate::sinks::CountSink::new();
        m.run(&mut s2);
        assert_eq!(s1.count, s2.count);
        assert!(
            noip.stats().total_scanned() > m.stats().total_scanned(),
            "noip {} vs mule {}",
            noip.stats().total_scanned(),
            m.stats().total_scanned()
        );
    }

    #[test]
    fn invalid_alpha_rejected() {
        assert!(DfsNoip::new(&fixture(), 0.0).is_err());
        assert!(DfsNoip::new(&fixture(), 2.0).is_err());
    }
}
