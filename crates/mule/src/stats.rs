//! Enumeration statistics: counters backing the paper's runtime analysis.
//!
//! Theorem 3 bounds MULE's runtime by `O(n · 2^n)` via the size of the
//! search tree (each call to `Enum-Uncertain-MC` is a node) times `O(n)`
//! work per edge of that tree. These counters expose the tree size and the
//! filtering work so experiments (and the `theorem1` harness binary) can
//! check the bound empirically.

/// Counters collected during one enumeration run.
///
/// The `*_candidates_scanned` counters measure the search's intrinsic
/// filtering work (Theorem 3's charge per search-tree edge); the probe
/// counters (`dense_probes`, `gallop_probes`, `merge_steps`) attribute
/// that work to the intersection strategy the tiered neighborhood index
/// actually dispatched to, so a wall-clock change can be traced to
/// probes avoided rather than guessed at.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Search-tree nodes: calls to the recursive procedure (the root
    /// counts once).
    pub calls: u64,
    /// Maximal cliques emitted.
    pub emitted: u64,
    /// Deepest recursion (equals the largest clique size reached).
    pub max_depth: usize,
    /// Candidate tuples scanned while generating `I'` sets (the work term
    /// of Lemma 10).
    pub i_candidates_scanned: u64,
    /// Candidate tuples scanned while generating `X'` sets (Lemma 11).
    pub x_candidates_scanned: u64,
    /// Branches cut by the LARGE–MULE size bound `|C'| + |I'| < t`
    /// (Algorithm 6, line 8); zero for plain MULE.
    pub size_pruned: u64,
    /// Branches cut by the adaptive top-k admission bound `clq(C ∪ {u})
    /// ≤ β` (β = current k-th best probability; see `mule::topk`); zero
    /// outside top-k runs.
    pub beta_pruned: u64,
    /// Probability fetches served by a dense-tier row: one load where
    /// the CSR path would pay a galloping search. Together with
    /// [`Self::gallop_probes`] this prices the filter's
    /// probability-retrieval work (rejects cost one bitset-word load
    /// under either strategy and are not counted).
    pub dense_probes: u64,
    /// Modeled comparison probes spent in galloping CSR searches
    /// (`ugraph_core::intersect::gallop_cost` per search — `O(log gap)`
    /// priced from the distance the search advanced; with the
    /// membership tier present, searches run only for *accepted*
    /// candidates, without it for every candidate examined).
    pub gallop_probes: u64,
    /// Pointer advances + candidate comparisons performed by the linear
    /// two-pointer merge strategy.
    pub merge_steps: u64,
}

impl EnumerationStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total candidate-tuple work, the quantity Theorem 3 charges per
    /// search-tree edge.
    pub fn total_scanned(&self) -> u64 {
        self.i_candidates_scanned + self.x_candidates_scanned
    }

    /// Merge counters from another run (used by the parallel driver).
    pub fn merge(&mut self, other: &EnumerationStats) {
        self.calls += other.calls;
        self.emitted += other.emitted;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.i_candidates_scanned += other.i_candidates_scanned;
        self.x_candidates_scanned += other.x_candidates_scanned;
        self.size_pruned += other.size_pruned;
        self.beta_pruned += other.beta_pruned;
        self.dense_probes += other.dense_probes;
        self.gallop_probes += other.gallop_probes;
        self.merge_steps += other.merge_steps;
    }

    /// Total filter probes across strategies — the "work performed"
    /// number the bench artifacts track alongside wall-clock.
    pub fn total_probes(&self) -> u64 {
        self.dense_probes + self.gallop_probes + self.merge_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = EnumerationStats {
            calls: 3,
            emitted: 1,
            max_depth: 2,
            i_candidates_scanned: 10,
            x_candidates_scanned: 5,
            size_pruned: 0,
            beta_pruned: 1,
            dense_probes: 4,
            gallop_probes: 2,
            merge_steps: 1,
        };
        let b = EnumerationStats {
            calls: 4,
            emitted: 2,
            max_depth: 5,
            i_candidates_scanned: 1,
            x_candidates_scanned: 1,
            size_pruned: 7,
            beta_pruned: 2,
            dense_probes: 6,
            gallop_probes: 3,
            merge_steps: 9,
        };
        a.merge(&b);
        assert_eq!(a.calls, 7);
        assert_eq!(a.emitted, 3);
        assert_eq!(a.max_depth, 5);
        assert_eq!(a.total_scanned(), 17);
        assert_eq!(a.size_pruned, 7);
        assert_eq!(a.beta_pruned, 3);
        assert_eq!(a.dense_probes, 10);
        assert_eq!(a.gallop_probes, 5);
        assert_eq!(a.merge_steps, 10);
        assert_eq!(a.total_probes(), 25);
    }

    #[test]
    fn default_is_zero() {
        let s = EnumerationStats::new();
        assert_eq!(s.calls, 0);
        assert_eq!(s.total_scanned(), 0);
    }
}
