//! The unified preprocessing pipeline: **prune → core-filter →
//! component-shard**, producing one compact, vertex-remapped instance
//! per connected component that every enumerator in this crate can run
//! on (LARGE-MULE's winning idea from Section 4.3, generalized into the
//! front door for *all* workloads).
//!
//! # Stages, in order, and why each is sound
//!
//! 1. **α-edge pruning** (Observation 3): every edge of an α-clique has
//!    `p(e) ≥ α`, so edges below α cannot appear in any α-maximal
//!    clique and deleting them changes nothing about the output.
//! 2. **Expected-degree core filter** (the `(t−1)·α`-core, engaged only
//!    when a size threshold `t ≥ 2` is requested): inside an α-clique
//!    with at least `t` vertices every member has `t−1` incident clique
//!    edges of probability ≥ α, so its expected degree stays at least
//!    `(t−1)·α` at every peeling step — members of such cliques are
//!    never peeled (see [`crate::kcore`]). Dropping non-core vertices
//!    also cannot create false maximal cliques: any extension witness
//!    `v` of a surviving clique `C` forms the α-clique `C ∪ {v}` of
//!    size ≥ t + 1, so `v` survives too and still kills `C`.
//! 3. **Shared-neighborhood peeling** (Modani–Dey, engaged when
//!    `t ≥ 3`): recursively delete edges with fewer than `t − 2` common
//!    neighbors and vertices of degree under `t − 1`
//!    ([`crate::pruning::shared_neighborhood_filter`]); the same
//!    induction shows edges of ≥-t α-cliques (and their maximality
//!    witnesses) survive to the fixpoint.
//! 4. **Connected-component decomposition**: an α-clique never spans two
//!    components of the (pruned) skeleton, and neither can a maximality
//!    witness (it is adjacent to every clique vertex). Each component
//!    becomes its own dense-id instance via
//!    [`ugraph_core::subgraph::induced_subgraph`]; the old↔new maps are
//!    **monotone**, so canonical (ascending) cliques stay canonical
//!    under translation and the probability arithmetic — same factors,
//!    same multiplication order — is bit-identical to the direct path.
//!
//! The stage order matters only for economy, not soundness: pruning
//! first shrinks what the core filter peels, the core filter shrinks
//! what the shared-neighborhood fixpoint examines, and sharding last
//! sees the smallest graph.
//!
//! Each component's kernel builds its own tiered
//! [`ugraph_core::NeighborhoodIndex`] over the **compact remapped ids**
//! (configured by [`PrepareConfig::mule`], built once at prepare time so
//! the steady-state zero-allocation guarantee holds across reruns).
//! That compactness is what makes the dense probability tier cheap: a
//! hub's dense row costs `8 ·` *component size* bytes, not `8 · n`, so
//! sharded instances afford one-load filter probes on far more hubs
//! than a whole-graph kernel could.
//!
//! # Byte-identical output
//!
//! Sequential MULE emits cliques in global lexicographic order (each
//! root subtree `C = {u}` emits lexicographically, roots ascend).
//! [`PreparedInstance::run`] therefore schedules root subtrees in
//! ascending *original*-id order across components — interleaving
//! components exactly as the direct search would — and folds the id
//! translation into the sink layer, so on default settings the emitted
//! stream (cliques, order, probability bits) is identical to running
//! [`crate::Mule`] on the whole graph. The work-stealing parallel
//! driver ([`crate::parallel::par_enumerate_prepared`]) seeds its
//! deques per component and re-establishes the same order with its
//! slot-per-root merge.

use crate::enumerate::MuleConfig;
use crate::kcore::CoreDecomposition;
use crate::kernel::{enumerate_subtree, enumerate_subtree_bounded, DepthArenas, Kernel};
use crate::limits::{Interrupt, RunLimits};
use crate::pruning::shared_neighborhood_peel;
use crate::sinks::{CliqueSink, Control};
use crate::stats::EnumerationStats;
use std::sync::atomic::{AtomicU64, Ordering};
use ugraph_core::{subgraph, Components, GraphError, UncertainGraph, VertexId};

/// Process-wide count of [`prepare`] pipeline executions (monotone,
/// never reset). The session API ([`crate::Prepared`]) promises that a
/// prepared instance answers any number of queries with the pipeline
/// run exactly once; this counter is what lets a test *assert* that —
/// capture it before building a session, exercise `count`/`collect`/
/// `top_k`, and check the counter moved by exactly one.
pub fn pipeline_invocations() -> u64 {
    PIPELINE_RUNS.load(Ordering::Relaxed)
}

static PIPELINE_RUNS: AtomicU64 = AtomicU64::new(0);

/// Configuration for [`prepare`].
#[derive(Debug, Clone)]
pub struct PrepareConfig {
    /// Only cliques with at least this many vertices are wanted
    /// (`0`/`1` = all α-maximal cliques). Values ≥ 2 engage the
    /// size-based stages and the Algorithm 6 search bound.
    pub min_size: usize,
    /// Enable stage 2, the expected-degree `(min_size−1)·α`-core filter
    /// (only engages when `min_size ≥ 2`).
    pub core_filter: bool,
    /// Enable stage 3, the Modani–Dey shared-neighborhood peel (only
    /// engages when `min_size ≥ 3`; at smaller thresholds its
    /// conditions are vacuous).
    pub shared_neighborhood: bool,
    /// Enable stage 4, sharding into connected components. When off the
    /// instance is a single component with an identity id map.
    pub shard_components: bool,
    /// Kernel configuration for the per-component search (index mode /
    /// budget). `degeneracy_order` and `naive_root` are ignored here —
    /// they are ablation switches of the direct [`crate::Mule`] path.
    pub mule: MuleConfig,
}

impl Default for PrepareConfig {
    fn default() -> Self {
        PrepareConfig {
            min_size: 0,
            core_filter: true,
            shared_neighborhood: true,
            shard_components: true,
            mule: MuleConfig::default(),
        }
    }
}

impl PrepareConfig {
    /// Default configuration with a size threshold.
    pub fn with_min_size(min_size: usize) -> Self {
        PrepareConfig {
            min_size,
            ..Default::default()
        }
    }
}

/// What each pipeline stage removed, plus the shape of the prepared
/// instance. All counts refer to the stage's own input (stages
/// compose, so e.g. `shared_pruned_edges` counts removals from the
/// already core-filtered graph).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrepareReport {
    /// Vertices of the input graph.
    pub original_vertices: usize,
    /// Edges of the input graph.
    pub original_edges: usize,
    /// Stage 1: edges with `p(e) < α` (Observation 3).
    pub alpha_pruned_edges: usize,
    /// Stage 2: vertices (with at least one surviving edge) outside the
    /// expected-degree `(t−1)·α`-core.
    pub core_filtered_vertices: usize,
    /// Stage 2: edges incident to a peeled vertex.
    pub core_filtered_edges: usize,
    /// Stage 3: edges removed by the shared-neighborhood fixpoint.
    pub shared_pruned_edges: usize,
    /// Stage 3: vertices isolated by the peel (had edges before it).
    pub shared_isolated_vertices: usize,
    /// Stage 4: connected components of the fully pruned graph.
    pub components_total: usize,
    /// Components that became enumeration instances.
    pub components_kept: usize,
    /// Components smaller than `min_size` (including isolated vertices
    /// when `min_size ≥ 2`) — dropped, since no qualifying clique fits.
    pub components_dropped_small: usize,
    /// Isolated vertices emitted as singleton maximal cliques (only
    /// when `min_size ≤ 1`) — directly by the scheduler, or by the
    /// kernel's root loop on the single-component fast path.
    pub singleton_vertices: usize,
    /// Vertex count of the largest kept component.
    pub largest_component: usize,
    /// Vertices of the decomposition's kept material (kept components
    /// plus singletons). The identity fast paths may carry
    /// sub-threshold stragglers through the kernel for free; those are
    /// excluded here so the accounting matches the sharded path.
    pub final_vertices: usize,
    /// Edges of the kept components (same accounting note as
    /// [`Self::final_vertices`]).
    pub final_edges: usize,
}

impl PrepareReport {
    /// Every counter as a `(name, value)` pair, in declaration order —
    /// the one place serializers (CLI report, bench JSON artifacts)
    /// enumerate the fields, so adding a counter cannot silently go
    /// missing from an output format.
    pub fn fields(&self) -> [(&'static str, usize); 14] {
        [
            ("original_vertices", self.original_vertices),
            ("original_edges", self.original_edges),
            ("alpha_pruned_edges", self.alpha_pruned_edges),
            ("core_filtered_vertices", self.core_filtered_vertices),
            ("core_filtered_edges", self.core_filtered_edges),
            ("shared_pruned_edges", self.shared_pruned_edges),
            ("shared_isolated_vertices", self.shared_isolated_vertices),
            ("components_total", self.components_total),
            ("components_kept", self.components_kept),
            ("components_dropped_small", self.components_dropped_small),
            ("singleton_vertices", self.singleton_vertices),
            ("largest_component", self.largest_component),
            ("final_vertices", self.final_vertices),
            ("final_edges", self.final_edges),
        ]
    }

    /// Multi-line human-readable rendering (the CLI's `--prune-report`).
    pub fn render(&self) -> String {
        format!(
            "prepare: {}v/{}e -> {}v/{}e\n\
             alpha-pruned edges:        {}\n\
             core-filtered:             {} vertices, {} edges\n\
             shared-neighborhood peel:  {} edges, {} vertices isolated\n\
             components:                {} total, {} kept, {} below min-size\n\
             singleton cliques:         {}\n\
             largest component:         {} vertices",
            self.original_vertices,
            self.original_edges,
            self.final_vertices,
            self.final_edges,
            self.alpha_pruned_edges,
            self.core_filtered_vertices,
            self.core_filtered_edges,
            self.shared_pruned_edges,
            self.shared_isolated_vertices,
            self.components_total,
            self.components_kept,
            self.components_dropped_small,
            self.singleton_vertices,
            self.largest_component,
        )
    }
}

/// One compact per-component instance: a dense-id subgraph wrapped in a
/// ready search kernel, plus the monotone map back to original ids.
pub struct PreparedComponent {
    pub(crate) kernel: Kernel,
    pub(crate) to_original: Vec<VertexId>,
}

impl PreparedComponent {
    /// The compact, remapped component graph the search runs on.
    pub fn graph(&self) -> &UncertainGraph {
        &self.kernel.g
    }

    /// Monotone map from compact ids to original vertex ids.
    pub fn to_original(&self) -> &[VertexId] {
        &self.to_original
    }
}

/// One schedule entry of the global ascending-root emission order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Unit {
    /// An isolated original vertex, emitted directly as `{v}`.
    Singleton(VertexId),
    /// Root subtree `local` of component `comp`.
    Root { comp: u32, local: u32 },
}

/// The output of [`prepare`]: compact per-component instances, the
/// old↔new id maps, a [`PrepareReport`], and reusable search state, so
/// the same prepared instance can be enumerated repeatedly
/// (allocation-free in steady state, like [`crate::Mule`]).
pub struct PreparedInstance {
    pub(crate) alpha: f64,
    pub(crate) min_size: usize,
    pub(crate) original_n: usize,
    /// Name of the original graph, carried so incremental maintenance
    /// ([`crate::delta`]) can rebuild working graphs whose name matches
    /// what a fresh [`prepare`] of the mutated graph would produce.
    pub(crate) name: String,
    pub(crate) components: Vec<PreparedComponent>,
    /// Ascending original ids of isolated vertices (empty when
    /// `min_size ≥ 2`).
    pub(crate) singletons: Vec<VertexId>,
    /// Root subtrees and singletons in ascending original-id order —
    /// the direct search's emission order.
    pub(crate) schedule: Vec<Unit>,
    pub(crate) report: PrepareReport,
    /// The configuration the instance was prepared under — retained so
    /// the instance can be persisted ([`crate::catalog`]) and reopened
    /// with bit-identical kernels.
    pub(crate) config: PrepareConfig,
    pub(crate) stats: EnumerationStats,
    pub(crate) arenas: DepthArenas,
    pub(crate) clique_buf: Vec<VertexId>,
    pub(crate) remap_scratch: Vec<VertexId>,
}

/// Run every pipeline stage over `g` and build the prepared instance.
pub fn prepare(
    g: &UncertainGraph,
    alpha: f64,
    config: &PrepareConfig,
) -> Result<PreparedInstance, GraphError> {
    PIPELINE_RUNS.fetch_add(1, Ordering::Relaxed);
    let alpha = UncertainGraph::validate_alpha(alpha)?.get();
    let mut report = PrepareReport {
        original_vertices: g.num_vertices(),
        original_edges: g.num_edges(),
        ..Default::default()
    };

    // Stage 1: α-edge pruning (Observation 3).
    let work = subgraph::prune_below_alpha(g, alpha)?;
    report.alpha_pruned_edges = g.num_edges() - work.num_edges();

    finish_pipeline(work, alpha, config, report)
}

/// Stages 2–4 of the pipeline plus instance assembly, split out of
/// [`prepare`] so incremental maintenance ([`crate::delta`]) can re-run
/// the α-independent tail on an already α-pruned working graph and be
/// byte-identical to a fresh prepare **by construction**. `work` must be
/// the stage-1 output (all edge probabilities ≥ `alpha`), `report` must
/// have its `original_*` and `alpha_pruned_edges` fields filled in.
/// Does not bump [`pipeline_invocations`]; callers that constitute a
/// full pipeline run do that themselves.
pub(crate) fn finish_pipeline(
    mut work: UncertainGraph,
    alpha: f64,
    config: &PrepareConfig,
    mut report: PrepareReport,
) -> Result<PreparedInstance, GraphError> {
    let t = config.min_size;
    let n = work.num_vertices();
    let name = work.name().to_string();

    // Stage 2: expected-degree (t−1)·α-core filter.
    if t >= 2 && config.core_filter && work.num_edges() > 0 {
        let decomp = CoreDecomposition::compute(&work);
        let threshold = (t - 1) as f64 * alpha;
        let mut in_core = vec![false; n];
        for v in decomp.core(threshold) {
            in_core[v as usize] = true;
        }
        let dropped = (0..n)
            .filter(|&v| !in_core[v] && work.degree(v as VertexId) > 0)
            .count();
        if dropped > 0 {
            let before = work.num_edges();
            work = subgraph::restrict_to_vertices(&work, &in_core);
            report.core_filtered_vertices = dropped;
            report.core_filtered_edges = before - work.num_edges();
        }
    }

    // Stage 3: Modani–Dey shared-neighborhood peel (vacuous for t < 3).
    // `work` is already α-pruned by stage 1, so the peel-only entry
    // point applies — no redundant re-prune pass.
    if t >= 3 && config.shared_neighborhood && work.num_edges() > 0 {
        let (peeled, pr) = shared_neighborhood_peel(&work, t)?;
        report.shared_pruned_edges = pr.shared_pruned_edges;
        report.shared_isolated_vertices = pr.degree_pruned_vertices;
        work = peeled;
    }

    // Stage 4: component decomposition + one compact instance each.
    let mut components = Vec::new();
    let mut singletons = Vec::new();
    let min_keep = t.max(2);
    if config.shard_components {
        let comps = Components::compute(&work);
        report.components_total = comps.count();
        let lists = comps.vertex_lists();
        if lists.iter().filter(|l| l.len() >= min_keep).count() == 1 {
            // Identity fast path: sharding found exactly one real
            // component, so a compact copy would reproduce (almost) the
            // whole graph — move the pruned graph into the kernel
            // instead and let the root loop handle isolated vertices
            // and the size bound handle sub-threshold stragglers. The
            // report records the *decomposition's* accounting (kept
            // material only, same as the sharded path would report);
            // the enumeration cost of the stragglers carried along is
            // one O(deg) root expansion each, cheaper than the avoided
            // O(n + m) copy.
            for list in &lists {
                if list.len() >= min_keep {
                    report.components_kept = 1;
                    report.largest_component = list.len();
                    // Component edges = half the degree sum (no arcs
                    // leave a connected component).
                    let arcs: usize = list.iter().map(|&v| work.degree(v)).sum();
                    report.final_edges = arcs / 2;
                    report.final_vertices += list.len();
                } else if list.len() == 1 && t <= 1 {
                    report.singleton_vertices += 1;
                    report.final_vertices += 1;
                } else {
                    report.components_dropped_small += 1;
                }
            }
            let identity: Vec<VertexId> = (0..n as VertexId).collect();
            components.push(PreparedComponent {
                kernel: Kernel::wrap(work, alpha, &config.mule),
                to_original: identity,
            });
        } else {
            for list in lists {
                if list.len() < min_keep {
                    if list.len() == 1 && t <= 1 {
                        // An isolated vertex is itself a maximal clique.
                        report.singleton_vertices += 1;
                        singletons.push(list[0]);
                    } else {
                        report.components_dropped_small += 1;
                    }
                    continue;
                }
                let (sub, map) = subgraph::induced_subgraph(&work, &list)?;
                report.components_kept += 1;
                report.largest_component = report.largest_component.max(list.len());
                report.final_edges += sub.num_edges();
                report.final_vertices += list.len();
                components.push(PreparedComponent {
                    kernel: Kernel::wrap(sub, alpha, &config.mule),
                    to_original: map,
                });
            }
            report.final_vertices += singletons.len();
            report.largest_component = report
                .largest_component
                .max(usize::from(!singletons.is_empty()));
        }
    } else if n > 0 {
        report.components_total = 1;
        report.components_kept = 1;
        report.largest_component = n;
        report.final_edges = work.num_edges();
        report.final_vertices = n;
        let identity: Vec<VertexId> = (0..n as VertexId).collect();
        components.push(PreparedComponent {
            kernel: Kernel::wrap(work, alpha, &config.mule),
            to_original: identity,
        });
    }

    let schedule = build_schedule(n, &singletons, &components);

    Ok(PreparedInstance {
        alpha,
        min_size: t,
        original_n: n,
        name,
        components,
        singletons,
        schedule,
        report,
        config: config.clone(),
        stats: EnumerationStats::new(),
        arenas: DepthArenas::new(),
        clique_buf: Vec::new(),
        remap_scratch: Vec::new(),
    })
}

impl PreparedInstance {
    /// The α threshold the instance was prepared for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The size threshold (`0`/`1` = all maximal cliques).
    pub fn min_size(&self) -> usize {
        self.min_size
    }

    /// Vertex count of the *original* graph.
    pub fn original_vertices(&self) -> usize {
        self.original_n
    }

    /// What each stage removed and the shape of the instance.
    pub fn report(&self) -> &PrepareReport {
        &self.report
    }

    /// The compact per-component instances as `(graph, to_original)`
    /// pairs; maps are monotone and pairwise disjoint.
    pub fn components(&self) -> impl ExactSizeIterator<Item = (&UncertainGraph, &[VertexId])> {
        self.components
            .iter()
            .map(|pc| (&*pc.kernel.g, pc.to_original.as_slice()))
    }

    /// Ascending original ids of isolated vertices, each a singleton
    /// maximal clique (empty when `min_size ≥ 2`).
    pub fn singletons(&self) -> &[VertexId] {
        &self.singletons
    }

    /// Counters from the most recent [`PreparedInstance::run`].
    pub fn stats(&self) -> &EnumerationStats {
        &self.stats
    }

    /// The configuration the instance was prepared under.
    pub fn config(&self) -> &PrepareConfig {
        &self.config
    }

    /// Reassemble an instance from deserialized parts — the
    /// [`crate::catalog`] open path. The caller (the catalog decoder)
    /// has already validated every cross-part invariant the pipeline
    /// would have established; crucially, this constructor does **not**
    /// touch [`PIPELINE_RUNS`], because no pipeline stage runs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        alpha: f64,
        config: PrepareConfig,
        original_n: usize,
        name: String,
        components: Vec<PreparedComponent>,
        singletons: Vec<VertexId>,
        schedule: Vec<Unit>,
        report: PrepareReport,
    ) -> Self {
        PreparedInstance {
            alpha,
            min_size: config.min_size,
            original_n,
            name,
            components,
            singletons,
            schedule,
            report,
            config,
            stats: EnumerationStats::new(),
            arenas: DepthArenas::new(),
            clique_buf: Vec::new(),
            remap_scratch: Vec::new(),
        }
    }

    pub(crate) fn component_parts(&self, comp: u32) -> (&Kernel, &[VertexId]) {
        let pc = &self.components[comp as usize];
        (&pc.kernel, &pc.to_original)
    }

    pub(crate) fn schedule(&self) -> &[Unit] {
        &self.schedule
    }

    /// Enumerate every α-maximal clique (of size ≥ `min_size` when one
    /// was configured) across all components, streaming each — in
    /// canonical order, translated back to original ids — into `sink`.
    /// On default settings the emitted stream is byte-identical to
    /// [`crate::Mule::run`] on the original graph (see module docs).
    pub fn run<S: CliqueSink>(&mut self, sink: &mut S) -> &EnumerationStats {
        self.run_limited(sink, &mut RunLimits::none());
        &self.stats
    }

    /// [`Self::run`] under live [`RunLimits`]: probes once up front
    /// (so a zero deadline or pre-tripped token interrupts before the
    /// first emission even on tiny inputs), at every schedule-unit
    /// boundary, and — through the kernel — every ~1024 search nodes
    /// inside a unit. Returns why the run was interrupted, or `None`
    /// for a clean finish (including a sink-requested
    /// [`Control::Stop`]). Counters for the partial run are in
    /// [`Self::stats`], and everything emitted before an interrupt is
    /// a byte-identical prefix of the uninterrupted stream.
    pub(crate) fn run_limited<S: CliqueSink>(
        &mut self,
        sink: &mut S,
        limits: &mut RunLimits,
    ) -> Option<Interrupt> {
        self.stats = EnumerationStats::new();
        self.stats.calls += 1; // the conceptual root node
        if limits.probe_now(self.stats.calls) {
            return limits.tripped();
        }
        if self.original_n == 0 {
            // The empty clique is maximal in the empty graph — but it
            // has zero vertices, so it never meets a size threshold
            // (direct LargeMule likewise emits nothing here).
            if self.min_size <= 1 {
                self.stats.emitted += 1;
                sink.emit(&[], 1.0);
            }
            return None;
        }
        let mut arenas = std::mem::take(&mut self.arenas);
        let mut c = std::mem::take(&mut self.clique_buf);
        let mut scratch = std::mem::take(&mut self.remap_scratch);
        arenas.clear();
        c.clear();
        for &unit in &self.schedule {
            if limits.probe_now(self.stats.calls) {
                break;
            }
            let ctl = step(
                &self.components,
                self.min_size,
                &mut self.stats,
                unit,
                &mut arenas,
                &mut c,
                &mut scratch,
                limits,
                sink,
            );
            if ctl == Control::Stop {
                break;
            }
        }
        self.arenas = arenas;
        self.clique_buf = c;
        self.remap_scratch = scratch;
        limits.tripped()
    }

    /// Begin an incremental (unit-at-a-time) run: reset the counters and
    /// account for the conceptual root, exactly like [`Self::run`] does
    /// up front. Returns the empty-graph emission, if any — the one
    /// clique the schedule loop cannot express. Drives the pull-based
    /// iterator of the session API ([`crate::Prepared::iter`]).
    pub(crate) fn begin_incremental(&mut self) -> Option<(Vec<VertexId>, f64)> {
        self.stats = EnumerationStats::new();
        self.stats.calls += 1; // the conceptual root node
        self.arenas.clear();
        self.clique_buf.clear();
        if self.original_n == 0 && self.min_size <= 1 {
            self.stats.emitted += 1;
            return Some((Vec::new(), 1.0));
        }
        None
    }

    /// Number of schedule units (root subtrees + singleton emissions).
    pub(crate) fn num_units(&self) -> usize {
        self.schedule.len()
    }

    /// Run exactly one schedule unit into `sink` — the same per-unit
    /// body [`Self::run`] loops over, so an incremental consumer emits
    /// the byte-identical stream. Counters accumulate into
    /// [`Self::stats`]; call [`Self::begin_incremental`] first.
    pub(crate) fn run_unit<S: CliqueSink>(&mut self, idx: usize, sink: &mut S) -> Control {
        let unit = self.schedule[idx];
        let mut arenas = std::mem::take(&mut self.arenas);
        let mut c = std::mem::take(&mut self.clique_buf);
        let mut scratch = std::mem::take(&mut self.remap_scratch);
        // The pull-based path is caller-paced (the consumer can simply
        // stop pulling), so it runs without limits.
        let ctl = step(
            &self.components,
            self.min_size,
            &mut self.stats,
            unit,
            &mut arenas,
            &mut c,
            &mut scratch,
            &mut RunLimits::none(),
            sink,
        );
        self.arenas = arenas;
        self.clique_buf = c;
        self.remap_scratch = scratch;
        ctl
    }
}

/// The global emission schedule: units in ascending original-id order
/// (component-internal ids are already ascending in original order, so
/// slotting per original vertex interleaves components exactly as the
/// direct root loop would). Shared by [`prepare`],
/// `PreparedBase::refine`, and [`crate::delta`] so the construction
/// paths cannot drift.
pub(crate) fn build_schedule(
    n: usize,
    singletons: &[VertexId],
    components: &[PreparedComponent],
) -> Vec<Unit> {
    let mut unit_at: Vec<Option<Unit>> = vec![None; n];
    for &v in singletons {
        unit_at[v as usize] = Some(Unit::Singleton(v));
    }
    for (ci, pc) in components.iter().enumerate() {
        for (li, &orig) in pc.to_original.iter().enumerate() {
            unit_at[orig as usize] = Some(Unit::Root {
                comp: ci as u32,
                local: li as u32,
            });
        }
    }
    unit_at.into_iter().flatten().collect()
}

/// One schedule unit of a prepared run: emit a singleton directly, or
/// expand and search a root subtree (bounded when a size threshold is
/// configured), translating ids in the sink layer. Shared verbatim by
/// [`PreparedInstance::run`] and [`PreparedInstance::run_unit`], so the
/// streaming and pull-based paths cannot drift apart.
#[allow(clippy::too_many_arguments)] // the run loop's split-borrowed state
fn step<S: CliqueSink>(
    components: &[PreparedComponent],
    min_size: usize,
    stats: &mut EnumerationStats,
    unit: Unit,
    arenas: &mut DepthArenas,
    c: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
    limits: &mut RunLimits,
    sink: &mut S,
) -> Control {
    match unit {
        Unit::Singleton(v) => {
            stats.calls += 1;
            stats.max_depth = stats.max_depth.max(1);
            stats.emitted += 1;
            sink.emit(&[v], 1.0)
        }
        Unit::Root { comp, local } => {
            let pc = &components[comp as usize];
            let (i0, x0) = pc.kernel.expand_root_into(
                local,
                &mut arenas.even,
                &mut stats.i_candidates_scanned,
            );
            if min_size >= 2 && 1 + i0.len() < min_size {
                stats.size_pruned += 1;
                arenas.clear();
                return Control::Continue;
            }
            c.push(local);
            let mut remap = Remap {
                inner: sink,
                map: &pc.to_original,
                scratch,
            };
            let ctl = if min_size >= 2 {
                enumerate_subtree_bounded(
                    &pc.kernel,
                    stats,
                    c,
                    1.0,
                    i0,
                    x0,
                    &mut arenas.even,
                    &mut arenas.odd,
                    min_size,
                    limits,
                    &mut remap,
                )
            } else {
                enumerate_subtree(
                    &pc.kernel,
                    stats,
                    c,
                    1.0,
                    i0,
                    x0,
                    &mut arenas.even,
                    &mut arenas.odd,
                    limits,
                    &mut remap,
                )
            };
            c.pop();
            arenas.clear();
            ctl
        }
    }
}

/// Crate-internal remap adapter with a borrowed scratch buffer, so run
/// loops can construct one per root — or per emission, in `topk`'s
/// β-cut recursion — without allocating (the public
/// [`crate::sinks::RemapSink`] owns its scratch instead).
pub(crate) struct Remap<'a, S: CliqueSink> {
    pub(crate) inner: &'a mut S,
    pub(crate) map: &'a [VertexId],
    pub(crate) scratch: &'a mut Vec<VertexId>,
}

impl<S: CliqueSink> CliqueSink for Remap<'_, S> {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        self.scratch.clear();
        self.scratch
            .extend(clique.iter().map(|&v| self.map[v as usize]));
        debug_assert!(self.scratch.windows(2).all(|w| w[0] < w[1]));
        self.inner.emit(self.scratch, prob)
    }
}

/// Legacy wrapper: prepare with defaults (plus `min_size`) and collect
/// all qualifying maximal cliques, sorted lexicographically. Thin
/// delegate over the session API ([`crate::Query`]).
pub fn enumerate_prepared(
    g: &UncertainGraph,
    alpha: f64,
    min_size: usize,
) -> Result<Vec<(Vec<VertexId>, f64)>, GraphError> {
    let mut session = crate::Query::new(g)
        .alpha(alpha)
        .min_size(min_size)
        .prepare()
        .map_err(crate::MuleError::expect_graph)?;
    let mut pairs = session
        .collect()
        .expect("unlimited run cannot be interrupted");
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(pairs)
}

// ---------------------------------------------------------------------------
// α-split base artifacts: prepare once at a floor, refine per α.
// ---------------------------------------------------------------------------

/// One α-independent base component: a compact, connected subgraph of
/// the floor-pruned graph wrapped in a ready kernel (graph and tiered
/// index behind [`std::sync::Arc`]), its monotone map to original ids,
/// and the smallest edge probability inside it — the O(1) "does α touch
/// this component at all?" probe `PreparedBase::refine` keys its
/// fast path on.
pub struct BaseComponent {
    pub(crate) kernel: Kernel,
    pub(crate) to_original: Vec<VertexId>,
    pub(crate) min_prob: f64,
}

impl BaseComponent {
    /// The compact, remapped component graph (floor-pruned bytes).
    pub fn graph(&self) -> &UncertainGraph {
        &self.kernel.g
    }

    /// Monotone map from compact ids to original vertex ids.
    pub fn to_original(&self) -> &[VertexId] {
        &self.to_original
    }
}

/// The α-independent half of the pipeline: connected components of the
/// floor-pruned graph, compact id maps and per-component tiered indexes,
/// computed **once** and reusable for every query threshold `α ≥ floor`.
///
/// [`prepare_base`] runs only the α-generic work — a prune at the
/// configurable floor (`0.0` = keep everything) and the component
/// decomposition. No core-filter or peel runs at the floor: those
/// stages are α-dependent, and running them early would compose
/// differently with a later α than the fresh pipeline does. Keeping
/// *all* material at the base is what lets `PreparedBase::refine`
/// reconstruct the full [`PrepareReport`] and the exact component
/// accounting of a fresh [`prepare`] at any α.
///
/// `refine(α)` derives a per-α [`PreparedInstance`] by masking sub-α
/// edges *inside each component* and re-running the core-filter/peel
/// bounds locally — every stage decomposes exactly per connected
/// component, so the local runs produce bit-identical graphs, maps,
/// schedule and report to the fresh global pipeline (pinned by
/// `tests/alpha_refine.rs`). A component the α-stages leave untouched
/// is **shared** into the refined view as two `Arc` clones (graph +
/// index) with a re-stamped α — zero copying, zero index rebuild.
pub struct PreparedBase {
    pub(crate) floor: f64,
    pub(crate) original_n: usize,
    pub(crate) original_edges: usize,
    /// The original graph's dataset name — re-attached when a refinement
    /// collapses to the whole-graph identity path, whose kernel graph
    /// carries the input name (component subgraphs carry `""`).
    pub(crate) name: String,
    pub(crate) config: PrepareConfig,
    pub(crate) components: Vec<BaseComponent>,
    /// Ascending original ids of vertices isolated at the floor.
    pub(crate) isolated: Vec<VertexId>,
}

/// Run the α-independent pipeline stages over `g` at `floor` and build
/// the reusable base artifact. `floor` must be a finite value in
/// `[0, 1]`; `0.0` (the default in the session API) prunes nothing, so
/// the base serves **every** valid α. Counts as one pipeline execution
/// for [`pipeline_invocations`]; refinements add zero.
pub fn prepare_base(
    g: &UncertainGraph,
    floor: f64,
    config: &PrepareConfig,
) -> Result<PreparedBase, GraphError> {
    if !(0.0..=1.0).contains(&floor) {
        // Rejects NaN too: comparisons with NaN are false.
        return Err(GraphError::InvalidAlpha { value: floor });
    }
    PIPELINE_RUNS.fetch_add(1, Ordering::Relaxed);
    let n = g.num_vertices();
    // Edge probabilities are strictly positive, so a zero floor prunes
    // nothing — work straight off the input (α validation also rejects
    // 0, so the prune entry point cannot express it).
    let pruned;
    let work: &UncertainGraph = if floor > 0.0 {
        pruned = subgraph::prune_below_alpha(g, floor)?;
        &pruned
    } else {
        g
    };
    let mut components = Vec::new();
    let mut isolated = Vec::new();
    for list in Components::compute(work).vertex_lists() {
        if list.len() == 1 {
            isolated.push(list[0]);
            continue;
        }
        let (sub, map) = subgraph::induced_subgraph(work, &list)?;
        let min_prob = sub.min_edge_prob().expect("a size-≥2 component has edges");
        components.push(BaseComponent {
            kernel: Kernel::wrap(sub, floor, &config.mule),
            to_original: map,
            min_prob,
        });
    }
    Ok(PreparedBase {
        floor,
        original_n: n,
        original_edges: g.num_edges(),
        name: g.name().to_string(),
        config: config.clone(),
        components,
        isolated,
    })
}

/// Per-base-component outcome of the α-dependent local stages.
struct LocalRefinement {
    /// The locally re-pruned/filtered/peeled graph — `None` when every
    /// α-stage left the base component's bytes intact (the share path).
    work: Option<UncertainGraph>,
    /// Connected-component vertex lists (local ids) of the refined
    /// graph, in local BFS order.
    lists: Vec<Vec<VertexId>>,
}

impl LocalRefinement {
    fn graph<'a>(&'a self, base: &'a BaseComponent) -> &'a UncertainGraph {
        match &self.work {
            Some(w) => w,
            None => &base.kernel.g,
        }
    }
}

/// One entry of the merged global component order: a local list of a
/// base component, or a vertex isolated at the floor.
enum Slice {
    Comp { j: usize, li: usize },
    Iso(VertexId),
}

impl PreparedBase {
    /// The α-floor the base was pruned at (`0.0` = no pruning).
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The size threshold refinements are built for.
    pub fn min_size(&self) -> usize {
        self.config.min_size
    }

    /// Vertex count of the original graph.
    pub fn original_vertices(&self) -> usize {
        self.original_n
    }

    /// Edge count of the original graph (pre-floor), retained so
    /// refinements can reconstruct the fresh α-prune accounting.
    pub fn original_edges(&self) -> usize {
        self.original_edges
    }

    /// The original graph's dataset name.
    pub fn graph_name(&self) -> &str {
        &self.name
    }

    /// The configuration refinements are built under.
    pub fn config(&self) -> &PrepareConfig {
        &self.config
    }

    /// The floor-pruned base components as `(graph, to_original)` pairs;
    /// maps are monotone and pairwise disjoint.
    pub fn components(&self) -> impl ExactSizeIterator<Item = (&UncertainGraph, &[VertexId])> {
        self.components
            .iter()
            .map(|bc| (&*bc.kernel.g, bc.to_original.as_slice()))
    }

    /// Ascending original ids of vertices isolated at the floor.
    pub fn isolated(&self) -> &[VertexId] {
        &self.isolated
    }

    /// Reassemble a base from deserialized parts (the [`crate::catalog`]
    /// open path). The decoder has validated the cross-part invariants
    /// (connectivity, disjoint coverage, floor consistency); like
    /// [`PreparedInstance::from_parts`] this never touches
    /// [`PIPELINE_RUNS`] — but it does rebuild the per-component
    /// indexes, which are derived state the catalog does not store.
    pub(crate) fn from_parts(
        floor: f64,
        config: PrepareConfig,
        original_n: usize,
        original_edges: usize,
        name: String,
        parts: Vec<(UncertainGraph, Vec<VertexId>)>,
        isolated: Vec<VertexId>,
    ) -> Self {
        let components = parts
            .into_iter()
            .map(|(g, map)| {
                let min_prob = g.min_edge_prob().expect("a size-≥2 component has edges");
                BaseComponent {
                    kernel: Kernel::wrap(g, floor, &config.mule),
                    to_original: map,
                    min_prob,
                }
            })
            .collect();
        PreparedBase {
            floor,
            original_n,
            original_edges,
            name,
            config,
            components,
            isolated,
        }
    }

    /// Derive the per-α view: run the α-dependent stages (edge mask,
    /// core filter, peel, local re-split) **inside each base component**
    /// and assemble a [`PreparedInstance`] byte-identical — graphs, id
    /// maps, schedule, report, probability bits — to a fresh
    /// [`prepare`]`(g, alpha, config)`. Components the α-stages leave
    /// untouched are shared (`Arc` clones of graph and index) instead of
    /// rebuilt. Does **not** count as a pipeline execution.
    ///
    /// The caller (the session layer) guarantees `alpha ≥ floor`; below
    /// the floor the base is missing edges the fresh pipeline would
    /// keep, so the equivalence breaks — debug-asserted here, surfaced
    /// as a typed error in [`crate::query`].
    pub(crate) fn refine(&self, alpha: f64) -> Result<PreparedInstance, GraphError> {
        let alpha = UncertainGraph::validate_alpha(alpha)?.get();
        debug_assert!(
            alpha >= self.floor,
            "refine below the base floor ({} < {})",
            alpha,
            self.floor
        );
        let t = self.config.min_size;
        let n = self.original_n;
        let mut report = PrepareReport {
            original_vertices: n,
            original_edges: self.original_edges,
            ..Default::default()
        };

        // The α-dependent stages, per base component. Every stage
        // decomposes exactly per connected component (prune and restrict
        // are edge/vertex-local, core numbers are a per-component
        // fixpoint of the peel recurrence, the Modani–Dey peel is a
        // per-component fixpoint, and `Components` refines within base
        // components), so local runs reproduce the fresh global bytes.
        let mut surviving = 0usize; // Σ edges after local stage 1
        let mut locals: Vec<LocalRefinement> = Vec::with_capacity(self.components.len());
        for bc in &self.components {
            let mut work: Option<UncertainGraph> = None;

            // Stage 1: mask sub-α edges. `min_prob ≥ α` ⇔ nothing to
            // drop ⇔ the pruned CSR would be byte-identical — skip.
            if bc.min_prob < alpha {
                work = Some(subgraph::prune_below_alpha(&bc.kernel.g, alpha)?);
            }
            surviving += work
                .as_ref()
                .map_or(bc.kernel.g.num_edges(), |w| w.num_edges());

            // Stage 2: expected-degree (t−1)·α-core filter, locally.
            if t >= 2 && self.config.core_filter {
                let cur = match &work {
                    Some(w) => w,
                    None => &bc.kernel.g,
                };
                let mut restricted = None;
                if cur.num_edges() > 0 {
                    let decomp = CoreDecomposition::compute(cur);
                    let threshold = (t - 1) as f64 * alpha;
                    let nj = cur.num_vertices();
                    let mut in_core = vec![false; nj];
                    for v in decomp.core(threshold) {
                        in_core[v as usize] = true;
                    }
                    let dropped = (0..nj)
                        .filter(|&v| !in_core[v] && cur.degree(v as VertexId) > 0)
                        .count();
                    if dropped > 0 {
                        let before = cur.num_edges();
                        let r = subgraph::restrict_to_vertices(cur, &in_core);
                        report.core_filtered_vertices += dropped;
                        report.core_filtered_edges += before - r.num_edges();
                        restricted = Some(r);
                    }
                }
                if restricted.is_some() {
                    work = restricted;
                }
            }

            // Stage 3: shared-neighborhood peel, locally. A no-removal
            // peel rebuilds the identical CSR, so only edge loss (or an
            // already-touched component, where the fresh path would
            // carry the peeled copy anyway) replaces the graph.
            if t >= 3 && self.config.shared_neighborhood {
                let (cur_edges, peeled) = {
                    let cur = match &work {
                        Some(w) => w,
                        None => &bc.kernel.g,
                    };
                    if cur.num_edges() > 0 {
                        let (peeled, pr) = shared_neighborhood_peel(cur, t)?;
                        report.shared_pruned_edges += pr.shared_pruned_edges;
                        report.shared_isolated_vertices += pr.degree_pruned_vertices;
                        (cur.num_edges(), Some(peeled))
                    } else {
                        (0, None)
                    }
                };
                if let Some(p) = peeled {
                    if work.is_some() || p.num_edges() != cur_edges {
                        work = Some(p);
                    }
                }
            }

            // Stage 4a: local re-split — only when masking actually
            // changed the component. Untouched components are connected
            // by construction, so their single list is known.
            let lists = match &work {
                None => vec![(0..bc.kernel.g.num_vertices() as VertexId).collect()],
                Some(w) => Components::compute(w).vertex_lists(),
            };
            locals.push(LocalRefinement { work, lists });
        }
        report.alpha_pruned_edges = self.original_edges - surviving;

        // Stage 4b: merge the local component lists and the floor
        // isolates into the global order — `Components` discovers
        // components by ascending smallest member, and the base maps are
        // monotone and disjoint, so sorting by first original id
        // reproduces the fresh global discovery order exactly.
        let mut entries: Vec<(VertexId, Slice)> = Vec::new();
        for (j, (bc, lr)) in self.components.iter().zip(&locals).enumerate() {
            for (li, list) in lr.lists.iter().enumerate() {
                let first = bc.to_original[list[0] as usize];
                entries.push((first, Slice::Comp { j, li }));
            }
        }
        for &v in &self.isolated {
            entries.push((v, Slice::Iso(v)));
        }
        entries.sort_unstable_by_key(|e| e.0);
        let entry_len = |s: &Slice| match s {
            Slice::Comp { j, li } => locals[*j].lists[*li].len(),
            Slice::Iso(_) => 1,
        };

        let mut components: Vec<PreparedComponent> = Vec::new();
        let mut singletons: Vec<VertexId> = Vec::new();
        let min_keep = t.max(2);
        if self.config.shard_components {
            report.components_total = entries.len();
            let qualifying = entries
                .iter()
                .filter(|(_, s)| entry_len(s) >= min_keep)
                .count();
            if qualifying == 1 {
                // Identity fast path, replayed: the fresh pipeline would
                // wrap the *whole* pruned graph — rebuild it by merging
                // the local rows back into one n-vertex CSR (translated
                // rows stay sorted under the monotone maps, probability
                // bits are copied) under the original dataset name.
                for (_, s) in &entries {
                    let len = entry_len(s);
                    if len >= min_keep {
                        report.components_kept = 1;
                        report.largest_component = len;
                        let Slice::Comp { j, li } = s else {
                            unreachable!("an isolate never meets min_keep ≥ 2")
                        };
                        let cur = locals[*j].graph(&self.components[*j]);
                        let arcs: usize =
                            locals[*j].lists[*li].iter().map(|&v| cur.degree(v)).sum();
                        report.final_edges = arcs / 2;
                        report.final_vertices += len;
                    } else if len == 1 && t <= 1 {
                        report.singleton_vertices += 1;
                        report.final_vertices += 1;
                    } else {
                        report.components_dropped_small += 1;
                    }
                }
                let identity: Vec<VertexId> = (0..n as VertexId).collect();
                components.push(PreparedComponent {
                    kernel: Kernel::wrap(self.merged_work(&locals), alpha, &self.config.mule),
                    to_original: identity,
                });
            } else {
                for (_, s) in &entries {
                    let len = entry_len(s);
                    if len < min_keep {
                        if len == 1 && t <= 1 {
                            report.singleton_vertices += 1;
                            let v = match s {
                                Slice::Comp { j, li } => {
                                    self.components[*j].to_original
                                        [locals[*j].lists[*li][0] as usize]
                                }
                                Slice::Iso(v) => *v,
                            };
                            singletons.push(v);
                        } else {
                            report.components_dropped_small += 1;
                        }
                        continue;
                    }
                    let Slice::Comp { j, li } = s else {
                        unreachable!("an isolate never meets min_keep ≥ 2")
                    };
                    let (bc, lr) = (&self.components[*j], &locals[*j]);
                    report.components_kept += 1;
                    report.largest_component = report.largest_component.max(len);
                    report.final_vertices += len;
                    if lr.work.is_none() {
                        // Untouched: the fresh induced subgraph would be
                        // byte-identical to the base component, so share
                        // the resident graph and index (O(1)) under a
                        // re-stamped α.
                        report.final_edges += bc.kernel.g.num_edges();
                        components.push(PreparedComponent {
                            kernel: bc.kernel.share_at(alpha),
                            to_original: bc.to_original.clone(),
                        });
                    } else {
                        let list = &lr.lists[*li];
                        let (sub, _) = subgraph::induced_subgraph(lr.graph(bc), list)?;
                        report.final_edges += sub.num_edges();
                        let map: Vec<VertexId> =
                            list.iter().map(|&l| bc.to_original[l as usize]).collect();
                        components.push(PreparedComponent {
                            kernel: Kernel::wrap(sub, alpha, &self.config.mule),
                            to_original: map,
                        });
                    }
                }
                report.final_vertices += singletons.len();
                report.largest_component = report
                    .largest_component
                    .max(usize::from(!singletons.is_empty()));
            }
        } else if n > 0 {
            report.components_total = 1;
            report.components_kept = 1;
            report.largest_component = n;
            let merged = self.merged_work(&locals);
            report.final_edges = merged.num_edges();
            report.final_vertices = n;
            let identity: Vec<VertexId> = (0..n as VertexId).collect();
            components.push(PreparedComponent {
                kernel: Kernel::wrap(merged, alpha, &self.config.mule),
                to_original: identity,
            });
        }

        let schedule = build_schedule(n, &singletons, &components);
        Ok(PreparedInstance::from_parts(
            alpha,
            self.config.clone(),
            n,
            self.name.clone(),
            components,
            singletons,
            schedule,
            report,
        ))
    }

    /// Merge the locally refined component rows back into one global
    /// n-vertex CSR — the graph the fresh pipeline's whole-graph paths
    /// (identity fast path, shard-off) would hold. Monotone maps keep
    /// translated rows sorted; floor isolates contribute empty rows;
    /// the original dataset name is re-attached (prune/restrict/peel
    /// all preserve it on the fresh path).
    fn merged_work(&self, locals: &[LocalRefinement]) -> UncertainGraph {
        let n = self.original_n;
        let mut slot = vec![u32::MAX; n];
        for (j, bc) in self.components.iter().enumerate() {
            for &orig in &bc.to_original {
                slot[orig as usize] = j as u32;
            }
        }
        let mut local_id = vec![0u32; n];
        for bc in &self.components {
            for (l, &orig) in bc.to_original.iter().enumerate() {
                local_id[orig as usize] = l as u32;
            }
        }
        let arcs: usize = locals
            .iter()
            .zip(&self.components)
            .map(|(lr, bc)| 2 * lr.graph(bc).num_edges())
            .sum();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(arcs);
        let mut probs = Vec::with_capacity(arcs);
        for v in 0..n {
            let j = slot[v];
            if j != u32::MAX {
                let bc = &self.components[j as usize];
                let cur = locals[j as usize].graph(bc);
                for (w, p) in cur.neighbors_with_probs(local_id[v]) {
                    neighbors.push(bc.to_original[w as usize]);
                    probs.push(p);
                }
            }
            offsets.push(neighbors.len());
        }
        UncertainGraph::try_from_csr(offsets, neighbors, probs, self.name.clone())
            .expect("merged per-component rows form a valid CSR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::{CollectSink, CountSink, FirstKSink};
    use ugraph_core::builder::{complete_graph, from_edges, GraphBuilder};
    use ugraph_core::Prob;

    /// Two triangles in separate components, an isolated vertex, and a
    /// pendant edge — exercises sharding, singletons and remapping.
    fn fixture() -> UncertainGraph {
        from_edges(
            9,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (4, 5, 0.8),
                (5, 6, 0.8),
                (4, 6, 0.8),
                (7, 8, 0.3),
            ],
        )
        .unwrap()
    }

    fn direct(g: &UncertainGraph, alpha: f64) -> (Vec<Vec<VertexId>>, Vec<u64>) {
        let mut m = crate::Mule::new(g, alpha).unwrap();
        let mut sink = CollectSink::new();
        m.run(&mut sink);
        let pairs = sink.into_pairs();
        (
            pairs.iter().map(|(c, _)| c.clone()).collect(),
            pairs.iter().map(|(_, p)| p.to_bits()).collect(),
        )
    }

    fn prepared(g: &UncertainGraph, alpha: f64) -> (Vec<Vec<VertexId>>, Vec<u64>) {
        let mut inst = prepare(g, alpha, &PrepareConfig::default()).unwrap();
        let mut sink = CollectSink::new();
        inst.run(&mut sink);
        let pairs = sink.into_pairs();
        (
            pairs.iter().map(|(c, _)| c.clone()).collect(),
            pairs.iter().map(|(_, p)| p.to_bits()).collect(),
        )
    }

    #[test]
    fn emission_stream_matches_direct_mule_exactly() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.25, 0.05] {
            assert_eq!(prepared(&g, alpha), direct(&g, alpha), "α={alpha}");
        }
    }

    #[test]
    fn stats_match_direct_mule() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.25] {
            let mut m = crate::Mule::new(&g, alpha).unwrap();
            let mut s1 = CountSink::new();
            m.run(&mut s1);
            let mut inst = prepare(&g, alpha, &PrepareConfig::default()).unwrap();
            let mut s2 = CountSink::new();
            inst.run(&mut s2);
            assert_eq!(inst.stats(), m.stats(), "α={alpha}");
        }
    }

    #[test]
    fn report_accounts_for_stages() {
        let g = fixture();
        let inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        let r = inst.report();
        assert_eq!(r.original_vertices, 9);
        assert_eq!(r.original_edges, 7);
        assert_eq!(r.alpha_pruned_edges, 1, "the 0.3 edge");
        // Components of the pruned graph: two triangles + three
        // isolated vertices (3, 7, 8).
        assert_eq!(r.components_total, 5);
        assert_eq!(r.components_kept, 2);
        assert_eq!(r.singleton_vertices, 3);
        assert_eq!(r.largest_component, 3);
        assert_eq!(r.final_vertices, 9);
        assert_eq!(r.final_edges, 6);
        assert!(inst.report().render().contains("components"));
    }

    #[test]
    fn components_are_compact_and_monotone() {
        let g = fixture();
        let inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        assert_eq!(inst.components().len(), 2);
        for (sub, map) in inst.components() {
            assert_eq!(sub.num_vertices(), 3);
            assert_eq!(sub.num_edges(), 3);
            assert_eq!(sub.num_vertices(), map.len());
            assert!(map.windows(2).all(|w| w[0] < w[1]), "map not monotone");
        }
        assert_eq!(inst.singletons(), &[3, 7, 8]);
        assert_eq!(inst.alpha(), 0.5);
        assert_eq!(inst.min_size(), 0);
        assert_eq!(inst.original_vertices(), 9);
    }

    #[test]
    fn min_size_matches_direct_large_mule() {
        // K4 sharing a vertex with a K3, plus pendants.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v, 0.9));
            }
        }
        edges.extend([(3, 4, 0.9), (3, 5, 0.9), (4, 5, 0.9), (5, 6, 0.9)]);
        let g = from_edges(8, &edges).unwrap();
        for alpha in [0.9, 0.5, 0.1, 0.01] {
            for t in 2..=5 {
                // Direct path: LargeMule on the whole graph.
                let mut lm = crate::LargeMule::new(&g, alpha, t).unwrap();
                let mut sink = CollectSink::new();
                lm.run(&mut sink);
                let expected = sink.into_sorted_cliques();
                let got: Vec<Vec<VertexId>> = enumerate_prepared(&g, alpha, t)
                    .unwrap()
                    .into_iter()
                    .map(|(c, _)| c)
                    .collect();
                assert_eq!(got, expected, "α={alpha}, t={t}");
            }
        }
    }

    #[test]
    fn min_size_two_drops_singletons() {
        let g = fixture();
        let inst = prepare(&g, 0.5, &PrepareConfig::with_min_size(2)).unwrap();
        assert!(inst.singletons().is_empty());
        assert_eq!(inst.report().components_dropped_small, 3);
    }

    #[test]
    fn core_filter_strips_pendants() {
        // K4 with a pendant chain: at t = 4 the chain's expected degree
        // can never reach 3·α.
        let mut edges = vec![(3u32, 4u32, 0.9), (4, 5, 0.9)];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v, 0.9));
            }
        }
        let g = from_edges(6, &edges).unwrap();
        let inst = prepare(&g, 0.5, &PrepareConfig::with_min_size(4)).unwrap();
        assert!(inst.report().core_filtered_vertices + inst.report().shared_pruned_edges > 0);
        // One real component remains, so the identity fast path keeps
        // the pruned graph whole (chain vertices isolated, not copied
        // out) rather than building a compact copy.
        assert_eq!(inst.components().len(), 1);
        let (sub, map) = inst.components().next().unwrap();
        assert_eq!(sub.num_edges(), 6);
        assert_eq!(map, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(inst.report().largest_component, 4);
        assert_eq!(inst.report().components_dropped_small, 2);
    }

    #[test]
    fn empty_graph_with_min_size_emits_nothing() {
        // The empty clique has zero vertices, so it never meets a size
        // threshold — matching direct LargeMule exactly.
        let g = GraphBuilder::new(0).build();
        let mut lm = crate::LargeMule::new(&g, 0.5, 3).unwrap();
        let mut direct = CollectSink::new();
        lm.run(&mut direct);
        assert!(direct.is_empty());

        let mut inst = prepare(&g, 0.5, &PrepareConfig::with_min_size(3)).unwrap();
        let mut sink = CollectSink::new();
        inst.run(&mut sink);
        assert!(sink.is_empty());

        let inst = prepare(&g, 0.5, &PrepareConfig::with_min_size(3)).unwrap();
        let out = crate::parallel::par_enumerate_prepared(&inst, 2);
        assert!(out.cliques.is_empty());
        assert_eq!(out.stats.emitted, 0);
    }

    #[test]
    fn identity_fast_path_report_matches_sharded_accounting() {
        // K4 plus a disjoint heavy edge pair and an isolated vertex:
        // one real component at t = 3, so the identity fast path fires,
        // but the report must count only the kept material — the same
        // numbers the sharded path would report.
        let mut edges = vec![(4u32, 5u32, 0.9)];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v, 0.9));
            }
        }
        let g = from_edges(7, &edges).unwrap();
        let inst = prepare(&g, 0.5, &PrepareConfig::with_min_size(3)).unwrap();
        let r = inst.report();
        assert_eq!(r.components_kept, 1);
        assert_eq!(r.final_vertices, 4, "only the K4 is kept material");
        assert_eq!(r.final_edges, 6);
        assert_eq!(r.largest_component, 4);
        // The {4,5} edge falls to the core filter (expected degree 0.9
        // is below the (t−1)·α = 1.0 bound), so 4, 5 and the isolated 6
        // are all sub-threshold singleton components.
        assert_eq!(r.core_filtered_vertices, 2);
        assert_eq!(r.core_filtered_edges, 1);
        assert_eq!(r.components_dropped_small, 3);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let mut inst = prepare(
            &GraphBuilder::new(0).build(),
            0.5,
            &PrepareConfig::default(),
        )
        .unwrap();
        let mut sink = CollectSink::new();
        inst.run(&mut sink);
        assert_eq!(sink.into_sorted_cliques(), vec![Vec::<VertexId>::new()]);

        let mut inst = prepare(
            &GraphBuilder::new(3).build(),
            0.5,
            &PrepareConfig::default(),
        )
        .unwrap();
        let mut sink = CollectSink::new();
        inst.run(&mut sink);
        assert_eq!(sink.into_sorted_cliques(), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(inst.report().singleton_vertices, 3);
    }

    #[test]
    fn shard_off_is_a_single_identity_component() {
        let g = fixture();
        let cfg = PrepareConfig {
            shard_components: false,
            ..Default::default()
        };
        let inst = prepare(&g, 0.5, &cfg).unwrap();
        assert_eq!(inst.components().len(), 1);
        let (sub, map) = inst.components().next().unwrap();
        assert_eq!(sub.num_vertices(), 9);
        assert_eq!(map.len(), 9);
        assert!(map.iter().enumerate().all(|(i, &v)| i as u32 == v));
        let mut inst = prepare(&g, 0.5, &cfg).unwrap();
        let mut sink = CollectSink::new();
        inst.run(&mut sink);
        let (cliques, _) = direct(&g, 0.5);
        assert_eq!(
            sink.into_pairs()
                .into_iter()
                .map(|(c, _)| c)
                .collect::<Vec<_>>(),
            cliques
        );
    }

    #[test]
    fn rerun_is_idempotent_and_early_stop_respected() {
        let g = fixture();
        let mut inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        let mut s1 = CountSink::new();
        inst.run(&mut s1);
        let mut s2 = CountSink::new();
        inst.run(&mut s2);
        assert_eq!(s1.count, s2.count);

        let mut first = FirstKSink::new(2);
        inst.run(&mut first);
        assert_eq!(first.into_cliques().len(), 2);
        assert!(inst.stats().emitted < s1.count);
    }

    #[test]
    fn complete_graph_counts_survive_pipeline() {
        let g = complete_graph(6, Prob::new(0.5).unwrap());
        let mut inst = prepare(&g, 0.125, &PrepareConfig::default()).unwrap();
        let mut sink = CountSink::new();
        inst.run(&mut sink);
        assert_eq!(sink.count, 20);
    }

    /// Serialized-catalog bytes are the byte-identity proxy: they cover
    /// every component graph (CSR + probability bits + name), id map,
    /// the singleton list, the schedule, the report and α itself.
    fn catalog_bytes(inst: &PreparedInstance) -> Vec<u8> {
        crate::catalog::to_bytes(inst)
    }

    #[test]
    fn refine_is_byte_identical_to_fresh_prepare() {
        let g = fixture();
        for floor in [0.0, 0.25, 0.5] {
            for t in [0usize, 2, 3, 4] {
                let cfg = PrepareConfig::with_min_size(t);
                let base = prepare_base(&g, floor, &cfg).unwrap();
                for alpha in [0.9, 0.75, 0.5, 0.25] {
                    if alpha < floor {
                        continue;
                    }
                    let fresh = prepare(&g, alpha, &cfg).unwrap();
                    let refined = base.refine(alpha).unwrap();
                    assert_eq!(
                        catalog_bytes(&refined),
                        catalog_bytes(&fresh),
                        "floor={floor} t={t} α={alpha}"
                    );
                    let mut s1 = CollectSink::new();
                    let mut refined = refined;
                    refined.run(&mut s1);
                    let mut s2 = CollectSink::new();
                    let mut fresh = fresh;
                    fresh.run(&mut s2);
                    assert_eq!(s1.into_pairs(), s2.into_pairs());
                    assert_eq!(refined.stats(), fresh.stats());
                }
            }
        }
    }

    #[test]
    fn refine_reproduces_identity_fast_path_and_shard_off() {
        // K4 plus a weak edge and an isolated vertex — exactly one real
        // component at t = 3, so fresh prepare takes the identity fast
        // path and refine must rebuild the merged whole-graph kernel
        // (original name included).
        let mut edges = vec![(4u32, 5u32, 0.4)];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v, 0.9));
            }
        }
        let g = from_edges(7, &edges).unwrap().with_name("merged-fixture");
        for cfg in [
            PrepareConfig::with_min_size(3),
            PrepareConfig {
                shard_components: false,
                ..Default::default()
            },
        ] {
            let base = prepare_base(&g, 0.0, &cfg).unwrap();
            for alpha in [0.9, 0.5, 0.3] {
                let fresh = prepare(&g, alpha, &cfg).unwrap();
                let refined = base.refine(alpha).unwrap();
                assert_eq!(
                    catalog_bytes(&refined),
                    catalog_bytes(&fresh),
                    "t={} shard={} α={alpha}",
                    cfg.min_size,
                    cfg.shard_components
                );
                let (kg, _) = refined.components().next().unwrap();
                assert_eq!(kg.name(), "merged-fixture");
            }
        }
    }

    #[test]
    fn refine_splits_components_when_masking_disconnects() {
        // Barbell: two triangles joined by a weak bridge. At α = 0.5 the
        // bridge masks away inside the base component, which must split
        // locally into two compact instances matching fresh prepare.
        let g = from_edges(
            6,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (2, 3, 0.3),
                (3, 4, 0.8),
                (4, 5, 0.8),
                (3, 5, 0.8),
            ],
        )
        .unwrap();
        let base = prepare_base(&g, 0.0, &PrepareConfig::default()).unwrap();
        assert_eq!(base.components().len(), 1, "one component at the floor");
        let refined = base.refine(0.5).unwrap();
        let fresh = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        assert_eq!(refined.components().len(), 2);
        assert_eq!(catalog_bytes(&refined), catalog_bytes(&fresh));
    }

    #[test]
    fn untouched_components_share_graph_and_index_storage() {
        let g = fixture();
        let base = prepare_base(&g, 0.0, &PrepareConfig::default()).unwrap();
        // α = 0.5: both triangles survive untouched (min probs 0.9 and
        // 0.8), the 0.3 pendant splits. The triangle kernels must be the
        // *same* allocation, not byte-equal copies.
        let refined = base.refine(0.5).unwrap();
        let shared = refined
            .components
            .iter()
            .filter(|pc| {
                base.components
                    .iter()
                    .any(|bc| std::sync::Arc::ptr_eq(&bc.kernel.g, &pc.kernel.g))
            })
            .count();
        assert_eq!(shared, 2);
        for pc in &refined.components {
            assert_eq!(pc.kernel.alpha, 0.5, "shared kernels are re-stamped");
        }
    }

    #[test]
    fn refine_does_not_count_as_a_pipeline_run() {
        let g = fixture();
        let before = pipeline_invocations();
        let base = prepare_base(&g, 0.0, &PrepareConfig::default()).unwrap();
        let _ = base.refine(0.5).unwrap();
        let _ = base.refine(0.9).unwrap();
        assert_eq!(pipeline_invocations(), before + 1);
    }

    #[test]
    fn prepare_base_rejects_bad_floors() {
        let g = fixture();
        for bad in [-0.1, 1.5, f64::NAN] {
            assert!(matches!(
                prepare_base(&g, bad, &PrepareConfig::default()),
                Err(GraphError::InvalidAlpha { .. })
            ));
        }
        // 0.0 and 1.0 are both legal floors (unlike query α, which
        // must be strictly positive).
        assert!(prepare_base(&g, 0.0, &PrepareConfig::default()).is_ok());
        assert!(prepare_base(&g, 1.0, &PrepareConfig::default()).is_ok());
    }
}
