//! Possible-world analysis: what does clique structure look like in
//! *sampled* deterministic worlds, and how does it relate to α-maximal
//! cliques?
//!
//! The α-maximal cliques of `G` are **not** the maximal cliques of any
//! single world — they are threshold structures over the whole
//! distribution. Sampling worlds and enumerating their (deterministic)
//! maximal cliques gives an independent, assumption-free view that is
//! useful for calibration and sanity checks:
//!
//! * [`sampled_world_clique_stats`] — the expected number / size profile
//!   of maximal cliques per world (Bron–Kerbosch on each sample);
//! * [`maximality_frequency`] — for a fixed vertex set `C`, how often `C`
//!   is a maximal clique in a sampled world. An α-clique with high
//!   `clq(C, G)` can still be maximal in very few worlds (some superset
//!   usually materializes too), which is exactly why the paper defines
//!   maximality against the threshold rather than per world; the examples
//!   use this function to illustrate the distinction.

use crate::deterministic::bron_kerbosch;
use rand::Rng;
use ugraph_core::{sample, UncertainGraph, VertexId};

/// Aggregate statistics of maximal cliques across sampled worlds.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldCliqueStats {
    /// Worlds sampled.
    pub worlds: usize,
    /// Mean number of maximal cliques per world.
    pub mean_count: f64,
    /// Smallest per-world count.
    pub min_count: u64,
    /// Largest per-world count.
    pub max_count: u64,
    /// Mean size of the largest clique per world.
    pub mean_max_size: f64,
    /// Largest clique seen in any world.
    pub max_size: usize,
}

/// Sample `worlds` deterministic graphs and enumerate each one's maximal
/// cliques with Bron–Kerbosch. Exponential-ish per world in the worst
/// case — intended for small/medium graphs and moderate sample counts.
///
/// Deterministic for a fixed graph, world count and RNG seed.
///
/// ```
/// use mule::sampled_world_clique_stats;
/// use rand::{rngs::SmallRng, SeedableRng};
/// use ugraph_core::builder::from_edges;
///
/// // A solid triangle plus a coin-flip pendant edge.
/// let g = from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 0.5)]).unwrap();
/// let stats = sampled_world_clique_stats(&g, 200, &mut SmallRng::seed_from_u64(7));
/// assert_eq!(stats.worlds, 200);
/// // Every world has exactly two maximal cliques: the triangle, plus
/// // either the pendant edge {2,3} or the isolated singleton {3}.
/// assert_eq!((stats.min_count, stats.max_count), (2, 2));
/// assert_eq!(stats.mean_count, 2.0);
/// assert_eq!(stats.max_size, 3);
/// ```
pub fn sampled_world_clique_stats<R: Rng + ?Sized>(
    g: &UncertainGraph,
    worlds: usize,
    rng: &mut R,
) -> WorldCliqueStats {
    assert!(worlds > 0, "need at least one world");
    let mut total = 0u64;
    let mut min_count = u64::MAX;
    let mut max_count = 0u64;
    let mut total_max_size = 0u64;
    let mut max_size = 0usize;
    for _ in 0..worlds {
        let world = sample::sample_world(g, rng);
        // Rebuild as a deterministic UncertainGraph (p = 1) to reuse the
        // Bron–Kerbosch implementation.
        let mut b = ugraph_core::GraphBuilder::new(world.num_vertices());
        for v in 0..world.num_vertices() as VertexId {
            for &w in world.neighbors(v) {
                if v < w {
                    b.add_edge(v, w, 1.0).expect("world edges are valid");
                }
            }
        }
        let cliques = bron_kerbosch(&b.build());
        let count = cliques.len() as u64;
        let world_max = cliques.iter().map(|c| c.len()).max().unwrap_or(0);
        total += count;
        min_count = min_count.min(count);
        max_count = max_count.max(count);
        total_max_size += world_max as u64;
        max_size = max_size.max(world_max);
    }
    WorldCliqueStats {
        worlds,
        mean_count: total as f64 / worlds as f64,
        min_count,
        max_count,
        mean_max_size: total_max_size as f64 / worlds as f64,
        max_size,
    }
}

/// Fraction of sampled worlds in which `c` is (a) a clique and (b) a
/// *maximal* clique. Returns `(clique_freq, maximal_freq)`.
///
/// `clique_freq` estimates `clq(C, G)` (Observation 1); `maximal_freq`
/// estimates the per-world maximality probability, which has no closed
/// product form (it couples `C`'s edges with all potential extender
/// edges) — sampling is the honest way to get it.
///
/// ```
/// use mule::maximality_frequency;
/// use rand::{rngs::SmallRng, SeedableRng};
/// use ugraph_core::builder::from_edges;
///
/// // Edge {0,1} at p = 0.9 under a p = 0.9 apex vertex 2.
/// let g = from_edges(3, &[(0, 1, 0.9), (0, 2, 0.9), (1, 2, 0.9)]).unwrap();
/// let (clq, max) = maximality_frequency(&g, &[0, 1], 50_000, &mut SmallRng::seed_from_u64(7));
/// // clq(C, G) = 0.9, but {0,1} is only *maximal* when the apex fails
/// // to materialize: 0.9 · (1 − 0.81) ≈ 0.171 — the gap the paper's
/// // threshold-based maximality definition sidesteps.
/// assert!((clq - 0.9).abs() < 0.01);
/// assert!((max - 0.171).abs() < 0.01);
/// assert!(max < clq);
/// ```
pub fn maximality_frequency<R: Rng + ?Sized>(
    g: &UncertainGraph,
    c: &[VertexId],
    worlds: usize,
    rng: &mut R,
) -> (f64, f64) {
    assert!(worlds > 0, "need at least one world");
    let mut clique_hits = 0usize;
    let mut maximal_hits = 0usize;
    // Candidate extenders: vertices adjacent (in the skeleton) to all of C.
    let extenders: Vec<VertexId> = match c.first() {
        None => g.vertices().collect(),
        Some(&pivot) => g
            .neighbors(pivot)
            .iter()
            .copied()
            .filter(|&v| !c.contains(&v) && c.iter().all(|&u| u == v || g.contains_edge(u, v)))
            .collect(),
    };
    for _ in 0..worlds {
        let world = sample::sample_world(g, rng);
        if !world.is_clique(c) {
            continue;
        }
        clique_hits += 1;
        let extendable = extenders
            .iter()
            .any(|&v| c.iter().all(|&u| world.contains_edge(u, v)));
        if !extendable {
            maximal_hits += 1;
        }
    }
    (
        clique_hits as f64 / worlds as f64,
        maximal_hits as f64 / worlds as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ugraph_core::builder::{complete_graph, from_edges};
    use ugraph_core::Prob;

    #[test]
    fn certain_graph_worlds_are_identical() {
        let g = complete_graph(5, Prob::ONE);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = sampled_world_clique_stats(&g, 20, &mut rng);
        assert_eq!(s.worlds, 20);
        assert_eq!(s.mean_count, 1.0);
        assert_eq!((s.min_count, s.max_count), (1, 1));
        assert_eq!(s.max_size, 5);
        assert_eq!(s.mean_max_size, 5.0);
    }

    #[test]
    fn uncertain_graph_world_counts_vary() {
        let g = complete_graph(8, Prob::new(0.5).unwrap());
        let mut rng = SmallRng::seed_from_u64(2);
        let s = sampled_world_clique_stats(&g, 50, &mut rng);
        assert!(s.min_count < s.max_count, "p=1/2 worlds should differ");
        assert!(s.mean_count > 1.0);
        assert!(s.max_size <= 8);
    }

    #[test]
    fn clique_frequency_matches_product() {
        let g = from_edges(3, &[(0, 1, 0.8), (1, 2, 0.8), (0, 2, 0.8)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let (clq_freq, max_freq) = maximality_frequency(&g, &[0, 1, 2], 50_000, &mut rng);
        assert!((clq_freq - 0.512).abs() < 0.01, "{clq_freq}");
        // The triangle has no extenders, so maximal whenever it's a clique.
        assert_eq!(clq_freq, max_freq);
    }

    #[test]
    fn maximality_is_rarer_than_cliqueness_with_extenders() {
        // Edge {0,1} at p = 0.9 with a p = 0.9 apex vertex 2: when all
        // three edges appear, {0,1} is a clique but NOT maximal.
        let g = from_edges(3, &[(0, 1, 0.9), (0, 2, 0.9), (1, 2, 0.9)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let (clq_freq, max_freq) = maximality_frequency(&g, &[0, 1], 50_000, &mut rng);
        assert!((clq_freq - 0.9).abs() < 0.01);
        // maximal ⇔ edge present ∧ ¬(both apex edges) = 0.9·(1−0.81).
        assert!((max_freq - 0.9 * 0.19).abs() < 0.01, "{max_freq}");
        assert!(max_freq < clq_freq);
    }

    #[test]
    fn empty_set_maximality() {
        // The empty set is a clique in every world; maximal only when the
        // graph has no vertices at all... with vertices it's always
        // extendable (any single vertex extends it).
        let g = from_edges(2, &[(0, 1, 0.5)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let (clq, max) = maximality_frequency(&g, &[], 100, &mut rng);
        assert_eq!(clq, 1.0);
        assert_eq!(max, 0.0);
    }

    /// Seed-pinned regression: the sampling path is part of the public
    /// API surface (prelude-exported), so its exact outputs for a fixed
    /// seed are a contract — any change to the world-sampling order,
    /// the Bron–Kerbosch traversal, or the aggregation arithmetic shows
    /// up here as a diff, not as silent drift.
    #[test]
    fn seed_pinned_outputs_are_stable() {
        let g = from_edges(
            6,
            &[
                (0, 1, 0.9),
                (1, 2, 0.8),
                (0, 2, 0.7),
                (2, 3, 0.5),
                (3, 4, 0.6),
                (4, 5, 0.4),
                (3, 5, 0.3),
            ],
        )
        .unwrap();

        let s = sampled_world_clique_stats(&g, 64, &mut SmallRng::seed_from_u64(42));
        assert_eq!(s.worlds, 64);
        assert_eq!((s.min_count, s.max_count), (3, 5));
        assert_eq!(s.mean_count.to_bits(), 4.046875f64.to_bits());
        assert_eq!(s.mean_max_size.to_bits(), 2.453125f64.to_bits());
        assert_eq!(s.max_size, 3);

        // The triangle {0,1,2} has no skeleton extender (vertex 3 only
        // reaches 2), so it is maximal in exactly the worlds where it
        // is a clique.
        let (clq, max) =
            maximality_frequency(&g, &[0, 1, 2], 4096, &mut SmallRng::seed_from_u64(42));
        assert_eq!(clq.to_bits(), (2047.0f64 / 4096.0).to_bits());
        assert_eq!(max.to_bits(), clq.to_bits());
    }

    #[test]
    #[should_panic]
    fn zero_worlds_panics() {
        let g = from_edges(2, &[(0, 1, 0.5)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let _ = sampled_world_clique_stats(&g, 0, &mut rng);
    }
}
