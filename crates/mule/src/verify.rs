//! Independent verification of enumeration output.
//!
//! Downstream pipelines (and our own harness) want to *check* a claimed
//! set of α-maximal cliques without trusting the enumerator that produced
//! it. This module re-derives every property from the reference oracles
//! in `ugraph-core`:
//!
//! * **soundness** — every reported set is an α-maximal clique;
//! * **canonical form** — sorted vertices, no duplicate sets;
//! * **non-redundancy** — no set contains another (Definition 6; implied
//!   by soundness but checked independently because it catches duplicate/
//!   subset bugs even when the oracle is wrong);
//! * **completeness** — optionally, against brute force (small graphs
//!   only) or by spot-checking that randomly sampled vertices' maximal
//!   cliques are all present.

use std::collections::HashSet;
use ugraph_core::{clique, GraphError, UncertainGraph, VertexId};

/// A verification failure, with enough context to debug the producer.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A reported set is not sorted or has duplicate vertices.
    NotCanonical {
        /// Index into the reported list.
        index: usize,
    },
    /// The same vertex set was reported twice.
    Duplicate {
        /// Index of the second occurrence.
        index: usize,
    },
    /// A reported set is not an α-clique at all.
    NotAlphaClique {
        /// Index into the reported list.
        index: usize,
    },
    /// A reported set is an α-clique but extendable (not maximal).
    NotMaximal {
        /// Index into the reported list.
        index: usize,
    },
    /// One reported set is contained in another.
    Redundant {
        /// Index of the contained set.
        inner: usize,
        /// Index of the containing set.
        outer: usize,
    },
    /// Brute force found a clique the report misses.
    Missing {
        /// The missing α-maximal clique.
        clique: Vec<VertexId>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotCanonical { index } => write!(f, "clique #{index} is not canonical"),
            Violation::Duplicate { index } => write!(f, "clique #{index} is a duplicate"),
            Violation::NotAlphaClique { index } => {
                write!(f, "clique #{index} is not an α-clique")
            }
            Violation::NotMaximal { index } => write!(f, "clique #{index} is not maximal"),
            Violation::Redundant { inner, outer } => {
                write!(f, "clique #{inner} is contained in clique #{outer}")
            }
            Violation::Missing { clique } => write!(f, "missing α-maximal clique {clique:?}"),
        }
    }
}

/// Verify soundness, canonical form and non-redundancy of a reported
/// clique list. Returns all violations found (empty ⇒ valid).
///
/// Cost: `O(k·n·s)` oracle checks for `k` cliques of size ≤ `s`, plus a
/// hash-based redundancy pass that is `O(Σ 2^… )`-free — containment is
/// tested pairwise only among cliques sharing their minimum vertex's
/// membership, via a per-vertex inverted index.
pub fn verify_sound(
    g: &UncertainGraph,
    alpha: f64,
    cliques: &[Vec<VertexId>],
) -> Result<Vec<Violation>, GraphError> {
    UncertainGraph::validate_alpha(alpha)?;
    let mut violations = Vec::new();
    let mut seen: HashSet<&[VertexId]> = HashSet::with_capacity(cliques.len());
    for (index, c) in cliques.iter().enumerate() {
        if !c.windows(2).all(|w| w[0] < w[1])
            || c.last().is_some_and(|&v| v as usize >= g.num_vertices())
        {
            violations.push(Violation::NotCanonical { index });
            continue;
        }
        if !seen.insert(c.as_slice()) {
            violations.push(Violation::Duplicate { index });
            continue;
        }
        if !clique::is_alpha_clique(g, c, alpha) {
            violations.push(Violation::NotAlphaClique { index });
        } else if !clique::is_alpha_maximal(g, c, alpha) {
            violations.push(Violation::NotMaximal { index });
        }
    }
    // Containment via inverted index on the smallest member: if A ⊆ B then
    // min(A) ∈ B, so it suffices to compare A against cliques containing
    // min(A).
    let mut by_vertex: Vec<Vec<usize>> = vec![Vec::new(); g.num_vertices()];
    for (i, c) in cliques.iter().enumerate() {
        for &v in c {
            if (v as usize) < by_vertex.len() {
                by_vertex[v as usize].push(i);
            }
        }
    }
    for (inner, c) in cliques.iter().enumerate() {
        let Some(&first) = c.first() else { continue };
        if first as usize >= by_vertex.len() {
            continue;
        }
        for &outer in &by_vertex[first as usize] {
            if outer != inner
                && cliques[outer].len() >= c.len()
                && c.iter().all(|x| cliques[outer].binary_search(x).is_ok())
                && cliques[outer] != *c
            {
                violations.push(Violation::Redundant { inner, outer });
            }
        }
    }
    Ok(violations)
}

/// Verify soundness *and* completeness against brute force. Only valid
/// for graphs small enough for [`crate::naive`] (`n ≤ 25`).
pub fn verify_complete(
    g: &UncertainGraph,
    alpha: f64,
    cliques: &[Vec<VertexId>],
) -> Result<Vec<Violation>, GraphError> {
    let mut violations = verify_sound(g, alpha, cliques)?;
    let truth = crate::naive::enumerate_naive(g, alpha)?;
    let reported: HashSet<&[VertexId]> = cliques.iter().map(|c| c.as_slice()).collect();
    for c in truth {
        if !reported.contains(c.as_slice()) {
            violations.push(Violation::Missing { clique: c });
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_maximal_cliques;
    use ugraph_core::builder::from_edges;

    fn fixture() -> UncertainGraph {
        from_edges(5, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.6)]).unwrap()
    }

    #[test]
    fn mule_output_verifies_clean() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.25] {
            let cliques = enumerate_maximal_cliques(&g, alpha).unwrap();
            assert!(verify_complete(&g, alpha, &cliques).unwrap().is_empty());
        }
    }

    #[test]
    fn catches_non_canonical() {
        let g = fixture();
        let v = verify_sound(&g, 0.5, &[vec![2, 1, 0]]).unwrap();
        assert!(v.contains(&Violation::NotCanonical { index: 0 }));
        let v = verify_sound(&g, 0.5, &[vec![0, 99]]).unwrap();
        assert!(v.contains(&Violation::NotCanonical { index: 0 }));
    }

    #[test]
    fn catches_duplicates() {
        let g = fixture();
        let v = verify_sound(&g, 0.5, &[vec![0, 1, 2], vec![0, 1, 2]]).unwrap();
        assert!(v.contains(&Violation::Duplicate { index: 1 }));
    }

    #[test]
    fn catches_non_clique_and_non_maximal() {
        let g = fixture();
        // {0,3} is not even a skeleton clique; {0,1} is extendable by 2.
        let v = verify_sound(&g, 0.5, &[vec![0, 3], vec![0, 1]]).unwrap();
        assert!(v.contains(&Violation::NotAlphaClique { index: 0 }));
        assert!(v.contains(&Violation::NotMaximal { index: 1 }));
    }

    #[test]
    fn catches_redundancy_independent_of_oracle() {
        let g = fixture();
        let v = verify_sound(&g, 0.5, &[vec![1, 2], vec![0, 1, 2]]).unwrap();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Redundant { inner: 0, outer: 1 })));
    }

    #[test]
    fn catches_missing_cliques() {
        let g = fixture();
        let v = verify_complete(&g, 0.5, &[vec![0, 1, 2], vec![4]]).unwrap();
        assert!(v.contains(&Violation::Missing { clique: vec![2, 3] }));
    }

    #[test]
    fn violations_display() {
        assert!(Violation::NotMaximal { index: 3 }.to_string().contains('3'));
        assert!(Violation::Missing { clique: vec![1, 2] }
            .to_string()
            .contains("[1, 2]"));
    }

    #[test]
    fn rejects_bad_alpha() {
        let g = fixture();
        assert!(verify_sound(&g, 0.0, &[]).is_err());
    }
}
