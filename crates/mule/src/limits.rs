//! Cooperative cancellation and resource budgets for enumeration runs.
//!
//! Maximal-clique enumeration is output-exponential: a single
//! adversarial `(graph, α)` pair can run effectively forever. A serving
//! system therefore needs *bounded* execution — a wall-clock deadline, a
//! search-node budget, or an external kill switch — without giving up
//! the kernel's performance contract.
//!
//! Three knobs, all configured on the [`crate::Query`] builder (or
//! retuned on a live [`crate::Prepared`] session) and all enforced by
//! the same mechanism:
//!
//! * [`Query::deadline`](crate::Query::deadline) — a [`Duration`]
//!   measured from the start of each execution method;
//! * [`Query::node_budget`](crate::Query::node_budget) — a cap on
//!   search nodes (`stats().calls`) per execution;
//! * [`Query::cancel_token`](crate::Query::cancel_token) — an external
//!   [`CancelToken`] (a clonable `Arc<AtomicBool>` handle) that any
//!   thread can trip at any time.
//!
//! # Enforcement model
//!
//! The enumeration kernel probes the configured limits **amortized**:
//! once every [`PROBE_INTERVAL`] (~1024) search nodes, plus once at
//! every schedule-unit boundary and once up front before the first
//! unit. A cheap one-branch `active` check is the only cost on the hot
//! path when no limit is configured — the zero-allocation pin and
//! byte-identity suites run with these checks compiled in.
//!
//! When a probe fires, the recursion unwinds through the existing
//! [`Control::Stop`](crate::Control::Stop) path **without emitting
//! anything further**, and the execution method returns the matching
//! typed error — [`MuleError::DeadlineExceeded`],
//! [`MuleError::BudgetExhausted`] or [`MuleError::Cancelled`]
//! (all [`crate::MuleError`] variants) — carrying the partial
//! [`EnumerationStats`](crate::EnumerationStats) of the interrupted
//! run.
//!
//! # The prefix guarantee
//!
//! Sequential emission order is canonical and deterministic, and an
//! interrupt never reorders, drops, or duplicates an emission — it only
//! truncates. Whatever a sink received before the error is a
//! **byte-identical prefix** (same cliques, same probability bits, same
//! order) of the stream the uninterrupted run would have produced.
//! Pinned by `tests/fault_injection.rs`.
//!
//! [`MuleError::DeadlineExceeded`]: crate::MuleError::DeadlineExceeded
//! [`MuleError::BudgetExhausted`]: crate::MuleError::BudgetExhausted
//! [`MuleError::Cancelled`]: crate::MuleError::Cancelled

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many search nodes pass between limit probes (amortization
/// window). Budget enforcement is accurate to within one window.
pub const PROBE_INTERVAL: u64 = 1024;

/// An external kill switch for enumeration runs: a clonable handle
/// around an `Arc<AtomicBool>`. Hand a clone to
/// [`Query::cancel_token`](crate::Query::cancel_token) (or
/// [`Prepared::set_cancel_token`](crate::Prepared::set_cancel_token)),
/// keep the original, and call [`CancelToken::cancel`] from any thread
/// — every execution observing the token (including all parallel
/// workers) winds down at its next probe and returns
/// [`MuleError::Cancelled`](crate::MuleError::Cancelled).
///
/// Tokens stay cancelled until [`CancelToken::reset`]; a session whose
/// token is tripped fails every subsequent execution immediately.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token. Every run holding a clone stops at its next
    /// probe. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has the token been tripped?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Clear the token so the session is usable again (e.g. a server
    /// reusing a resident session after cancelling one request).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// Why a run was interrupted — the internal discriminant behind the
/// three typed [`crate::MuleError`] variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Interrupt {
    /// The configured wall-clock deadline passed.
    Deadline,
    /// The configured search-node budget was consumed.
    Budget,
    /// The external [`CancelToken`] was tripped.
    Cancelled,
}

/// The limits configured on a session: durable across executions
/// (deadlines re-arm per execution method). `None` everywhere means
/// unlimited — the default.
#[derive(Debug, Clone, Default)]
pub(crate) struct LimitSpec {
    pub(crate) deadline: Option<Duration>,
    pub(crate) node_budget: Option<u64>,
    pub(crate) cancel: Option<CancelToken>,
}

impl LimitSpec {
    /// Is any limit configured at all?
    pub(crate) fn is_active(&self) -> bool {
        self.deadline.is_some() || self.node_budget.is_some() || self.cancel.is_some()
    }

    /// Arm the spec for one execution starting now: the deadline
    /// becomes an absolute [`Instant`].
    pub(crate) fn arm(&self) -> RunLimits {
        RunLimits {
            active: self.is_active(),
            deadline: self.deadline.map(|d| Instant::now() + d),
            node_budget: self.node_budget,
            cancel: self.cancel.clone(),
            shared_calls: None,
            published_calls: 0,
            countdown: PROBE_INTERVAL,
            tripped: None,
        }
    }

    /// Arm for one worker of a parallel execution: the deadline instant
    /// and the node counter are shared across workers, so the budget is
    /// a *total* over the whole run and every worker sees the same
    /// clock.
    pub(crate) fn arm_shared(
        &self,
        deadline: Option<Instant>,
        shared_calls: Arc<AtomicU64>,
    ) -> RunLimits {
        RunLimits {
            active: self.is_active(),
            deadline,
            node_budget: self.node_budget,
            cancel: self.cancel.clone(),
            shared_calls: Some(shared_calls),
            published_calls: 0,
            countdown: PROBE_INTERVAL,
            tripped: None,
        }
    }
}

/// Live limit state threaded through one enumeration run. Constructed
/// by [`LimitSpec::arm`] (or [`RunLimits::none`] for unlimited runs);
/// probed from the kernel recursion; inspected once at the end.
///
/// Everything is pre-allocated at arm time: probing performs no heap
/// allocation, preserving the kernel's zero-alloc steady state.
#[derive(Debug)]
pub(crate) struct RunLimits {
    /// Fast-path gate: false = no limit configured, probes are a single
    /// predictable branch.
    active: bool,
    deadline: Option<Instant>,
    node_budget: Option<u64>,
    cancel: Option<CancelToken>,
    /// Parallel runs share one node counter so the budget caps the
    /// total across workers, not per worker.
    shared_calls: Option<Arc<AtomicU64>>,
    /// How many of this run's local calls were already added to
    /// `shared_calls`.
    published_calls: u64,
    /// Nodes remaining until the next slow probe.
    countdown: u64,
    tripped: Option<Interrupt>,
}

impl RunLimits {
    /// Limits for an unlimited run: every probe is one false branch.
    pub(crate) fn none() -> Self {
        RunLimits {
            active: false,
            deadline: None,
            node_budget: None,
            cancel: None,
            shared_calls: None,
            published_calls: 0,
            countdown: PROBE_INTERVAL,
            tripped: None,
        }
    }

    /// Why the run stopped, if a limit fired.
    pub(crate) fn tripped(&self) -> Option<Interrupt> {
        self.tripped
    }

    /// The amortized hot-path probe, called once per search node with
    /// the run's cumulative node count. Returns `true` when the run
    /// must unwind (a limit fired now or earlier).
    #[inline]
    pub(crate) fn probe(&mut self, calls: u64) -> bool {
        if !self.active {
            return false;
        }
        if self.tripped.is_some() {
            return true;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return false;
        }
        self.countdown = PROBE_INTERVAL;
        self.probe_slow(calls)
    }

    /// An immediate (non-amortized) probe — unit boundaries and run
    /// entry, so a zero deadline or a pre-tripped token interrupts
    /// before the first emission even on tiny inputs.
    pub(crate) fn probe_now(&mut self, calls: u64) -> bool {
        if !self.active {
            return false;
        }
        if self.tripped.is_some() {
            return true;
        }
        self.probe_slow(calls)
    }

    /// The expensive checks, in severity order: external cancellation
    /// wins over the deadline, which wins over the budget.
    #[cold]
    fn probe_slow(&mut self, calls: u64) -> bool {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.tripped = Some(Interrupt::Cancelled);
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.tripped = Some(Interrupt::Deadline);
            return true;
        }
        if let Some(budget) = self.node_budget {
            let total = match &self.shared_calls {
                Some(shared) => {
                    // Publish this worker's nodes since the last probe;
                    // fetch_add returns the pre-add total.
                    let delta = calls - self.published_calls;
                    self.published_calls = calls;
                    shared.fetch_add(delta, Ordering::AcqRel) + delta
                }
                None => calls,
            };
            if total > budget {
                self.tripped = Some(Interrupt::Budget);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_limits_never_trip() {
        let mut limits = RunLimits::none();
        for calls in 0..10_000u64 {
            assert!(!limits.probe(calls));
        }
        assert!(!limits.probe_now(u64::MAX));
        assert_eq!(limits.tripped(), None);
    }

    #[test]
    fn budget_trips_within_one_probe_interval() {
        let spec = LimitSpec {
            node_budget: Some(100),
            ..Default::default()
        };
        let mut limits = spec.arm();
        let mut calls = 0u64;
        let tripped_at = loop {
            calls += 1;
            if limits.probe(calls) {
                break calls;
            }
            assert!(calls < 10 * PROBE_INTERVAL, "budget never fired");
        };
        assert_eq!(limits.tripped(), Some(Interrupt::Budget));
        assert!(tripped_at > 100, "must not fire before the budget");
        assert!(
            tripped_at <= 100 + PROBE_INTERVAL,
            "amortization window exceeded: {tripped_at}"
        );
        // Latched: every later probe answers immediately.
        assert!(limits.probe(calls + 1));
    }

    #[test]
    fn zero_deadline_trips_on_immediate_probe() {
        let spec = LimitSpec {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        let mut limits = spec.arm();
        assert!(limits.probe_now(0));
        assert_eq!(limits.tripped(), Some(Interrupt::Deadline));
    }

    #[test]
    fn cancel_token_is_shared_and_resettable() {
        let token = CancelToken::new();
        let spec = LimitSpec {
            cancel: Some(token.clone()),
            ..Default::default()
        };
        let mut limits = spec.arm();
        assert!(!limits.probe_now(1));
        token.cancel();
        assert!(token.is_cancelled());
        assert!(limits.probe_now(2));
        assert_eq!(limits.tripped(), Some(Interrupt::Cancelled));
        token.reset();
        // A *new* armed run starts clean after the reset.
        let mut rearmed = spec.arm();
        assert!(!rearmed.probe_now(1));
    }

    #[test]
    fn cancellation_outranks_deadline_and_budget() {
        let token = CancelToken::new();
        token.cancel();
        let spec = LimitSpec {
            deadline: Some(Duration::ZERO),
            node_budget: Some(0),
            cancel: Some(token),
        };
        let mut limits = spec.arm();
        assert!(limits.probe_now(100));
        assert_eq!(limits.tripped(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn shared_budget_sums_across_workers() {
        let spec = LimitSpec {
            node_budget: Some(1000),
            ..Default::default()
        };
        let shared = Arc::new(AtomicU64::new(0));
        let mut a = spec.arm_shared(None, shared.clone());
        let mut b = spec.arm_shared(None, shared.clone());
        // Each worker alone is under budget …
        assert!(!a.probe_now(600));
        assert_eq!(shared.load(Ordering::Acquire), 600);
        // … but the shared total crosses it.
        assert!(b.probe_now(600));
        assert_eq!(b.tripped(), Some(Interrupt::Budget));
        // Worker a's next probe republishes only the delta.
        assert!(a.probe_now(700));
        assert_eq!(a.tripped(), Some(Interrupt::Budget));
    }
}
