//! # mule — Maximal Uncertain cLique Enumeration
//!
//! Algorithms from *Mukherjee, Xu, Tirthapura, "Mining Maximal Cliques
//! from an Uncertain Graph"* (ICDE 2015), behind one entry point: the
//! [`Query`] builder and the reusable [`Prepared`] session it produces.
//!
//! | Paper artifact | Through the session API | Direct (pipeline-off) path |
//! |---|---|---|
//! | MULE (Algorithms 1–4) | [`Query::prepare`] → [`Prepared::collect`] / [`Prepared::count`] / [`Prepared::stream`] / [`Prepared::iter`] | [`Mule`] |
//! | LARGE–MULE (Algorithms 5–6) | [`Query::min_size`] ≥ 2, then any execution method | [`LargeMule`] |
//! | Modani–Dey shared-neighborhood filter | pipeline stage 3 ([`Query::shared_neighborhood`]) | [`pruning::shared_neighborhood_filter`] |
//! | DFS–NOIP baseline (Algorithm 7) | [`Query::engine`]`(`[`Engine::Noip`]`)` | [`DfsNoip`] |
//! | Top-k by probability (paper ref 47) | [`Prepared::top_k`] (adaptive β cut) | [`topk`], [`zou_topk`] |
//! | Theorem 1 / Moon–Moser bounds | — | [`bounds`] |
//! | Bron–Kerbosch + Tomita pivot (paper refs 8, 42) | — | [`deterministic`] |
//!
//! # The session lifecycle
//!
//! [`Query::new`] collects every knob — α, size threshold, threads,
//! index mode and budgets, pipeline stage toggles, engine — and
//! validates them at [`Query::prepare`], which runs the preprocessing
//! pipeline ([`mod@prepare`]: α-prune → expected-degree core filter →
//! shared-neighborhood peel → component-shard) **once**. The resulting
//! [`Prepared`] session owns the compact per-component kernels and
//! answers any number of queries from them: [`Prepared::count`],
//! [`Prepared::collect`] (parallel when [`Query::threads`] > 1),
//! [`Prepared::stream`] into any [`CliqueSink`], [`Prepared::top_k`],
//! and the pull-based [`Prepared::iter`]. No pipeline stage ever
//! re-runs within a session, and reruns are allocation-free in steady
//! state — the repeated-query shape a serving system needs. Errors
//! surface through the unified [`MuleError`]. Executions are bounded on
//! demand: [`Query::deadline`] / [`Query::node_budget`] / an external
//! [`CancelToken`] interrupt a run cooperatively with typed errors,
//! partial stats and a byte-identical output prefix (see
//! [`mod@limits`]) — the robustness layer the `mule serve` front end
//! builds on, with its enumeration workers on dedicated 128 MiB stacks
//! ([`mod@thread_util`]).
//!
//! Sessions also persist: [`Prepared::save`] writes the prepared
//! instance as a checksummed UGQ1 catalog file and [`Query::open`]
//! rebuilds a byte-identical session from it without re-running any
//! pipeline stage — the prepare-once / cold-open-many shape. See
//! [`mod@catalog`] for the on-disk format and its validation
//! guarantees.
//!
//! Because α is a *query-time* parameter in the paper, there is also an
//! α-generic session shape: [`Query::prepare_base`] runs only the
//! α-independent pipeline work once (floor-prune, component shard,
//! index build) and returns a resident [`query::Base`] whose
//! [`refine`](query::Base::refine)`(α)` derives, for any `α ≥ floor`, a
//! [`Prepared`] session byte-identical to a fresh
//! `Query::new(&g).alpha(α).prepare()` at a fraction of the cost —
//! untouched components are shared, not copied. Bases persist through
//! [`query::Base::save`] / [`Query::open_base`] as a flagged catalog
//! variant, and `mule serve` keeps one resident base per catalog with
//! an LRU of refined per-α views, so mixed-α traffic stops paying full
//! pipeline runs.
//!
//! The historical free functions ([`enumerate_maximal_cliques`],
//! [`enumerate_large_maximal_cliques`], [`par_enumerate_maximal_cliques`],
//! the [`topk`] and NOIP wrappers) remain as thin delegates over the
//! session API, byte-identical to their pre-session output (pinned by
//! `tests/api_equivalence.rs`); the enumerator types ([`Mule`],
//! [`LargeMule`], [`DfsNoip`]) remain the direct single-kernel reference
//! paths, byte-identical to the pipeline on default settings (pinned by
//! `tests/pipeline_equality.rs`).
//!
//! Extensions beyond the paper: [`mod@prepare`] (the pipeline),
//! [`mod@delta`] (dynamic graphs — typed mutation batches folded into
//! live sessions and catalogs component-locally, byte-identical to a
//! fresh prepare of the mutated graph), [`parallel`]
//! (work-stealing root-subtree fan-out, seeded per component),
//! [`verify`] (independent output checking), [`kcore`] (expected-degree
//! core decomposition — the paper's future-work direction), [`worlds`]
//! (sampled possible-world diagnostics) and [`naive`] (the exponential
//! test oracle).
//!
//! ## Example
//!
//! ```
//! use mule::{Query, MuleError};
//! use ugraph_core::builder::from_edges;
//!
//! # fn main() -> Result<(), MuleError> {
//! let g = from_edges(4, &[
//!     (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), // solid triangle
//!     (2, 3, 0.6),                            // shaky pendant
//! ])?;
//!
//! // Preprocess once; query the session as often as you like.
//! let mut session = Query::new(&g).alpha(0.5).prepare()?;
//! let cliques: Vec<_> = session.collect()?.into_iter().map(|(c, _)| c).collect();
//! assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
//! assert_eq!(session.count()?, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod catalog;
pub mod delta;
pub mod deterministic;
pub mod dfs_noip;
pub mod enumerate;
pub mod kcore;
mod kernel;
pub mod large;
pub mod limits;
pub mod naive;
pub mod parallel;
pub mod prepare;
pub mod pruning;
pub mod query;
pub mod sinks;
pub mod stats;
pub mod thread_util;
pub mod topk;
pub mod verify;
pub mod worlds;
pub mod zou_topk;

pub use delta::{DeltaOp, GraphDelta};
pub use dfs_noip::DfsNoip;
pub use enumerate::{
    count_maximal_cliques, enumerate_maximal_cliques, Candidate, IndexMode, Mule, MuleConfig,
};
pub use large::{enumerate_large_maximal_cliques, LargeMule};
pub use limits::CancelToken;
pub use parallel::{par_enumerate_maximal_cliques, par_enumerate_prepared};
pub use prepare::{
    prepare, prepare_base, BaseComponent, PrepareConfig, PrepareReport, PreparedBase,
    PreparedInstance,
};
pub use query::{Base, Cliques, Engine, MuleError, Prepared, Query};
pub use sinks::{CliqueSink, Control};
pub use stats::EnumerationStats;
pub use worlds::{maximality_frequency, sampled_world_clique_stats, WorldCliqueStats};
