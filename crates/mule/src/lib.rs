//! # mule — Maximal Uncertain cLique Enumeration
//!
//! Algorithms from *Mukherjee, Xu, Tirthapura, "Mining Maximal Cliques
//! from an Uncertain Graph"* (ICDE 2015):
//!
//! | Paper artifact | Here |
//! |---|---|
//! | MULE (Algorithms 1–4) | [`Mule`], [`enumerate_maximal_cliques`] |
//! | LARGE–MULE (Algorithms 5–6) | [`LargeMule`], [`enumerate_large_maximal_cliques`] |
//! | Modani–Dey shared-neighborhood filter | [`pruning::shared_neighborhood_filter`] |
//! | DFS–NOIP baseline (Algorithm 7) | [`DfsNoip`], [`dfs_noip::enumerate_maximal_cliques_noip`] |
//! | Theorem 1 / Moon–Moser bounds | [`bounds`] |
//! | Bron–Kerbosch + Tomita pivot (paper refs 8, 42) | [`deterministic`] |
//! | Top-k by probability (paper ref 47) | [`topk`] |
//!
//! Extensions beyond the paper: [`prepare`] (the unified preprocessing
//! pipeline — α-prune → core-filter → shared-neighborhood peel →
//! component-shard — that feeds every enumeration entry point one
//! compact remapped instance per component), [`parallel`] (work-stealing
//! root-subtree fan-out across threads, seeded per component), [`verify`]
//! (independent output checking), [`kcore`] (expected-degree core
//! decomposition — the paper's future-work direction), [`worlds`]
//! (sampled possible-world diagnostics) and [`naive`] (the exponential
//! test oracle).
//!
//! The convenience wrappers ([`enumerate_maximal_cliques`],
//! [`enumerate_large_maximal_cliques`], [`par_enumerate_maximal_cliques`],
//! [`topk`]) all route through [`prepare`]; the enumerator types
//! ([`Mule`], [`LargeMule`], [`DfsNoip`]) remain the direct single-kernel
//! paths, and the two are byte-identical on default settings (pinned by
//! `tests/pipeline_equality.rs`).
//!
//! ## Example
//!
//! ```
//! use mule::enumerate_maximal_cliques;
//! use ugraph_core::builder::from_edges;
//!
//! let g = from_edges(4, &[
//!     (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), // solid triangle
//!     (2, 3, 0.6),                            // shaky pendant
//! ]).unwrap();
//!
//! let cliques = enumerate_maximal_cliques(&g, 0.5).unwrap();
//! assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod deterministic;
pub mod dfs_noip;
pub mod enumerate;
pub mod kcore;
mod kernel;
pub mod large;
pub mod naive;
pub mod parallel;
pub mod prepare;
pub mod pruning;
pub mod sinks;
pub mod stats;
pub mod topk;
pub mod verify;
pub mod worlds;
pub mod zou_topk;

pub use dfs_noip::DfsNoip;
pub use enumerate::{
    count_maximal_cliques, enumerate_maximal_cliques, Candidate, IndexMode, Mule, MuleConfig,
};
pub use large::{enumerate_large_maximal_cliques, LargeMule};
pub use parallel::{par_enumerate_maximal_cliques, par_enumerate_prepared};
pub use prepare::{prepare, PrepareConfig, PrepareReport, PreparedInstance};
pub use sinks::{CliqueSink, Control};
pub use stats::EnumerationStats;
