//! Thread-spawning helpers for deep-recursion workloads.
//!
//! The enumeration kernel recurses once per clique vertex, and the NOIP
//! baseline recurses once per *candidate* — on adversarial inputs the
//! search tree is deep enough to overflow the 2 MiB default stack of a
//! spawned thread long before it exhausts any other resource. The
//! exemplar systems solve this by running every enumeration worker on a
//! dedicated big stack (Pathce spawns 128 MiB workers; SNIPPETS §1);
//! [`spawn_big_stack`] is that seam here, and the `mule serve` request
//! workers run on it.

use std::thread;

/// Stack size for enumeration worker threads: 128 MiB, matching the
/// exemplar systems' dedicated deep-recursion workers.
pub const BIG_STACK_BYTES: usize = 128 * 1024 * 1024;

/// Spawn a named OS thread with a [`BIG_STACK_BYTES`] stack and run
/// `f` on it. The join handle is returned; thread-creation failure
/// (an OS resource error) is surfaced as [`std::io::Error`] rather
/// than a panic.
pub fn spawn_big_stack<F, T>(name: &str, f: F) -> std::io::Result<thread::JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    thread::Builder::new()
        .name(name.to_owned())
        .stack_size(BIG_STACK_BYTES)
        .spawn(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each frame pins ~8 KiB of stack; `depth` frames ≈ `depth * 8` KiB.
    fn deep(depth: usize) -> u64 {
        let frame = std::hint::black_box([0u8; 8192]);
        if depth == 0 {
            u64::from(frame[0])
        } else {
            frame.len() as u64 + deep(depth - 1)
        }
    }

    #[test]
    fn big_stack_is_honored() {
        // ~4000 × 8 KiB ≈ 32 MiB of frames: overflows the 2 MiB default
        // stack of a spawned thread, comfortably fits in 128 MiB. The
        // test passing *is* the pin that the configured size took
        // effect.
        let handle = spawn_big_stack("mule-deep-test", || deep(4000)).expect("spawn failed");
        let total = handle
            .join()
            .expect("deep recursion overflowed the big stack");
        assert!(total >= 4000 * 8192);
    }

    #[test]
    fn thread_name_is_applied() {
        let handle = spawn_big_stack("mule-named-worker", || {
            thread::current().name().map(str::to_owned)
        })
        .expect("spawn failed");
        assert_eq!(
            handle.join().expect("worker panicked").as_deref(),
            Some("mule-named-worker")
        );
    }
}
