//! Shared search kernel for MULE, LARGE–MULE and the parallel workers:
//! graph preparation (α-pruning, optional relabeling, the tiered
//! neighborhood index), the GenerateI/GenerateX candidate filter
//! (Algorithms 3 and 4) with its per-call adaptive strategy dispatch
//! (dense row / bitset+gallop / two-pointer merge), and the candidate
//! **arena** the filters write into.
//!
//! # Arena span layout
//!
//! The enumeration's per-node candidate sets (`I`, `X`) live in a
//! depth-alternating **pair** of contiguous [`Arena`] buffers per search
//! (per worker in the parallel driver), addressed as half-open index
//! ranges ("spans") instead of owned vectors. A node at depth `d` holds
//! its spans in buffer `d mod 2` and appends its children's spans to
//! buffer `(d+1) mod 2`; each buffer is a stack of every *other* level
//! of the DFS path:
//!
//! ```text
//! even buffer: [ X₀ | I₀ | I₂ | X₂ | I₄ | X₄ | … ]
//! odd  buffer: [ I₁ | X₁ | I₃ | X₃ | … ]
//! ```
//!
//! Each recursion step appends the child's `I'` span and then its `X'`
//! span at the sibling buffer's tail (the `X'` span is the concatenation
//! of the filtered parent `X` and the filtered already-processed prefix
//! of the parent `I`, in that order — exactly the order Algorithm 2's
//! `X ← X ∪ {(u,r)}` update produces). Backtracking truncates to the
//! mark taken before the child was expanded. After the buffers have
//! grown to the deepest path once, the search performs **zero heap
//! allocations per node**: filters append into reserved capacity and
//! backtracking is a length reset (`tests/alloc_regression.rs` pins
//! this).
//!
//! Two buffers instead of one is what keeps the hot loop optimal: the
//! filter reads the parent span as a plain `&[Candidate]` slice from one
//! buffer while pushing into the other, so the compiler keeps the read
//! pointer in a register instead of re-checking a buffer that the
//! in-flight pushes might reallocate.

use crate::enumerate::{Candidate, IndexMode, MuleConfig};
use crate::limits::RunLimits;
use crate::sinks::{CliqueSink, Control};
use crate::stats::EnumerationStats;
use std::ops::Range;
use std::sync::Arc;
use ugraph_core::intersect::{gallop_cost, gallop_search};
use ugraph_core::{subgraph, GraphError, NeighborhoodIndex, UncertainGraph, VertexId};

/// A growable scratch stack of `T` addressed by [`Range<usize>`] spans.
///
/// `mark`/`truncate` bracket a child expansion; `get` copies an element
/// out by value so the buffer can be appended to while a span is being
/// read.
#[derive(Debug, Default)]
pub(crate) struct Arena<T> {
    buf: Vec<T>,
}

impl<T: Copy> Arena<T> {
    /// Fresh, empty arena.
    pub fn new() -> Self {
        Arena { buf: Vec::new() }
    }

    /// Current length — the tail position new spans are appended at.
    #[inline]
    pub fn mark(&self) -> usize {
        self.buf.len()
    }

    /// Drop everything at and beyond `mark` (backtrack). Keeps capacity.
    #[inline]
    pub fn truncate(&mut self, mark: usize) {
        self.buf.truncate(mark);
    }

    /// Remove all elements, keeping capacity (start of a new run).
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Copy the element at `i` out of the buffer.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.buf[i]
    }

    /// Overwrite the element at `i` (used by in-place span compaction).
    #[inline]
    pub fn set(&mut self, i: usize, value: T) {
        self.buf[i] = value;
    }

    /// Append one element at the tail.
    #[inline]
    pub fn push(&mut self, value: T) {
        self.buf.push(value);
    }

    /// Borrow a span as a slice (the fast read path of the filters).
    #[inline]
    pub fn span(&self, r: Range<usize>) -> &[T] {
        &self.buf[r]
    }
}

/// The arena of `(vertex, factor)` candidate tuples used by MULE and
/// LARGE–MULE (a [`Arena<Candidate>`] with a span view type).
pub(crate) type CandidateArena = Arena<Candidate>;

/// A borrowed candidate span: a sorted slice of `(vertex, factor)`
/// tuples.
pub(crate) type CandSpan<'a> = &'a [Candidate];

/// The depth-alternating buffer pair (see the module docs): nodes at
/// even depth hold their spans in `even` and write children into `odd`,
/// and vice versa. Owned by each enumerator / worker so capacity
/// persists across runs.
#[derive(Debug, Default)]
pub(crate) struct DepthArenas {
    pub even: CandidateArena,
    pub odd: CandidateArena,
}

impl DepthArenas {
    /// Fresh, empty pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty both buffers, keeping capacity (start of a new run/root).
    pub fn clear(&mut self) {
        self.even.clear();
        self.odd.clear();
    }
}

/// Which scanned counter a filter call charges: `I`-set generation
/// (Algorithm 3) or `X`-set generation (Algorithm 4). The strategy
/// counters (`dense_probes` / `gallop_probes` / `merge_steps`) are
/// charged directly by the filter bodies regardless of side.
#[derive(Clone, Copy)]
pub(crate) enum Scan {
    /// Candidate-set generation (`GenerateI`).
    I,
    /// Exclusion-set generation (`GenerateX`).
    X,
}

impl Scan {
    #[inline]
    fn counter(self, stats: &mut EnumerationStats) -> &mut u64 {
        match self {
            Scan::I => &mut stats.i_candidates_scanned,
            Scan::X => &mut stats.x_candidates_scanned,
        }
    }
}

/// Merge-vs-gallop crossover on the index-free path: the linear
/// two-pointer merge is dispatched when `|src| · MERGE_FACTOR ≥ deg(u)`.
/// Measured by the `filter_kernel` bench's `intersect` sweep (deg 1024,
/// hit densities 10/50/90%): per candidate, galloping costs
/// ~log(deg/|src|) probes while the merge amortizes to `1 + deg/|src|`
/// pointer steps; the merge matches or beats the gallop from
/// `|src|/deg = 1/16` up (0.7–0.8µs vs 0.9–1.0µs at 1/16, winning by
/// ~1.7× at 1/4) and only loses below `1/64` — so the dispatch flips at
/// `deg/|src| = 16`.
const MERGE_FACTOR: usize = 16;

/// Prepared search state shared by the enumeration algorithms.
///
/// The graph and index sit behind [`Arc`] so an α-generic base
/// ([`crate::prepare::PreparedBase`]) can hand the *same* compact CSR
/// and tiered index to every refined per-α view whose component the
/// refinement left untouched — sharing is O(1) and the shared bytes
/// are identical by construction, so byte-identity of the enumeration
/// output is preserved for free.
pub(crate) struct Kernel {
    pub g: Arc<UncertainGraph>,
    pub alpha: f64,
    pub index: Option<Arc<NeighborhoodIndex>>,
    /// When degeneracy relabeling is on: internal id → original id.
    pub back_map: Option<Vec<VertexId>>,
}

impl Kernel {
    /// α-prune (Observation 3), optionally relabel by degeneracy order, and
    /// build the dense adjacency index per the configuration.
    pub fn prepare(
        g: &UncertainGraph,
        alpha: f64,
        config: &MuleConfig,
    ) -> Result<Self, GraphError> {
        let alpha = UncertainGraph::validate_alpha(alpha)?.get();
        let mut pruned = subgraph::prune_below_alpha(g, alpha)?;
        let back_map = if config.degeneracy_order {
            let (relabeled, perm) = subgraph::degeneracy_relabel(&pruned);
            let mut back = vec![0 as VertexId; perm.len()];
            for (old, &new) in perm.iter().enumerate() {
                back[new as usize] = old as VertexId;
            }
            pruned = relabeled;
            Some(back)
        } else {
            None
        };
        let build_index = match config.index_mode {
            IndexMode::Always => true,
            IndexMode::Never => false,
            IndexMode::Auto => NeighborhoodIndex::should_build(&pruned, config.max_index_bytes),
        };
        let index = build_index
            .then(|| Arc::new(NeighborhoodIndex::build(&pruned, config.dense_index_bytes)));
        Ok(Kernel {
            g: Arc::new(pruned),
            alpha,
            index,
            back_map,
        })
    }

    /// Wrap an existing, already-pruned graph (used by LARGE–MULE after the
    /// Modani–Dey pass, which must not be α-pruned twice).
    pub fn wrap(g: UncertainGraph, alpha: f64, config: &MuleConfig) -> Self {
        let build_index = match config.index_mode {
            IndexMode::Always => true,
            IndexMode::Never => false,
            IndexMode::Auto => NeighborhoodIndex::should_build(&g, config.max_index_bytes),
        };
        let index =
            build_index.then(|| Arc::new(NeighborhoodIndex::build(&g, config.dense_index_bytes)));
        Kernel {
            g: Arc::new(g),
            alpha,
            index,
            back_map: None,
        }
    }

    /// Share this kernel's graph and index (O(1) `Arc` clones) under a
    /// re-stamped α. Used by `PreparedBase::refine` for components the
    /// α-dependent stages left untouched: the CSR bytes and index tiers
    /// are the very ones a fresh pipeline would have produced, so the
    /// refined view stays byte-identical while skipping the rebuild.
    pub fn share_at(&self, alpha: f64) -> Self {
        Kernel {
            g: Arc::clone(&self.g),
            alpha,
            index: self.index.as_ref().map(Arc::clone),
            back_map: self.back_map.clone(),
        }
    }

    /// Closed-form root expansion shared by sequential MULE, LARGE–MULE
    /// and the parallel workers: at the root every factor is 1 and every
    /// vertex `< u` has moved to `X` by the time `u` is processed, so
    ///
    /// * `I₀(u) = {(w, p(u,w)) : w ∈ Γ(u), w > u}`
    /// * `X₀(u) = {(v, p(u,v)) : v ∈ Γ(u), v < u}`
    ///
    /// read straight off the (already α-pruned, so `p ≥ α` always holds)
    /// adjacency in O(deg u). Appends `X₀` then `I₀` at the arena tail —
    /// the adjacency is sorted, so one pass writes both spans
    /// contiguously — and returns `(I₀, X₀)`. `scanned` is incremented
    /// per neighbor examined.
    pub fn expand_root_into(
        &self,
        u: VertexId,
        arena: &mut CandidateArena,
        scanned: &mut u64,
    ) -> (Range<usize>, Range<usize>) {
        let x_start = arena.mark();
        let mut i_start = x_start;
        for (w, p) in self.g.neighbors_with_probs(u) {
            *scanned += 1;
            arena.push((w, p));
            if w < u {
                i_start = arena.mark();
            }
        }
        (i_start..arena.mark(), x_start..i_start)
    }

    /// The shared body of GenerateI / GenerateX: keep the candidates of
    /// `src` (a span borrowed from the *other* depth buffer) that are
    /// adjacent to `u`, multiply each factor by `p({·, u})`, and drop
    /// entries whose new clique probability `q2 · r'` would fall below α.
    /// Survivors are appended at `out`'s tail (callers bracket the
    /// appends with `mark`/`truncate`). `side` picks which scanned
    /// counter is charged `src.len()`.
    ///
    /// The intersection strategy is chosen **per call** from the tiered
    /// index and the `|src| / deg(u)` shape:
    ///
    /// * `u` holds a dense probability row (always cache-resident — see
    ///   [`ugraph_core::adjacency::DENSE_ROW_MAX_BYTES`]) → one load per
    ///   candidate answers membership and probability together
    ///   (`dense_probes` counts the probability fetches it serves);
    /// * membership tier only → O(1) bitset probe per candidate, gallop
    ///   into the CSR row on each hit (`gallop_probes` accumulates the
    ///   modeled `O(log gap)` comparison cost per search) — the moving
    ///   left bound makes adjacent hits O(1);
    /// * no index, `|src|` within [`MERGE_FACTOR`] of `deg(u)` → linear
    ///   two-pointer merge (`merge_steps`), the regime where galloping
    ///   degenerates into repeated short searches;
    /// * no index otherwise → gallop per candidate from the moving left
    ///   bound.
    ///
    /// Every strategy multiplies the identical CSR `f64` (the dense row
    /// stores the same bits), so survivors and probabilities are
    /// bit-equal whichever path runs.
    #[inline]
    pub fn filter_candidates_into(
        &self,
        u: VertexId,
        q2: f64,
        src: CandSpan<'_>,
        out: &mut CandidateArena,
        stats: &mut EnumerationStats,
        side: Scan,
    ) {
        *side.counter(stats) += src.len() as u64;
        let nbrs = self.g.neighbors(u);
        let probs = self.g.neighbor_probs(u);
        if let Some(idx) = &self.index {
            if let Some(drow) = idx.dense_row(u) {
                // Dense rows only exist cache-resident, so the direct
                // one-load-per-candidate probe is always the right call.
                for &(w, r) in src {
                    let p = drow[w as usize];
                    if p > 0.0 {
                        stats.dense_probes += 1;
                        let r2 = r * p;
                        if q2 * r2 >= self.alpha {
                            out.push((w, r2));
                        }
                    }
                }
                return;
            }
            let row = idx.row(u);
            let mut lo = 0usize;
            for &(w, r) in src {
                // O(1) membership probe on the hot word row; on a hit
                // the probability is found by galloping the CSR row
                // (successive hits are at increasing positions because
                // `src` is sorted).
                if row.contains(w as usize) {
                    let j = gallop_search(nbrs, lo, w).expect("index row and CSR agree");
                    stats.gallop_probes += gallop_cost(j - lo + 1);
                    let r2 = r * probs[j];
                    lo = j + 1;
                    if q2 * r2 >= self.alpha {
                        out.push((w, r2));
                    }
                }
            }
            return;
        }
        if src.len() * MERGE_FACTOR >= nbrs.len() {
            // Linear two-pointer merge: |src| within a constant factor
            // of deg(u), where one sequential pass beats repeated
            // searches.
            let mut j = 0usize;
            let mut steps = 0u64;
            for &(w, r) in src {
                while j < nbrs.len() && nbrs[j] < w {
                    j += 1;
                    steps += 1;
                }
                if j >= nbrs.len() {
                    break;
                }
                steps += 1;
                if nbrs[j] == w {
                    let r2 = r * probs[j];
                    j += 1;
                    if q2 * r2 >= self.alpha {
                        out.push((w, r2));
                    }
                }
            }
            stats.merge_steps += steps;
            return;
        }
        // Index-free and the span is sparse relative to the row: gallop
        // per candidate from a moving left bound.
        let mut lo = 0usize;
        for &(w, r) in src {
            if lo >= nbrs.len() {
                break;
            }
            match gallop_search(nbrs, lo, w) {
                Ok(j) => {
                    stats.gallop_probes += gallop_cost(j - lo + 1);
                    let r2 = r * probs[j];
                    if q2 * r2 >= self.alpha {
                        out.push((w, r2));
                    }
                    lo = j + 1;
                }
                Err(j) => {
                    stats.gallop_probes += gallop_cost(j - lo + 1);
                    lo = j;
                }
            }
        }
    }

    /// Existence variant of the filter for leaf detection: when a child's
    /// `I'` is empty it can never recurse, so its `X'` is only ever
    /// tested for emptiness (Lemma 9) — this answers that test directly,
    /// short-circuiting at the first survivor instead of materializing
    /// the set. Dispatches across the same per-call strategies as
    /// [`Self::filter_candidates_into`]. `x_candidates_scanned` counts
    /// only the tuples actually examined (this test always charges the
    /// `X` side).
    ///
    /// The strategy bodies are deliberately duplicated from the
    /// materializing filter rather than parameterized over an
    /// accept-callback: this loop's wall-clock proved highly sensitive
    /// to codegen (see the negative results in the module/ROADMAP
    /// notes), and the two entry points are pinned against each other
    /// by `filter_strategies_agree_on_survivors_and_bits` and
    /// `any_candidate_survives_matches_materialized_filter`, so any
    /// hand-mirroring mistake fails the suite. Keep the bodies in sync
    /// when touching either.
    #[inline]
    pub fn any_candidate_survives(
        &self,
        u: VertexId,
        q2: f64,
        srcs: [CandSpan<'_>; 2],
        stats: &mut EnumerationStats,
    ) -> bool {
        let nbrs = self.g.neighbors(u);
        let probs = self.g.neighbor_probs(u);
        let index = self.index.as_ref();
        let dense = index.and_then(|idx| idx.dense_row(u));
        for src in srcs {
            if let Some(drow) = dense {
                for &(w, r) in src {
                    stats.x_candidates_scanned += 1;
                    let p = drow[w as usize];
                    if p > 0.0 {
                        stats.dense_probes += 1;
                        if q2 * (r * p) >= self.alpha {
                            return true;
                        }
                    }
                }
                continue;
            }
            if let Some(idx) = index {
                let row = idx.row(u);
                let mut lo = 0usize;
                for &(w, r) in src {
                    stats.x_candidates_scanned += 1;
                    if row.contains(w as usize) {
                        let j = gallop_search(nbrs, lo, w).expect("index row and CSR agree");
                        stats.gallop_probes += gallop_cost(j - lo + 1);
                        lo = j + 1;
                        if q2 * (r * probs[j]) >= self.alpha {
                            return true;
                        }
                    }
                }
                continue;
            }
            if src.len() * MERGE_FACTOR >= nbrs.len() {
                let mut j = 0usize;
                let mut steps = 0u64;
                for &(w, r) in src {
                    if j >= nbrs.len() {
                        break;
                    }
                    stats.x_candidates_scanned += 1;
                    while j < nbrs.len() && nbrs[j] < w {
                        j += 1;
                        steps += 1;
                    }
                    if j >= nbrs.len() {
                        break;
                    }
                    steps += 1;
                    if nbrs[j] == w {
                        let p = probs[j];
                        j += 1;
                        if q2 * (r * p) >= self.alpha {
                            stats.merge_steps += steps;
                            return true;
                        }
                    }
                }
                stats.merge_steps += steps;
                continue;
            }
            let mut lo = 0usize;
            for &(w, r) in src {
                if lo >= nbrs.len() {
                    break;
                }
                stats.x_candidates_scanned += 1;
                match gallop_search(nbrs, lo, w) {
                    Ok(j) => {
                        stats.gallop_probes += gallop_cost(j - lo + 1);
                        if q2 * (r * probs[j]) >= self.alpha {
                            return true;
                        }
                        lo = j + 1;
                    }
                    Err(j) => {
                        stats.gallop_probes += gallop_cost(j - lo + 1);
                        lo = j;
                    }
                }
            }
        }
        false
    }
}

/// Algorithm 2 (`Enum-Uncertain-MC`) over arena spans — the one copy of
/// MULE's recursion, shared by [`crate::Mule`] and the parallel workers.
///
/// `i_span` and `x_span` index into `cur` (this depth's buffer); each
/// branch appends the child's filtered `I'` span and then its `X'` span
/// at `next`'s tail, recurses with the buffers swapped, and truncates
/// back afterwards. The child's `X'` is the filtered parent `X` followed
/// by the filtered already-processed prefix of the parent `I` — the same
/// order Algorithm 2's `X ← X ∪ {(u, r)}` (line 10) grows the owned set,
/// without materializing it.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's state tuple
pub(crate) fn enumerate_subtree<S: CliqueSink>(
    kernel: &Kernel,
    stats: &mut EnumerationStats,
    c: &mut Vec<VertexId>,
    q: f64,
    i_span: Range<usize>,
    x_span: Range<usize>,
    cur: &mut CandidateArena,
    next: &mut CandidateArena,
    limits: &mut RunLimits,
    sink: &mut S,
) -> Control {
    stats.calls += 1;
    stats.max_depth = stats.max_depth.max(c.len());
    // Amortized limit probe (deadline / budget / cancel token), checked
    // *before* any emission at this node so an interrupted stream is a
    // clean prefix of the uninterrupted one.
    if limits.probe(stats.calls) {
        return Control::Stop;
    }
    if i_span.is_empty() && x_span.is_empty() {
        stats.emitted += 1;
        return sink.emit(c, q);
    }
    for pos in i_span.clone() {
        let (u, r) = cur.get(pos);
        // clq(C ∪ {u}) — one multiplication (the key insight).
        let q2 = q * r;
        let mark = next.mark();
        // Algorithm 3: I' from candidates beyond u (they are > u because
        // the I span is sorted by vertex id).
        kernel.filter_candidates_into(u, q2, cur.span(pos + 1..i_span.end), next, stats, Scan::I);
        let x2_start = next.mark();
        if mark == x2_start {
            // I' is empty: the child is a leaf, so X' is only tested for
            // emptiness (Lemma 9) — answer that directly with the
            // short-circuiting existence filter instead of materializing
            // X'. This inlines the child call (counters match what the
            // recursion would have recorded, minus the skipped scans).
            stats.calls += 1;
            stats.max_depth = stats.max_depth.max(c.len() + 1);
            if limits.probe(stats.calls) {
                return Control::Stop;
            }
            let extendable = kernel.any_candidate_survives(
                u,
                q2,
                [cur.span(x_span.clone()), cur.span(i_span.start..pos)],
                stats,
            );
            if !extendable {
                stats.emitted += 1;
                c.push(u);
                let ctl = sink.emit(c, q2);
                c.pop();
                if ctl == Control::Stop {
                    return Control::Stop;
                }
            }
            continue;
        }
        // Algorithm 4: X' from the exclusion set (including vertices
        // looped over earlier at this node).
        kernel.filter_candidates_into(u, q2, cur.span(x_span.clone()), next, stats, Scan::X);
        kernel.filter_candidates_into(u, q2, cur.span(i_span.start..pos), next, stats, Scan::X);
        let x2_end = next.mark();
        c.push(u);
        let ctl = enumerate_subtree(
            kernel,
            stats,
            c,
            q2,
            mark..x2_start,
            x2_start..x2_end,
            next,
            cur,
            limits,
            sink,
        );
        c.pop();
        next.truncate(mark);
        if ctl == Control::Stop {
            return Control::Stop;
        }
    }
    Control::Continue
}

/// Algorithm 6 (`Enum-Uncertain-MC-Large`) over arena spans — the
/// size-bounded sibling of [`enumerate_subtree`], shared by
/// [`crate::LargeMule`] and the per-component prepared path
/// (`crate::prepare`). Identical span layout; two differences:
///
/// * a branch is abandoned when `|C'| + |I'| < t` (line 8 — the
///   `continue` also skips the explicit `X ← X ∪ {(u, r)}` update,
///   which is safe because `u` stays in the parent `I` span and later
///   siblings filter it into their `X'` regardless);
/// * a node with `I = ∅ ∧ X = ∅` emits only when `|C| ≥ t` (reached
///   only through branches that passed the bound, so the condition
///   holds except at a too-small root — asserted in debug builds).
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 6's state tuple
pub(crate) fn enumerate_subtree_bounded<S: CliqueSink>(
    kernel: &Kernel,
    stats: &mut EnumerationStats,
    c: &mut Vec<VertexId>,
    q: f64,
    i_span: Range<usize>,
    x_span: Range<usize>,
    cur: &mut CandidateArena,
    next: &mut CandidateArena,
    t: usize,
    limits: &mut RunLimits,
    sink: &mut S,
) -> Control {
    stats.calls += 1;
    stats.max_depth = stats.max_depth.max(c.len());
    // Same pre-emission limit probe as `enumerate_subtree`.
    if limits.probe(stats.calls) {
        return Control::Stop;
    }
    if i_span.is_empty() && x_span.is_empty() {
        debug_assert!(c.len() >= t || c.is_empty());
        if c.len() >= t {
            stats.emitted += 1;
            return sink.emit(c, q);
        }
        return Control::Continue;
    }
    for pos in i_span.clone() {
        let (u, r) = cur.get(pos);
        let q2 = q * r;
        let mark = next.mark();
        kernel.filter_candidates_into(u, q2, cur.span(pos + 1..i_span.end), next, stats, Scan::I);
        let i2_len = next.mark() - mark;
        // Line 8: not enough material left to reach t vertices.
        if c.len() + 1 + i2_len < t {
            stats.size_pruned += 1;
            next.truncate(mark);
            continue;
        }
        let x2_start = next.mark();
        if mark == x2_start {
            // I' empty: leaf child (and past the line 8 bound, so
            // |C| + 1 ≥ t). Same emptiness short-circuit as
            // `enumerate_subtree`.
            debug_assert!(c.len() + 1 >= t);
            stats.calls += 1;
            stats.max_depth = stats.max_depth.max(c.len() + 1);
            if limits.probe(stats.calls) {
                return Control::Stop;
            }
            let extendable = kernel.any_candidate_survives(
                u,
                q2,
                [cur.span(x_span.clone()), cur.span(i_span.start..pos)],
                stats,
            );
            if !extendable {
                stats.emitted += 1;
                c.push(u);
                let ctl = sink.emit(c, q2);
                c.pop();
                if ctl == Control::Stop {
                    return Control::Stop;
                }
            }
            continue;
        }
        kernel.filter_candidates_into(u, q2, cur.span(x_span.clone()), next, stats, Scan::X);
        kernel.filter_candidates_into(u, q2, cur.span(i_span.start..pos), next, stats, Scan::X);
        let x2_end = next.mark();
        c.push(u);
        let ctl = enumerate_subtree_bounded(
            kernel,
            stats,
            c,
            q2,
            mark..x2_start,
            x2_start..x2_end,
            next,
            cur,
            t,
            limits,
            sink,
        );
        c.pop();
        next.truncate(mark);
        if ctl == Control::Stop {
            return Control::Stop;
        }
    }
    Control::Continue
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_mark_truncate_and_span() {
        let mut a: Arena<u32> = Arena::new();
        a.push(1);
        a.push(2);
        let mark = a.mark();
        a.push(3);
        a.push(4);
        assert_eq!(a.span(mark..a.mark()), &[3, 4]);
        a.set(mark, 30);
        assert_eq!(a.get(mark), 30);
        a.truncate(mark);
        assert_eq!(a.mark(), 2);
        assert_eq!(a.span(0..2), &[1, 2]);
        a.clear();
        assert_eq!(a.mark(), 0);
    }

    #[test]
    fn any_candidate_survives_matches_materialized_filter() {
        use crate::enumerate::IndexMode;
        use crate::enumerate::MuleConfig;
        use ugraph_core::builder::from_edges;

        let g = from_edges(
            6,
            &[
                (0, 1, 0.9),
                (0, 2, 0.8),
                (0, 3, 0.4),
                (0, 5, 0.95),
                (1, 2, 0.7),
            ],
        )
        .unwrap();
        for mode in [IndexMode::Always, IndexMode::Never] {
            let cfg = MuleConfig {
                index_mode: mode,
                ..Default::default()
            };
            let kernel = Kernel::prepare(&g, 0.3, &cfg).unwrap();
            // Candidates probing Γ(0): 2 survives (0.8·q2 ≥ α), 4 is not a
            // neighbor, 3 was α-pruned from the kernel graph.
            let mut arena = CandidateArena::new();
            for cand in [(2u32, 1.0f64), (3, 1.0), (4, 1.0)] {
                arena.push(cand);
            }
            let mut stats = EnumerationStats::new();
            for (loq, expect) in [(1.0, true), (0.1, false)] {
                let survives = kernel.any_candidate_survives(
                    0,
                    loq,
                    [arena.span(0..3), arena.span(0..0)],
                    &mut stats,
                );
                assert_eq!(survives, expect, "mode {mode:?}, q2={loq}");
                // Cross-check against the materializing filter (which
                // writes into the sibling buffer, per the span layout).
                let mut out = CandidateArena::new();
                let mut s2 = EnumerationStats::new();
                kernel.filter_candidates_into(0, loq, arena.span(0..3), &mut out, &mut s2, Scan::X);
                assert_eq!(out.mark() > 0, expect);
            }
            assert!(stats.x_candidates_scanned > 0);
        }
    }

    #[test]
    fn filter_strategies_agree_on_survivors_and_bits() {
        use crate::enumerate::{IndexMode, MuleConfig};
        use ugraph_core::builder::from_edges;

        // A hub (degree ≥ MIN_DENSE_DEGREE) so the dense tier engages
        // under IndexMode::Always with an unbounded budget; candidate
        // spans of different sizes exercise merge and gallop on the
        // index-free path.
        let mut edges: Vec<(u32, u32, f64)> = (1..=20u32)
            .map(|v| (0, v, 0.35 + 0.03 * v as f64))
            .collect();
        edges.push((21, 22, 0.9));
        let g = from_edges(23, &edges).unwrap();

        let configs = [
            ("dense", IndexMode::Always, usize::MAX),
            ("bitset", IndexMode::Always, 0),
            ("csr", IndexMode::Never, 0),
        ];
        let mut arena = CandidateArena::new();
        for w in 1..23u32 {
            arena.push((w, 1.0));
        }
        type Outcome = (String, Vec<(u32, u64)>, bool);
        for src_len in [1usize, 3, 22] {
            let mut outcomes: Vec<Outcome> = Vec::new();
            for (label, mode, budget) in configs {
                let cfg = MuleConfig {
                    index_mode: mode,
                    dense_index_bytes: budget,
                    ..Default::default()
                };
                let kernel = Kernel::prepare(&g, 0.3, &cfg).unwrap();
                let mut out = CandidateArena::new();
                let mut stats = EnumerationStats::new();
                kernel.filter_candidates_into(
                    0,
                    1.0,
                    arena.span(0..src_len),
                    &mut out,
                    &mut stats,
                    Scan::I,
                );
                let survivors: Vec<(u32, u64)> = (0..out.mark())
                    .map(|i| {
                        let (w, r) = out.get(i);
                        (w, r.to_bits())
                    })
                    .collect();
                let mut s2 = EnumerationStats::new();
                let alive = kernel.any_candidate_survives(
                    0,
                    1.0,
                    [arena.span(0..src_len), arena.span(0..0)],
                    &mut s2,
                );
                // Exactly one strategy family fired per config.
                match label {
                    "dense" => assert!(stats.dense_probes > 0, "{label} len={src_len}"),
                    "bitset" => assert!(
                        stats.dense_probes == 0 && stats.gallop_probes + stats.merge_steps > 0
                    ),
                    _ => assert!(stats.dense_probes == 0),
                }
                outcomes.push((label.to_string(), survivors, alive));
            }
            for pair in outcomes.windows(2) {
                assert_eq!(pair[0].1, pair[1].1, "survivors differ at len={src_len}");
                assert_eq!(pair[0].2, pair[1].2, "existence differs at len={src_len}");
            }
        }
    }
}
