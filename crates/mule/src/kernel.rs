//! Shared search kernel for MULE and LARGE–MULE: graph preparation
//! (α-pruning, optional relabeling, adjacency index) and the
//! GenerateI/GenerateX candidate filter (Algorithms 3 and 4).

use crate::enumerate::{Candidate, IndexMode, MuleConfig};
use ugraph_core::{subgraph, AdjacencyIndex, GraphError, UncertainGraph, VertexId};

/// Prepared search state shared by the enumeration algorithms.
pub(crate) struct Kernel {
    pub g: UncertainGraph,
    pub alpha: f64,
    pub index: Option<AdjacencyIndex>,
    /// When degeneracy relabeling is on: internal id → original id.
    pub back_map: Option<Vec<VertexId>>,
}

impl Kernel {
    /// α-prune (Observation 3), optionally relabel by degeneracy order, and
    /// build the dense adjacency index per the configuration.
    pub fn prepare(
        g: &UncertainGraph,
        alpha: f64,
        config: &MuleConfig,
    ) -> Result<Self, GraphError> {
        let alpha = UncertainGraph::validate_alpha(alpha)?.get();
        let mut pruned = subgraph::prune_below_alpha(g, alpha)?;
        let back_map = if config.degeneracy_order {
            let (relabeled, perm) = subgraph::degeneracy_relabel(&pruned);
            let mut back = vec![0 as VertexId; perm.len()];
            for (old, &new) in perm.iter().enumerate() {
                back[new as usize] = old as VertexId;
            }
            pruned = relabeled;
            Some(back)
        } else {
            None
        };
        let build_index = match config.index_mode {
            IndexMode::Always => true,
            IndexMode::Never => false,
            IndexMode::Auto => AdjacencyIndex::should_build(&pruned, config.max_index_bytes),
        };
        let index = build_index.then(|| AdjacencyIndex::build(&pruned));
        Ok(Kernel {
            g: pruned,
            alpha,
            index,
            back_map,
        })
    }

    /// Wrap an existing, already-pruned graph (used by LARGE–MULE after the
    /// Modani–Dey pass, which must not be α-pruned twice).
    pub fn wrap(g: UncertainGraph, alpha: f64, config: &MuleConfig) -> Self {
        let build_index = match config.index_mode {
            IndexMode::Always => true,
            IndexMode::Never => false,
            IndexMode::Auto => AdjacencyIndex::should_build(&g, config.max_index_bytes),
        };
        let index = build_index.then(|| AdjacencyIndex::build(&g));
        Kernel {
            g,
            alpha,
            index,
            back_map: None,
        }
    }

    /// The shared body of GenerateI / GenerateX: keep candidates adjacent
    /// to `u`, multiply each factor by `p({·, u})`, and drop entries whose
    /// new clique probability `q2 · r'` would fall below α. `scanned` is
    /// incremented by the number of candidate tuples examined.
    #[inline]
    pub fn filter_candidates(
        &self,
        u: VertexId,
        q2: f64,
        cands: &[Candidate],
        scanned: &mut u64,
    ) -> Vec<Candidate> {
        *scanned += cands.len() as u64;
        let mut out = Vec::with_capacity(cands.len());
        match &self.index {
            Some(idx) => {
                let row = idx.row(u);
                for &(w, r) in cands {
                    if row.contains(w as usize) {
                        // Membership is O(1); the probability still comes
                        // from the CSR arrays (O(log deg)).
                        let p = self.g.edge_prob_raw(u, w).expect("index row and CSR agree");
                        let r2 = r * p;
                        if q2 * r2 >= self.alpha {
                            out.push((w, r2));
                        }
                    }
                }
            }
            None => {
                // Both `cands` and Γ(u) are sorted: gallop through the
                // adjacency with a moving left bound, total cost
                // O(|cands| · log deg(u)).
                let nbrs = self.g.neighbors(u);
                let probs = self.g.neighbor_probs(u);
                let mut lo = 0usize;
                for &(w, r) in cands {
                    if lo >= nbrs.len() {
                        break;
                    }
                    match nbrs[lo..].binary_search(&w) {
                        Ok(off) => {
                            let j = lo + off;
                            let r2 = r * probs[j];
                            if q2 * r2 >= self.alpha {
                                out.push((w, r2));
                            }
                            lo = j + 1;
                        }
                        Err(off) => {
                            lo += off;
                        }
                    }
                }
            }
        }
        out
    }
}
