//! Expected-degree core decomposition — a first step into the paper's
//! stated future work ("various dense substructures … k-cores. Finding
//! these dense substructures in the context of uncertain graphs can be an
//! important future direction", Section 6).
//!
//! In an uncertain graph the natural analog of a vertex's degree is its
//! **expected degree** `η(v) = Σ_{u ∈ Γ(v)} p(v,u)` — the mean number of
//! incident edges across possible worlds. The **expected-degree k-core**
//! is the largest vertex set whose induced subgraph gives every member an
//! expected degree ≥ k; peeling minimum-η vertices yields a full *core
//! decomposition* (the fractional analog of the classic algorithm).
//!
//! Besides being a mining primitive in its own right, the decomposition
//! is a useful *pre-filter* for clique mining: every α-clique of size
//! `s` lies inside the expected-degree `(s−1)·α`-core, because each
//! member has `s−1` incident clique edges of probability ≥ α
//! (Observation 3). [`core_filter_for_cliques`] packages that bound.

use ugraph_core::{GraphError, UncertainGraph, VertexId};

/// The expected-degree core decomposition of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreDecomposition {
    /// `core_number[v]` = largest `k` (here a float threshold) such that
    /// `v` survives in the expected-degree `k`-core; computed as the
    /// minimum expected degree at `v`'s peeling step, made monotone.
    core_number: Vec<f64>,
    /// Peeling order (first peeled first).
    order: Vec<VertexId>,
}

impl CoreDecomposition {
    /// Peel vertices by minimum current expected degree, with a lazy
    /// min-heap: `O((n + m) log n)` — the classic bucket trick does not
    /// apply directly to fractional degrees, but a heap of `(η, v)`
    /// entries (stale entries skipped on pop, since η only decreases)
    /// does the job at scale. The pipeline (`mule::prepare`) runs this
    /// on every `--min-size` query, so it must not be the quadratic
    /// scan-min it once was. Tie-breaking matches the scan-min version:
    /// smallest η first, then smallest vertex id.
    pub fn compute(g: &UncertainGraph) -> Self {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// `f64` ordered by `total_cmp` so it can live in a heap key.
        #[derive(PartialEq)]
        struct Eta(f64);
        impl Eq for Eta {}
        impl PartialOrd for Eta {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Eta {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let n = g.num_vertices();
        let mut eta: Vec<f64> = (0..n as VertexId)
            .map(|v| g.neighbor_probs(v).iter().sum())
            .collect();
        let mut removed = vec![false; n];
        let mut core_number = vec![0.0f64; n];
        let mut order = Vec::with_capacity(n);
        let mut heap: BinaryHeap<Reverse<(Eta, VertexId)>> = (0..n as VertexId)
            .map(|v| Reverse((Eta(eta[v as usize]), v)))
            .collect();
        let mut running_max = 0.0f64;
        while let Some(Reverse((Eta(e), v))) = heap.pop() {
            let vi = v as usize;
            // Stale entry: v was already peeled, or its η has since
            // decreased (a fresher entry is still in the heap).
            if removed[vi] || e != eta[vi] {
                continue;
            }
            removed[vi] = true;
            // Monotone core number: the max min-η seen so far (standard
            // peeling argument, fractional version).
            running_max = running_max.max(eta[vi]);
            core_number[vi] = running_max;
            order.push(v);
            for (w, p) in g.neighbors_with_probs(v) {
                let wi = w as usize;
                if !removed[wi] {
                    eta[wi] -= p;
                    heap.push(Reverse((Eta(eta[wi]), w)));
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        CoreDecomposition { core_number, order }
    }

    /// The core number (fractional) of a vertex.
    pub fn core_number(&self, v: VertexId) -> f64 {
        self.core_number[v as usize]
    }

    /// The peeling order.
    pub fn peeling_order(&self) -> &[VertexId] {
        &self.order
    }

    /// The degeneracy analog: the largest core number in the graph.
    pub fn max_core(&self) -> f64 {
        self.core_number.iter().copied().fold(0.0, f64::max)
    }

    /// Vertices of the expected-degree `k`-core (possibly empty), sorted.
    pub fn core(&self, k: f64) -> Vec<VertexId> {
        (0..self.core_number.len() as VertexId)
            .filter(|&v| self.core_number[v as usize] >= k)
            .collect()
    }
}

/// Vertices that can possibly belong to an α-maximal clique with at least
/// `t` vertices: the expected-degree `(t−1)·α`-core of the α-pruned
/// graph. A sound pre-filter (never removes a vertex of such a clique):
/// inside the clique alone, every member has `t−1` incident edges each
/// with `p ≥ α`, so its expected degree within the surviving subgraph is
/// at least `(t−1)·α` at every peeling step.
pub fn core_filter_for_cliques(
    g: &UncertainGraph,
    alpha: f64,
    t: usize,
) -> Result<Vec<VertexId>, GraphError> {
    let alpha = UncertainGraph::validate_alpha(alpha)?.get();
    let pruned = ugraph_core::subgraph::prune_below_alpha(g, alpha)?;
    let decomp = CoreDecomposition::compute(&pruned);
    let threshold = (t.saturating_sub(1)) as f64 * alpha;
    Ok(decomp.core(threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_core::builder::{complete_graph, from_edges};
    use ugraph_core::Prob;

    #[test]
    fn complete_graph_core_numbers_are_uniform() {
        let g = complete_graph(5, Prob::new(0.5).unwrap());
        let d = CoreDecomposition::compute(&g);
        for v in 0..5 {
            assert!((d.core_number(v) - 2.0).abs() < 1e-12, "v={v}");
        }
        assert!((d.max_core() - 2.0).abs() < 1e-12);
        assert_eq!(d.core(2.0), vec![0, 1, 2, 3, 4]);
        assert!(d.core(2.1).is_empty());
    }

    #[test]
    fn pendant_has_lower_core_than_triangle() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let d = CoreDecomposition::compute(&g);
        assert!((d.core_number(3) - 1.0).abs() < 1e-12);
        for v in 0..3 {
            assert!((d.core_number(v) - 2.0).abs() < 1e-12);
        }
        // At α=1 the classic 2-core is the triangle.
        assert_eq!(d.core(2.0), vec![0, 1, 2]);
    }

    #[test]
    fn fractional_probabilities_scale_cores() {
        // Same triangle at p = 0.5: expected degrees are 1.0 inside.
        let g = from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)]).unwrap();
        let d = CoreDecomposition::compute(&g);
        assert!((d.max_core() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn core_numbers_are_monotone_along_peeling() {
        let g = from_edges(
            6,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (2, 3, 0.4),
                (3, 4, 0.3),
                (4, 5, 0.8),
            ],
        )
        .unwrap();
        let d = CoreDecomposition::compute(&g);
        let mut prev = 0.0;
        for &v in d.peeling_order() {
            assert!(d.core_number(v) >= prev);
            prev = d.core_number(v);
        }
        assert_eq!(d.peeling_order().len(), 6);
    }

    #[test]
    fn clique_filter_is_sound() {
        // K4 at p = 0.9 plus a pendant chain: the chain can never be in a
        // 4-vertex 0.5-clique; the K4 must survive the filter.
        let mut edges = vec![(4u32, 5u32, 0.9), (5, 6, 0.9)];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v, 0.9));
            }
        }
        let g = from_edges(7, &edges).unwrap();
        let kept = core_filter_for_cliques(&g, 0.5, 4).unwrap();
        for v in 0..4 {
            assert!(kept.contains(&v), "K4 member {v} filtered out");
        }
        assert!(!kept.contains(&6), "chain tail should be peeled");
        // And indeed every 0.5-maximal clique of size ≥ 4 lives in `kept`.
        for c in crate::enumerate_maximal_cliques(&g, 0.5).unwrap() {
            if c.len() >= 4 {
                assert!(c.iter().all(|v| kept.contains(v)));
            }
        }
    }

    #[test]
    fn filter_on_random_graphs_never_loses_cliques() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..10 {
            let mut b = ugraph_core::GraphBuilder::new(15);
            for u in 0..15u32 {
                for v in (u + 1)..15 {
                    if rng.gen::<f64>() < 0.5 {
                        b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
                    }
                }
            }
            let g = b.build();
            for (alpha, t) in [(0.3, 3), (0.1, 4)] {
                let kept = core_filter_for_cliques(&g, alpha, t).unwrap();
                for c in crate::enumerate_maximal_cliques(&g, alpha).unwrap() {
                    if c.len() >= t {
                        assert!(
                            c.iter().all(|v| kept.contains(v)),
                            "α={alpha}, t={t}: clique {c:?} lost vertices"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = ugraph_core::GraphBuilder::new(0).build();
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.max_core(), 0.0);
        assert!(d.core(0.1).is_empty());
    }
}
