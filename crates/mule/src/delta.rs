//! Incremental maintenance of prepared artifacts under edge and
//! probability updates — the "dynamic uncertain graph" subsystem.
//!
//! A [`GraphDelta`] is an ordered batch of typed mutations (edge
//! insert, edge delete, probability change). [`crate::Prepared::apply`]
//! and [`crate::Base::apply`] fold a batch into a live artifact by
//! re-running the pipeline stages **only on the touched connected
//! components**, merging joined components and splitting disconnected
//! ones through the existing monotone id maps. The result is pinned
//! byte-identical — graphs, id maps, schedule, report, probability
//! bits — to a fresh [`crate::prepare()`] / [`crate::prepare_base`] of
//! the mutated graph (`tests/delta_equivalence.rs`), at a fraction of
//! the cost when churn is localized.
//!
//! # Why component-local re-pipelining is exact
//!
//! Every pipeline stage decomposes exactly per connected component of
//! its input:
//!
//! 1. **α-prune** is edge-local: whether an edge survives depends only
//!    on its own probability.
//! 2. **Expected-degree core peel** is a per-component fixpoint: a
//!    vertex's expected degree involves only its neighbors, so the
//!    peeling cascade never crosses a component boundary.
//! 3. **Modani–Dey shared-neighborhood peel** is likewise a
//!    per-component fixpoint: common-neighbor counts and degrees are
//!    component-internal.
//! 4. **Component decomposition** refines components of its input.
//!
//! A delta batch's structural effect is confined to the components
//! containing an op endpoint (plus any components an inserted edge
//! joins — whose endpoints are, again, op endpoints). Therefore
//! re-running stages on the union of touched components, with every
//! untouched component's bytes carried over verbatim (`Arc`-shared,
//! exactly PR 8's refine sharing argument: an untouched component's
//! compact graph equals the fresh `induced_subgraph` of the mutated
//! pruned graph because the id maps are monotone), reproduces the fresh
//! global result. The global emission schedule is rebuilt through the
//! same `build_schedule` helper the fresh path uses, so the
//! merged component order cannot drift.
//!
//! **Report exactness** needs one precondition on sharded instances:
//! the artifact's own report must show zero stage-2/3 losses and zero
//! dropped-small components. Then (a) untouched components provably
//! lose nothing in a fresh run on the mutated graph (their stage inputs
//! are unchanged and they lost nothing before), so every loss counter
//! of the fresh run is reproduced by the local re-run alone, and (b)
//! kept components plus singletons cover all `n` vertices, so every op
//! endpoint is attributable. Whole-graph instances (single component
//! with an identity map — the identity fast path and the shard-off
//! configuration) need only the stage-2/3 half of that precondition:
//! their kernel graph *is* the α-pruned graph, so the apply degenerates
//! to re-running the pipeline tail on the patched graph (sharing the
//! code path with [`prepare`](crate::prepare()) itself). When the
//! precondition fails the artifact simply does not retain enough of the
//! graph to reconstruct the mutated state, and `apply` returns a typed
//! [`MuleError::Delta`] telling the caller to re-prepare (or to
//! maintain a [`crate::query::Base`] — bases store everything at the
//! floor and need **no** precondition). The precondition holds
//! automatically whenever `min_size ≤ 1`.
//!
//! # Representability: what ops may reference
//!
//! An artifact only knows the edges visible at its threshold (α for a
//! prepared instance, the floor for a base). The batch semantics are
//! sequential, against that visible state:
//!
//! - **insert** of an edge that is already visible (or already inserted
//!   earlier in the batch) is a typed error;
//! - **delete** / **set-prob** of an edge that is not visible (and not
//!   inserted earlier in the batch) is a typed error — the artifact
//!   cannot distinguish "absent" from "pruned below the threshold";
//! - an **insert below the threshold** is legal: the edge counts toward
//!   the mutated graph's edge total (the report's `original_edges`) but
//!   is not materialized, exactly as a fresh prepare would prune it.
//!   Within the same batch it stays addressable (it can be re-weighted
//!   or deleted).
//!
//! Validation and all fallible construction complete **before** any
//! mutation commits: a failed `apply` leaves the artifact unchanged.
//! Vertex ids must be in range — the vertex set is fixed at prepare
//! time (growing `n` is future work).
//!
//! # Persistence and serving
//!
//! Deltas serialize to a compact binary section format
//! ([`GraphDelta::to_bytes`]) appended to UGQ1 catalogs as `delta.{i}`
//! sections — see [`crate::catalog::append_delta`],
//! [`crate::catalog::compact`], and the layout table in
//! `ugraph_io::catalog`. [`crate::Query::open`] /
//! [`crate::Query::open_base`] replay pending deltas on reopen, and
//! `mule serve` exposes mutation as an `update` wire op.
//!
//! ```
//! use mule::{GraphDelta, Query};
//! use ugraph_core::builder::from_edges;
//!
//! # fn main() -> Result<(), mule::MuleError> {
//! let g = from_edges(5, &[(0, 1, 0.9), (1, 2, 0.8), (3, 4, 0.7)])?;
//! let mut session = Query::new(&g).alpha(0.5).prepare()?;
//!
//! // Bridge the two components and re-weight an edge, in one batch.
//! let delta = GraphDelta::new().insert(2, 3, 0.6).set_prob(1, 2, 0.95);
//! session.apply(&delta)?;
//! assert_eq!(session.count()?, 4); // 0-1, 1-2, 2-3, 3-4
//! # Ok(())
//! # }
//! ```

use crate::kcore::CoreDecomposition;
use crate::kernel::{DepthArenas, Kernel};
use crate::prepare::{
    build_schedule, finish_pipeline, PrepareReport, PreparedComponent, PreparedInstance,
};
use crate::prepare::{BaseComponent, PreparedBase};
use crate::pruning::shared_neighborhood_peel;
use crate::query::MuleError;
use crate::stats::EnumerationStats;
use std::collections::HashMap;
use ugraph_core::builder::from_edges;
use ugraph_core::{subgraph, Components, UncertainGraph, VertexId};

/// One typed mutation of an uncertain graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp {
    /// Add edge `{u, v}` with probability `p` (must not be visible at
    /// the artifact's threshold; `p` may be below the threshold).
    Insert {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// Existence probability in `(0, 1]`.
        p: f64,
    },
    /// Remove edge `{u, v}` (must be visible, or inserted earlier in
    /// the same batch).
    Delete {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Change the probability of edge `{u, v}` to `p` (the edge must be
    /// visible, or inserted earlier in the same batch).
    SetProb {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// New existence probability in `(0, 1]`.
        p: f64,
    },
}

/// An ordered batch of graph mutations with sequential semantics — the
/// unit of [`crate::Prepared::apply`] / [`crate::Base::apply`] and of
/// the catalog `delta.{i}` sections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    ops: Vec<DeltaOp>,
}

/// Serialized op tags (see the layout table in `ugraph_io::catalog`).
const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_SET_PROB: u8 = 3;
/// Serialized bytes per op: tag + two u32 endpoints + u64 prob bits.
const OP_BYTES: usize = 1 + 4 + 4 + 8;

impl GraphDelta {
    /// An empty batch (applying it is a no-op).
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Build from an explicit op list.
    pub fn from_ops(ops: Vec<DeltaOp>) -> Self {
        GraphDelta { ops }
    }

    /// Append an edge insertion (builder style).
    pub fn insert(mut self, u: VertexId, v: VertexId, p: f64) -> Self {
        self.ops.push(DeltaOp::Insert { u, v, p });
        self
    }

    /// Append an edge deletion (builder style).
    pub fn delete(mut self, u: VertexId, v: VertexId) -> Self {
        self.ops.push(DeltaOp::Delete { u, v });
        self
    }

    /// Append a probability change (builder style).
    pub fn set_prob(mut self, u: VertexId, v: VertexId, p: f64) -> Self {
        self.ops.push(DeltaOp::SetProb { u, v, p });
        self
    }

    /// Append one op in place.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serialize to the catalog `delta.{i}` section payload: op count
    /// as `u64` LE, then 17 bytes per op (tag `u8`, endpoints `u32` LE,
    /// probability as `f64` bits in `u64` LE — zero for deletes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + OP_BYTES * self.ops.len());
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            let (tag, u, v, p) = match *op {
                DeltaOp::Insert { u, v, p } => (TAG_INSERT, u, v, p),
                DeltaOp::Delete { u, v } => (TAG_DELETE, u, v, 0.0),
                DeltaOp::SetProb { u, v, p } => (TAG_SET_PROB, u, v, p),
            };
            out.push(tag);
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        out
    }

    /// Decode a [`Self::to_bytes`] payload. Every structural defect —
    /// short buffer, trailing garbage, unknown tag, self-loop, non-zero
    /// probability bits on a delete — is a typed [`MuleError::Delta`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, MuleError> {
        let err = |msg: String| MuleError::Delta(msg);
        if data.len() < 8 {
            return Err(err("delta payload shorter than its count field".into()));
        }
        let count = u64::from_le_bytes(data[..8].try_into().unwrap());
        let count: usize = count
            .try_into()
            .ok()
            .filter(|c| data.len() == 8 + OP_BYTES * c)
            .ok_or_else(|| {
                err(format!(
                    "delta payload length {} does not match op count {}",
                    data.len(),
                    count
                ))
            })?;
        let mut ops = Vec::with_capacity(count);
        for i in 0..count {
            let rec = &data[8 + OP_BYTES * i..8 + OP_BYTES * (i + 1)];
            let u = u32::from_le_bytes(rec[1..5].try_into().unwrap());
            let v = u32::from_le_bytes(rec[5..9].try_into().unwrap());
            let bits = u64::from_le_bytes(rec[9..17].try_into().unwrap());
            let p = f64::from_bits(bits);
            let op = match rec[0] {
                TAG_INSERT => DeltaOp::Insert { u, v, p },
                TAG_DELETE if bits == 0 => DeltaOp::Delete { u, v },
                TAG_DELETE => {
                    return Err(err(format!("op {i}: delete carries non-zero prob bits")))
                }
                TAG_SET_PROB => DeltaOp::SetProb { u, v, p },
                tag => return Err(err(format!("op {i}: unknown tag {tag}"))),
            };
            ops.push(op);
        }
        Ok(GraphDelta { ops })
    }

    /// Parse the CLI edge-file format: one op per line — `+ u v p`
    /// (insert), `- u v` (delete), `= u v p` (re-weight) — with blank
    /// lines and `#` comments ignored. Errors carry 1-based line
    /// numbers.
    pub fn parse_text(text: &str) -> Result<Self, MuleError> {
        let mut ops = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let verb = fields.next().unwrap();
            let mut arg = |what: &str| -> Result<&str, MuleError> {
                fields
                    .next()
                    .ok_or_else(|| MuleError::Delta(format!("line {}: missing {what}", ln + 1)))
            };
            let parse_v = |s: &str| -> Result<VertexId, MuleError> {
                s.parse()
                    .map_err(|_| MuleError::Delta(format!("line {}: bad vertex id {s:?}", ln + 1)))
            };
            let parse_p = |s: &str| -> Result<f64, MuleError> {
                s.parse().map_err(|_| {
                    MuleError::Delta(format!("line {}: bad probability {s:?}", ln + 1))
                })
            };
            let op = match verb {
                "+" => {
                    let u = parse_v(arg("source vertex")?)?;
                    let v = parse_v(arg("target vertex")?)?;
                    let p = parse_p(arg("probability")?)?;
                    DeltaOp::Insert { u, v, p }
                }
                "-" => {
                    let u = parse_v(arg("source vertex")?)?;
                    let v = parse_v(arg("target vertex")?)?;
                    DeltaOp::Delete { u, v }
                }
                "=" => {
                    let u = parse_v(arg("source vertex")?)?;
                    let v = parse_v(arg("target vertex")?)?;
                    let p = parse_p(arg("probability")?)?;
                    DeltaOp::SetProb { u, v, p }
                }
                other => {
                    return Err(MuleError::Delta(format!(
                        "line {}: unknown op {other:?} (expected '+', '-', or '=')",
                        ln + 1
                    )))
                }
            };
            if fields.next().is_some() {
                return Err(MuleError::Delta(format!(
                    "line {}: trailing fields after op",
                    ln + 1
                )));
            }
            ops.push(op);
        }
        Ok(GraphDelta { ops })
    }
}

/// The finalized effect of a batch: per normalized edge key, the final
/// probability (`Some`) or a delete tombstone (`None`), plus the net
/// change to the mutated graph's total edge count.
struct Ledger {
    known: HashMap<(VertexId, VertexId), Option<f64>>,
    edge_delta: isize,
}

/// Replay the batch sequentially against `visible` (the artifact's
/// edge-probability view at its threshold), validating every op. Pure:
/// touches no artifact state, so callers can abort with the artifact
/// unchanged.
fn run_ledger<F: Fn(VertexId, VertexId) -> Option<f64>>(
    delta: &GraphDelta,
    n: usize,
    threshold_desc: &str,
    visible: F,
) -> Result<Ledger, MuleError> {
    let mut ledger = Ledger {
        known: HashMap::new(),
        edge_delta: 0,
    };
    for (i, op) in delta.ops.iter().enumerate() {
        let (u, v) = match *op {
            DeltaOp::Insert { u, v, .. }
            | DeltaOp::Delete { u, v }
            | DeltaOp::SetProb { u, v, .. } => (u, v),
        };
        if u == v {
            return Err(MuleError::Delta(format!("op {i}: self-loop on vertex {u}")));
        }
        for x in [u, v] {
            if x as usize >= n {
                return Err(MuleError::Delta(format!(
                    "op {i}: vertex {x} out of range (graph has {n} vertices)"
                )));
            }
        }
        let key = (u.min(v), u.max(v));
        let current = match ledger.known.get(&key) {
            Some(&state) => state,
            None => visible(key.0, key.1),
        };
        match *op {
            DeltaOp::Insert { p, .. } => {
                validate_prob(i, p)?;
                if current.is_some() {
                    return Err(MuleError::Delta(format!(
                        "op {i}: insert of existing edge ({u}, {v})"
                    )));
                }
                ledger.known.insert(key, Some(p));
                ledger.edge_delta += 1;
            }
            DeltaOp::Delete { .. } => {
                if current.is_none() {
                    return Err(MuleError::Delta(format!(
                        "op {i}: delete of edge ({u}, {v}) not visible at {threshold_desc} \
                         (absent, or pruned below the artifact's threshold)"
                    )));
                }
                ledger.known.insert(key, None);
                ledger.edge_delta -= 1;
            }
            DeltaOp::SetProb { p, .. } => {
                validate_prob(i, p)?;
                if current.is_none() {
                    return Err(MuleError::Delta(format!(
                        "op {i}: set-prob of edge ({u}, {v}) not visible at {threshold_desc} \
                         (absent, or pruned below the artifact's threshold)"
                    )));
                }
                ledger.known.insert(key, Some(p));
            }
        }
    }
    Ok(ledger)
}

fn validate_prob(i: usize, p: f64) -> Result<(), MuleError> {
    if p.is_finite() && p > 0.0 && p <= 1.0 {
        Ok(())
    } else {
        Err(MuleError::Delta(format!(
            "op {i}: probability {p} outside (0, 1]"
        )))
    }
}

/// Per-vertex location in a sharded artifact: owning component (or
/// `u32::MAX`) and the local id within it.
fn locate(components: &[(&[VertexId], usize)], n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut comp_of = vec![u32::MAX; n];
    let mut local_id = vec![0u32; n];
    for (j, (map, _)) in components.iter().enumerate() {
        for (l, &orig) in map.iter().enumerate() {
            comp_of[orig as usize] = j as u32;
            local_id[orig as usize] = l as u32;
        }
    }
    (comp_of, local_id)
}

/// One slot of the merged post-apply component order.
enum Entry {
    /// Untouched artifact component `j` — bytes carried over verbatim.
    Keep(usize),
    /// Connected component `li` of the locally re-pipelined graph.
    Fresh(usize),
    /// An untouched singleton / isolated vertex.
    Lone,
}

/// Fold `delta` into a prepared instance. See the module docs for the
/// soundness argument and the precondition; byte-identity to a fresh
/// prepare of the mutated graph is pinned by `tests/delta_equivalence.rs`.
pub(crate) fn apply_instance(
    inst: &mut PreparedInstance,
    delta: &GraphDelta,
) -> Result<(), MuleError> {
    if delta.is_empty() {
        return Ok(());
    }
    let n = inst.original_n;
    let whole_graph = inst.components.len() == 1 && inst.components[0].to_original.len() == n;
    let r = &inst.report;
    let stage_losses = r.core_filtered_vertices
        + r.core_filtered_edges
        + r.shared_pruned_edges
        + r.shared_isolated_vertices;
    if stage_losses > 0 || (!whole_graph && r.components_dropped_small > 0) {
        return Err(MuleError::Delta(format!(
            "instance does not retain the full alpha-pruned graph (core filter / peel / \
             small-component drops removed material: {} core vertices, {} core edges, {} peeled \
             edges, {} peel-isolated vertices, {} dropped components) — maintain a Base (which \
             keeps everything at its floor) or re-prepare from the mutated graph",
            r.core_filtered_vertices,
            r.core_filtered_edges,
            r.shared_pruned_edges,
            r.shared_isolated_vertices,
            r.components_dropped_small,
        )));
    }
    let alpha = inst.alpha;
    let t = inst.min_size;
    let mut report = PrepareReport {
        original_vertices: n,
        ..Default::default()
    };

    if whole_graph {
        // Whole-graph kernel (identity fast path or shard-off): the
        // kernel graph is exactly the α-pruned graph, so patch it and
        // re-run the pipeline tail — the same code path `prepare` runs,
        // byte-identical by construction.
        let g0 = &*inst.components[0].kernel.g;
        let ledger = run_ledger(delta, n, &format!("alpha = {alpha}"), |u, v| {
            g0.edge_prob_raw(u, v)
        })?;
        let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(g0.num_edges());
        for u in 0..n as VertexId {
            for (v, p) in g0.neighbors_with_probs(u) {
                if u < v && !ledger.known.contains_key(&(u, v)) {
                    edges.push((u, v, p));
                }
            }
        }
        for (&(u, v), &state) in &ledger.known {
            if let Some(p) = state {
                if p >= alpha {
                    edges.push((u, v, p));
                }
            }
        }
        report.original_edges = checked_edge_total(inst.report.original_edges, ledger.edge_delta)?;
        let work = from_edges(n, &edges)
            .map_err(MuleError::Graph)?
            .with_name(inst.name.clone());
        report.alpha_pruned_edges = report.original_edges - work.num_edges();
        let rebuilt =
            finish_pipeline(work, alpha, &inst.config, report).map_err(MuleError::Graph)?;
        *inst = rebuilt;
        return Ok(());
    }

    // Sharded instance: locate every vertex, replay the ledger against
    // the visible (α-pruned) edges, and re-pipeline only the touched
    // components.
    let maps: Vec<(&[VertexId], usize)> = inst
        .components
        .iter()
        .map(|pc| (pc.to_original.as_slice(), pc.kernel.g.num_edges()))
        .collect();
    let (comp_of, local_id) = locate(&maps, n);
    let ledger = {
        let components = &inst.components;
        let comp_of = &comp_of;
        let local_id = &local_id;
        run_ledger(delta, n, &format!("alpha = {alpha}"), move |u, v| {
            let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
            if cu == u32::MAX || cu != cv {
                return None;
            }
            components[cu as usize]
                .kernel
                .g
                .edge_prob_raw(local_id[u as usize], local_id[v as usize])
        })?
    };

    // Touched material: every op endpoint's component or singleton.
    let mut comp_touched = vec![false; inst.components.len()];
    let mut vertex_touched = vec![false; n];
    for &(u, v) in ledger.known.keys() {
        for x in [u, v] {
            vertex_touched[x as usize] = true;
            let c = comp_of[x as usize];
            if c != u32::MAX {
                comp_touched[c as usize] = true;
            }
        }
    }

    // The touched region's α-pruned graph, over original ids (untouched
    // vertices are isolated here and contribute empty rows).
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for (j, pc) in inst.components.iter().enumerate() {
        if !comp_touched[j] {
            continue;
        }
        let g = &*pc.kernel.g;
        for lu in 0..g.num_vertices() as VertexId {
            let u = pc.to_original[lu as usize];
            for (lv, p) in g.neighbors_with_probs(lu) {
                let v = pc.to_original[lv as usize];
                if u < v && !ledger.known.contains_key(&(u, v)) {
                    edges.push((u, v, p));
                }
            }
        }
    }
    for (&(u, v), &state) in &ledger.known {
        if let Some(p) = state {
            if p >= alpha {
                edges.push((u, v, p));
            }
        }
    }
    let mut work = from_edges(n, &edges).map_err(MuleError::Graph)?;
    let untouched_surviving: usize = inst
        .components
        .iter()
        .enumerate()
        .filter(|(j, _)| !comp_touched[*j])
        .map(|(_, pc)| pc.kernel.g.num_edges())
        .sum();
    report.original_edges = checked_edge_total(inst.report.original_edges, ledger.edge_delta)?;
    report.alpha_pruned_edges = report.original_edges - (untouched_surviving + work.num_edges());

    // Stages 2 and 3, locally. Untouched vertices have degree zero in
    // `work`, so both stages ignore them — and by the precondition the
    // fresh global run removes nothing from untouched components, so
    // the local loss counters *are* the fresh global ones.
    if t >= 2 && inst.config.core_filter && work.num_edges() > 0 {
        let decomp = CoreDecomposition::compute(&work);
        let threshold = (t - 1) as f64 * alpha;
        let mut in_core = vec![false; n];
        for v in decomp.core(threshold) {
            in_core[v as usize] = true;
        }
        let dropped = (0..n)
            .filter(|&v| !in_core[v] && work.degree(v as VertexId) > 0)
            .count();
        if dropped > 0 {
            let before = work.num_edges();
            work = subgraph::restrict_to_vertices(&work, &in_core);
            report.core_filtered_vertices = dropped;
            report.core_filtered_edges = before - work.num_edges();
        }
    }
    if t >= 3 && inst.config.shared_neighborhood && work.num_edges() > 0 {
        let (peeled, pr) = shared_neighborhood_peel(&work, t).map_err(MuleError::Graph)?;
        report.shared_pruned_edges = pr.shared_pruned_edges;
        report.shared_isolated_vertices = pr.degree_pruned_vertices;
        work = peeled;
    }

    // Local re-split, then merge with the untouched material in global
    // (smallest-original-id) component order.
    let lists = Components::compute(&work).vertex_lists();
    let mut entries: Vec<(VertexId, Entry)> = Vec::new();
    for (j, pc) in inst.components.iter().enumerate() {
        if !comp_touched[j] {
            entries.push((pc.to_original[0], Entry::Keep(j)));
        }
    }
    for &s in &inst.singletons {
        if !vertex_touched[s as usize] {
            entries.push((s, Entry::Lone));
        }
    }
    // "In the touched region" = an op endpoint, or any vertex of a
    // touched component (stages 2/3 can isolate those without their
    // being op endpoints themselves).
    let in_region = |v: VertexId| {
        vertex_touched[v as usize] || {
            let c = comp_of[v as usize];
            c != u32::MAX && comp_touched[c as usize]
        }
    };
    let mut fresh_subs: Vec<Option<(UncertainGraph, Vec<VertexId>)>> = Vec::new();
    for (li, list) in lists.iter().enumerate() {
        let relevant = list.len() >= 2 || in_region(list[0]);
        if !relevant {
            fresh_subs.push(None); // an untouched vertex, isolated in `work`
            continue;
        }
        entries.push((list[0], Entry::Fresh(li)));
        fresh_subs.push(if list.len() >= 2 {
            Some(subgraph::induced_subgraph(&work, list).map_err(MuleError::Graph)?)
        } else {
            None
        });
    }
    entries.sort_unstable_by_key(|&(first, _)| first);
    report.components_total = entries.len();

    let min_keep = t.max(2);
    let entry_lens: Vec<usize> = entries
        .iter()
        .map(|(_, e)| match *e {
            Entry::Keep(j) => inst.components[j].to_original.len(),
            Entry::Fresh(li) => lists[li].len(),
            Entry::Lone => 1,
        })
        .collect();
    let qualifying = entry_lens.iter().filter(|&&len| len >= min_keep).count();

    let mut components: Vec<PreparedComponent> = Vec::new();
    let mut singletons: Vec<VertexId> = Vec::new();
    if qualifying == 1 {
        // The mutated graph collapsed to the identity fast path: hand
        // the *whole* merged pruned graph to one kernel, exactly as a
        // fresh prepare would, with the fresh path's accounting.
        for ((_, e), &len) in entries.iter().zip(&entry_lens) {
            if len >= min_keep {
                report.components_kept = 1;
                report.largest_component = len;
                report.final_edges = match *e {
                    Entry::Keep(j) => inst.components[j].kernel.g.num_edges(),
                    Entry::Fresh(li) => {
                        let arcs: usize = lists[li].iter().map(|&v| work.degree(v)).sum();
                        arcs / 2
                    }
                    Entry::Lone => unreachable!("min_keep >= 2"),
                };
                report.final_vertices += len;
            } else if len == 1 && t <= 1 {
                report.singleton_vertices += 1;
                report.final_vertices += 1;
            } else {
                report.components_dropped_small += 1;
            }
        }
        let merged = merged_graph(inst, &comp_of, &local_id, &comp_touched, &work);
        let identity: Vec<VertexId> = (0..n as VertexId).collect();
        components.push(PreparedComponent {
            kernel: Kernel::wrap(merged, alpha, &inst.config.mule),
            to_original: identity,
        });
    } else {
        let mut old: Vec<Option<PreparedComponent>> = inst.components.drain(..).map(Some).collect();
        for ((first, e), &len) in entries.iter().zip(&entry_lens) {
            if len < min_keep {
                if len == 1 && t <= 1 {
                    report.singleton_vertices += 1;
                    singletons.push(*first);
                } else {
                    report.components_dropped_small += 1;
                }
                continue;
            }
            report.components_kept += 1;
            report.largest_component = report.largest_component.max(len);
            report.final_vertices += len;
            match *e {
                Entry::Keep(j) => {
                    let pc = old[j].take().expect("each untouched component moves once");
                    report.final_edges += pc.kernel.g.num_edges();
                    components.push(pc);
                }
                Entry::Fresh(li) => {
                    let (sub, map) = fresh_subs[li]
                        .take()
                        .expect("every kept fresh list was induced above");
                    report.final_edges += sub.num_edges();
                    components.push(PreparedComponent {
                        kernel: Kernel::wrap(sub, alpha, &inst.config.mule),
                        to_original: map,
                    });
                }
                Entry::Lone => unreachable!("min_keep >= 2"),
            }
        }
        report.final_vertices += singletons.len();
        report.largest_component = report
            .largest_component
            .max(usize::from(!singletons.is_empty()));
    }

    let schedule = build_schedule(n, &singletons, &components);
    inst.components = components;
    inst.singletons = singletons;
    inst.schedule = schedule;
    inst.report = report;
    inst.stats = EnumerationStats::new();
    inst.arenas = DepthArenas::new();
    inst.clique_buf = Vec::new();
    inst.remap_scratch = Vec::new();
    Ok(())
}

/// Merge untouched component rows and the locally re-pipelined rows
/// into one global n-vertex CSR — the graph the fresh pipeline's
/// identity fast path would hold (mirrors `PreparedBase::merged_work`).
fn merged_graph(
    inst: &PreparedInstance,
    comp_of: &[u32],
    local_id: &[u32],
    comp_touched: &[bool],
    work: &UncertainGraph,
) -> UncertainGraph {
    let n = inst.original_n;
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut neighbors = Vec::new();
    let mut probs = Vec::new();
    for v in 0..n {
        let j = comp_of[v];
        if j != u32::MAX && !comp_touched[j as usize] {
            let pc = &inst.components[j as usize];
            for (w, p) in pc.kernel.g.neighbors_with_probs(local_id[v]) {
                neighbors.push(pc.to_original[w as usize]);
                probs.push(p);
            }
        } else {
            for (w, p) in work.neighbors_with_probs(v as VertexId) {
                neighbors.push(w);
                probs.push(p);
            }
        }
        offsets.push(neighbors.len());
    }
    UncertainGraph::try_from_csr(offsets, neighbors, probs, inst.name.clone())
        .expect("merged per-component rows form a valid CSR")
}

/// Fold `delta` into a base artifact. Bases store every edge at their
/// floor, so there is no precondition; untouched components and
/// isolated vertices carry over verbatim. Byte-identity to a fresh
/// [`crate::prepare_base`] of the mutated graph is pinned by
/// `tests/delta_equivalence.rs`.
pub(crate) fn apply_base(base: &mut PreparedBase, delta: &GraphDelta) -> Result<(), MuleError> {
    if delta.is_empty() {
        return Ok(());
    }
    let n = base.original_n;
    let floor = base.floor;
    let maps: Vec<(&[VertexId], usize)> = base
        .components
        .iter()
        .map(|bc| (bc.to_original.as_slice(), bc.kernel.g.num_edges()))
        .collect();
    let (comp_of, local_id) = locate(&maps, n);
    let ledger = {
        let components = &base.components;
        let comp_of = &comp_of;
        let local_id = &local_id;
        run_ledger(delta, n, &format!("floor = {floor}"), move |u, v| {
            let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
            if cu == u32::MAX || cu != cv {
                return None;
            }
            components[cu as usize]
                .kernel
                .g
                .edge_prob_raw(local_id[u as usize], local_id[v as usize])
        })?
    };

    let mut comp_touched = vec![false; base.components.len()];
    let mut vertex_touched = vec![false; n];
    for &(u, v) in ledger.known.keys() {
        for x in [u, v] {
            vertex_touched[x as usize] = true;
            let c = comp_of[x as usize];
            if c != u32::MAX {
                comp_touched[c as usize] = true;
            }
        }
    }

    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for (j, bc) in base.components.iter().enumerate() {
        if !comp_touched[j] {
            continue;
        }
        let g = &*bc.kernel.g;
        for lu in 0..g.num_vertices() as VertexId {
            let u = bc.to_original[lu as usize];
            for (lv, p) in g.neighbors_with_probs(lu) {
                let v = bc.to_original[lv as usize];
                if u < v && !ledger.known.contains_key(&(u, v)) {
                    edges.push((u, v, p));
                }
            }
        }
    }
    for (&(u, v), &state) in &ledger.known {
        if let Some(p) = state {
            if p >= floor {
                edges.push((u, v, p));
            }
        }
    }
    let work = from_edges(n, &edges).map_err(MuleError::Graph)?;
    let new_total = checked_edge_total(base.original_edges, ledger.edge_delta)?;

    let lists = Components::compute(&work).vertex_lists();
    let mut entries: Vec<(VertexId, Entry)> = Vec::new();
    for (j, bc) in base.components.iter().enumerate() {
        if !comp_touched[j] {
            entries.push((bc.to_original[0], Entry::Keep(j)));
        }
    }
    let mut isolated: Vec<VertexId> = base
        .isolated
        .iter()
        .copied()
        .filter(|&v| !vertex_touched[v as usize])
        .collect();
    let mut fresh_subs: Vec<Option<(UncertainGraph, Vec<VertexId>)>> = Vec::new();
    for list in &lists {
        if list.len() >= 2 {
            entries.push((list[0], Entry::Fresh(fresh_subs.len())));
            fresh_subs.push(Some(
                subgraph::induced_subgraph(&work, list).map_err(MuleError::Graph)?,
            ));
        } else if vertex_touched[list[0] as usize] {
            isolated.push(list[0]);
        }
    }
    entries.sort_unstable_by_key(|&(first, _)| first);
    isolated.sort_unstable();

    let mut old: Vec<Option<BaseComponent>> = base.components.drain(..).map(Some).collect();
    let mut components: Vec<BaseComponent> = Vec::with_capacity(entries.len());
    for (_, e) in &entries {
        match *e {
            Entry::Keep(j) => {
                components.push(old[j].take().expect("each untouched component moves once"));
            }
            Entry::Fresh(li) => {
                let (sub, map) = fresh_subs[li]
                    .take()
                    .expect("every size->=2 list was induced above");
                let min_prob = sub.min_edge_prob().expect("a size->=2 component has edges");
                components.push(BaseComponent {
                    kernel: Kernel::wrap(sub, floor, &base.config.mule),
                    to_original: map,
                    min_prob,
                });
            }
            Entry::Lone => unreachable!("bases file isolates separately"),
        }
    }
    base.components = components;
    base.isolated = isolated;
    base.original_edges = new_total;
    Ok(())
}

/// `total + delta` with underflow surfaced as a typed error (cannot
/// actually trigger — deletes are validated against visible edges — but
/// the arithmetic stays checked rather than panicking).
fn checked_edge_total(total: usize, delta: isize) -> Result<usize, MuleError> {
    let new = total as i128 + delta as i128;
    usize::try_from(new).map_err(|_| {
        MuleError::Delta(format!(
            "edge-count accounting underflow: {total} {delta:+}"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g5() -> UncertainGraph {
        from_edges(5, &[(0, 1, 0.9), (1, 2, 0.8), (3, 4, 0.7)]).unwrap()
    }

    #[test]
    fn codec_round_trip() {
        let d = GraphDelta::new()
            .insert(0, 3, 0.5)
            .delete(1, 2)
            .set_prob(3, 4, 0.25);
        let bytes = d.to_bytes();
        assert_eq!(bytes.len(), 8 + 17 * 3);
        assert_eq!(GraphDelta::from_bytes(&bytes).unwrap(), d);
    }

    #[test]
    fn codec_rejects_structural_damage() {
        let d = GraphDelta::new().insert(0, 3, 0.5);
        let bytes = d.to_bytes();
        for bad in [
            &bytes[..7],               // short count field
            &bytes[..bytes.len() - 1], // truncated op
        ] {
            assert!(GraphDelta::from_bytes(bad).is_err());
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(GraphDelta::from_bytes(&long).is_err(), "trailing garbage");
        let mut bad_tag = bytes.clone();
        bad_tag[8] = 9;
        assert!(GraphDelta::from_bytes(&bad_tag).is_err());
        let mut dirty_delete = GraphDelta::new().delete(0, 1).to_bytes();
        dirty_delete[9 + 8] = 1; // non-zero prob bits on a delete
        assert!(GraphDelta::from_bytes(&dirty_delete).is_err());
    }

    #[test]
    fn parse_text_round_trip_and_errors() {
        let d = GraphDelta::parse_text("# churn batch\n+ 0 3 0.5\n\n- 1 2\n= 3 4 0.25\n").unwrap();
        assert_eq!(
            d,
            GraphDelta::new()
                .insert(0, 3, 0.5)
                .delete(1, 2)
                .set_prob(3, 4, 0.25)
        );
        for bad in [
            "? 0 1 0.5",
            "+ 0 1",
            "+ 0 x 0.5",
            "- 0 1 0.5 extra",
            "+ 0 1 blue",
        ] {
            let err = GraphDelta::parse_text(bad).unwrap_err();
            assert!(err.to_string().contains("line 1"), "{err}");
        }
    }

    #[test]
    fn ledger_enforces_visibility_and_sequencing() {
        let g = g5();
        let vis = |u: VertexId, v: VertexId| g.edge_prob_raw(u, v);
        let n = 5;
        // Insert of an existing edge.
        assert!(run_ledger(&GraphDelta::new().insert(0, 1, 0.5), n, "t", vis).is_err());
        // Delete / set of an absent edge.
        assert!(run_ledger(&GraphDelta::new().delete(0, 4), n, "t", vis).is_err());
        assert!(run_ledger(&GraphDelta::new().set_prob(0, 4, 0.5), n, "t", vis).is_err());
        // Self-loop and out-of-range.
        assert!(run_ledger(&GraphDelta::new().delete(1, 1), n, "t", vis).is_err());
        assert!(run_ledger(&GraphDelta::new().insert(0, 9, 0.5), n, "t", vis).is_err());
        // Bad probabilities.
        for p in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(run_ledger(&GraphDelta::new().insert(0, 3, p), n, "t", vis).is_err());
        }
        // Sequential semantics: insert → set → delete → re-insert.
        let l = run_ledger(
            &GraphDelta::new()
                .insert(0, 3, 0.5)
                .set_prob(0, 3, 0.6)
                .delete(0, 3)
                .insert(3, 0, 0.7),
            n,
            "t",
            vis,
        )
        .unwrap();
        assert_eq!(l.edge_delta, 1);
        assert_eq!(l.known[&(0, 3)], Some(0.7));
        // Normalized endpoints: (4, 3) addresses edge (3, 4).
        let l = run_ledger(&GraphDelta::new().delete(4, 3), n, "t", vis).unwrap();
        assert_eq!(l.edge_delta, -1);
        assert_eq!(l.known[&(3, 4)], None);
    }
}
