//! The unified session API: one [`Query`] builder in front of every
//! workload this crate serves, and a reusable [`Prepared`] session that
//! runs the preprocessing pipeline once and answers queries many times.
//!
//! # Why a session
//!
//! Historically each capability grew its own free function
//! (`enumerate_maximal_cliques`, `count_…`, `enumerate_large_…`,
//! `par_enumerate_…`, three top-k variants, two NOIP wrappers, …), each
//! re-running prune → core-filter → shard per call and each choosing
//! sequential/parallel and MULE/LARGE-MULE/NOIP by *which function you
//! found* rather than by configuration. [`Query`] folds all of those
//! knobs into one builder; [`Query::prepare`] runs the pipeline
//! ([`mod@crate::prepare`]) exactly once; and the resulting [`Prepared`]
//! session serves [`collect`](Prepared::collect),
//! [`count`](Prepared::count), [`stream`](Prepared::stream),
//! [`top_k`](Prepared::top_k) and the pull-based
//! [`iter`](Prepared::iter) over the same prepared instance —
//! repeated-query workloads pay preprocessing once.
//!
//! The legacy free functions remain as thin delegates over this module
//! (byte-identical output, pinned by `tests/api_equivalence.rs`), and
//! the direct enumerator structs ([`crate::Mule`], [`crate::LargeMule`],
//! [`crate::DfsNoip`]) remain the pipeline-off reference paths.
//!
//! # Session lifecycle
//!
//! ```
//! use mule::{Query, MuleError};
//! use ugraph_core::builder::from_edges;
//!
//! # fn main() -> Result<(), MuleError> {
//! let g = from_edges(4, &[
//!     (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), // solid triangle
//!     (2, 3, 0.6),                            // shaky pendant
//! ])?;
//!
//! // Validate + preprocess once …
//! let mut session = Query::new(&g).alpha(0.5).prepare()?;
//!
//! // … answer many queries from the same prepared instance.
//! assert_eq!(session.count()?, 2);
//! let cliques: Vec<_> = session.collect()?.into_iter().map(|(c, _)| c).collect();
//! assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
//! let top = session.top_k(1)?;
//! assert_eq!(top[0].0, vec![0, 1, 2]); // 0.9³ = 0.729 beats 0.6
//! # Ok(())
//! # }
//! ```
//!
//! # Cancellation, deadlines and budgets
//!
//! Enumeration is output-exponential, so a serving system needs every
//! run to be *bounded*. Three builder knobs — [`Query::deadline`]
//! (wall-clock), [`Query::node_budget`] (search nodes, totaled across
//! parallel workers) and [`Query::cancel_token`] (an external
//! [`CancelToken`] kill switch) — make every execution method
//! interruptible, and [`Prepared::set_deadline`] /
//! [`Prepared::set_node_budget`] / [`Prepared::set_cancel_token`]
//! retune them per request on a live session.
//!
//! What is guaranteed on interruption:
//!
//! * the execution method returns the matching typed error —
//!   [`MuleError::DeadlineExceeded`], [`MuleError::BudgetExhausted`] or
//!   [`MuleError::Cancelled`] — carrying the partial
//!   [`EnumerationStats`]; it never panics and never returns silently
//!   truncated data as if complete;
//! * everything a [`Prepared::stream`] sink received before the error
//!   is a **byte-identical prefix** of the uninterrupted stream — same
//!   cliques, same probability bits, same order, nothing reordered or
//!   duplicated ([`Prepared::collect`] instead discards the partial
//!   set, since its parallel merge has no single stream order until
//!   complete);
//! * enforcement is amortized (a probe every ~1024 search nodes plus
//!   one per schedule unit), so an interrupt lands within one probe
//!   window and an *unlimited* run pays one predictable branch per
//!   node — the zero-allocation pin and the byte-identity suites hold
//!   with the checks compiled in;
//! * the session survives: after an interrupted run (including a
//!   cancelled one, once the token is [`CancelToken::reset`]) the same
//!   session answers subsequent queries normally.
//!
//! See [`mod@crate::limits`] for the enforcement machinery and
//! `tests/fault_injection.rs` for the pins.
//!
//! ```
//! use std::time::Duration;
//! use mule::{MuleError, Query};
//! use ugraph_core::builder::from_edges;
//!
//! # fn main() -> Result<(), MuleError> {
//! let g = from_edges(3, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)])?;
//! // A zero deadline interrupts before the first emission.
//! let mut session = Query::new(&g)
//!     .alpha(0.5)
//!     .deadline(Duration::ZERO)
//!     .prepare()?;
//! match session.collect() {
//!     Err(MuleError::DeadlineExceeded { stats }) => assert_eq!(stats.emitted, 0),
//!     other => panic!("expected a deadline error, got {other:?}"),
//! }
//! // Lifting the deadline makes the same session fully usable.
//! session.set_deadline(None);
//! assert_eq!(session.count()?, 1);
//! # Ok(())
//! # }
//! ```
//!
//! # Persistence
//!
//! A prepared session can outlive its process: [`Prepared::save`]
//! writes the prepared instance as a UGQ1 catalog (format:
//! [`crate::catalog`]) and [`Query::open`] rebuilds a session from it
//! with **zero** pipeline work — prepare once, possibly on a beefier
//! machine, then cold-open per process/replica and serve immediately.
//! The reopened session answers every query byte-identically to the
//! one that was saved. Corrupted or tampered files fail with
//! [`MuleError::Catalog`] — typed, never a panic, never silently wrong
//! output.
//!
//! ```
//! use mule::{Query, MuleError};
//! use ugraph_core::builder::from_edges;
//!
//! # fn main() -> Result<(), MuleError> {
//! let g = from_edges(3, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)])?;
//! let mut session = Query::new(&g).alpha(0.5).prepare()?;
//! let bytes = session.to_catalog_bytes(); // or session.save(path)
//!
//! let mut reopened = Query::open_bytes(bytes)?; // or Query::open(path)
//! assert_eq!(reopened.collect()?, session.collect()?);
//! # Ok(())
//! # }
//! ```
//!
//! # α-generic sessions: prepare once, refine per α
//!
//! α is a *query-time* parameter in the paper — the same graph is
//! interrogated at many thresholds — so baking α into the prepared
//! artifact forces a full pipeline run per threshold.
//! [`Query::prepare_base`] instead runs only the α-independent work
//! (floor-prune at [`Query::alpha_floor`], default `0.0` = keep
//! everything; component shard; per-component index build) and returns
//! a resident [`Base`]. [`Base::refine`]`(α)` then derives a full
//! [`Prepared`] session for any `α ≥ floor` by masking sub-α edges and
//! re-running the cheap bound stages *inside* each component —
//! byte-identical (order, probability bits, stats) to a fresh
//! `Query::new(&g).alpha(α).prepare()`, at a fraction of the cost;
//! components the α-stages leave untouched are shared into the view
//! without copying. Bases persist too: [`Base::save`] /
//! [`Query::open_base`] use a flagged catalog variant storing the base
//! plus its floor, and opening a catalog through the wrong entry point
//! fails with the typed [`ugraph_io::catalog::CatalogError::WrongKind`].
//! Refining below the floor fails with [`MuleError::AlphaBelowFloor`].
//!
//! ```
//! use mule::{Query, MuleError};
//! use ugraph_core::builder::from_edges;
//!
//! # fn main() -> Result<(), MuleError> {
//! let g = from_edges(4, &[
//!     (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9),
//!     (2, 3, 0.6),
//! ])?;
//! let base = Query::new(&g).prepare_base()?; // no α needed here
//! for alpha in [0.9, 0.5] {
//!     let mut refined = base.refine(alpha)?;          // cheap
//!     let mut fresh = Query::new(&g).alpha(alpha).prepare()?; // full pipeline
//!     assert_eq!(refined.collect()?, fresh.collect()?);
//! }
//! # Ok(())
//! # }
//! ```

use crate::delta::GraphDelta;
use crate::dfs_noip::DfsNoip;
use crate::enumerate::{IndexMode, MuleConfig};
use crate::limits::{CancelToken, Interrupt, LimitSpec, RunLimits};
use crate::prepare::{prepare, PrepareConfig, PrepareReport, PreparedBase, PreparedInstance};
use crate::sinks::{CliqueSink, CollectSink, Control, CountSink, RemapSink, TopKSink};
use crate::stats::EnumerationStats;
use crate::topk::RankedCliques;
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::time::Duration;
use ugraph_core::{GraphError, ProbError, UncertainGraph, VertexId};
use ugraph_io::catalog::CatalogError;

/// The one error type of the public query surface: graph-layer errors,
/// builder validation, and I/O bridging (for CLI-style callers), so
/// entry points no longer mix `Result<_, GraphError>` with
/// `Result<_, String>`.
#[derive(Debug)]
pub enum MuleError {
    /// An error from the graph layer (construction, α validation, …).
    Graph(GraphError),
    /// [`Query::prepare`] was called without [`Query::alpha`].
    AlphaNotSet,
    /// [`Query::threads`] was given `0`; a session needs at least one
    /// worker (use [`Query::threads_auto`] for one per CPU).
    ZeroThreads,
    /// [`Prepared::top_k`] was asked for zero cliques.
    ZeroTopK,
    /// An I/O error from a caller loading graphs or writing results —
    /// the bridge variant for CLI / io front ends.
    Io(std::io::Error),
    /// A persisted catalog ([`Prepared::save`] / [`Query::open`]) was
    /// structurally or semantically invalid — wrong magic, failed
    /// checksum, unsupported version, or payload that lies about the
    /// invariants the pipeline would have established. Plain I/O
    /// failures while reading or writing a catalog surface as
    /// [`MuleError::Io`].
    Catalog(CatalogError),
    /// The execution's wall-clock deadline ([`Query::deadline`]) passed
    /// before the run finished. Carries the counters of the partial
    /// run; everything emitted before the interrupt is a byte-identical
    /// prefix of the uninterrupted stream (see [`mod@crate::limits`]).
    DeadlineExceeded {
        /// Counters of the interrupted (partial) run.
        stats: EnumerationStats,
    },
    /// The execution's search-node budget ([`Query::node_budget`]) was
    /// consumed. Same partial-stats / prefix semantics as
    /// [`MuleError::DeadlineExceeded`].
    BudgetExhausted {
        /// Counters of the interrupted (partial) run.
        stats: EnumerationStats,
    },
    /// The session's [`CancelToken`] was tripped from outside. Same
    /// partial-stats / prefix semantics as
    /// [`MuleError::DeadlineExceeded`].
    Cancelled {
        /// Counters of the interrupted (partial) run.
        stats: EnumerationStats,
    },
    /// [`Base::refine`] was asked for an α below the base's floor. The
    /// base was pruned at the floor, so it is missing edges the query
    /// would need — re-prepare the base with a lower
    /// [`Query::alpha_floor`] instead.
    AlphaBelowFloor {
        /// The requested query threshold.
        alpha: f64,
        /// The floor the base artifact was pruned at.
        floor: f64,
    },
    /// A [`crate::GraphDelta`] batch could not be applied — an op
    /// references an edge the artifact cannot see at its threshold, an
    /// endpoint is out of range, a serialized delta is malformed, or
    /// the artifact does not retain enough of the pruned graph for an
    /// exact incremental update (see [`mod@crate::delta`]). The
    /// artifact is left unchanged.
    Delta(String),
}

impl fmt::Display for MuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuleError::Graph(e) => write!(f, "{e}"),
            MuleError::AlphaNotSet => {
                write!(f, "query has no alpha threshold: call Query::alpha(..)")
            }
            MuleError::ZeroThreads => write!(
                f,
                "thread count must be at least 1 (threads_auto() picks one per CPU)"
            ),
            MuleError::ZeroTopK => write!(f, "top-k query with k = 0 asks for nothing"),
            MuleError::Io(e) => write!(f, "I/O error: {e}"),
            MuleError::Catalog(e) => write!(f, "{e}"),
            MuleError::DeadlineExceeded { stats } => write!(
                f,
                "deadline exceeded after {} search nodes ({} cliques emitted)",
                stats.calls, stats.emitted
            ),
            MuleError::BudgetExhausted { stats } => write!(
                f,
                "node budget exhausted after {} search nodes ({} cliques emitted)",
                stats.calls, stats.emitted
            ),
            MuleError::Cancelled { stats } => write!(
                f,
                "cancelled after {} search nodes ({} cliques emitted)",
                stats.calls, stats.emitted
            ),
            MuleError::AlphaBelowFloor { alpha, floor } => write!(
                f,
                "alpha {alpha} is below the base artifact's floor {floor}: \
                 the base is missing sub-floor edges this query would need"
            ),
            MuleError::Delta(msg) => write!(f, "delta rejected: {msg}"),
        }
    }
}

impl std::error::Error for MuleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MuleError::Graph(e) => Some(e),
            MuleError::Io(e) => Some(e),
            MuleError::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for MuleError {
    fn from(e: GraphError) -> Self {
        MuleError::Graph(e)
    }
}

impl From<ProbError> for MuleError {
    fn from(e: ProbError) -> Self {
        MuleError::Graph(GraphError::from(e))
    }
}

impl From<std::io::Error> for MuleError {
    fn from(e: std::io::Error) -> Self {
        MuleError::Io(e)
    }
}

impl From<CatalogError> for MuleError {
    fn from(e: CatalogError) -> Self {
        match e {
            // Keep the error taxonomy honest: a file that cannot be
            // read is an I/O problem, not a corrupt catalog.
            CatalogError::Io(io) => MuleError::Io(io),
            other => MuleError::Catalog(other),
        }
    }
}

impl MuleError {
    /// Unwrap the graph-layer variant — for the legacy delegates, whose
    /// signatures still promise `GraphError` and whose fully-specified
    /// builders cannot produce any other variant.
    pub(crate) fn expect_graph(self) -> GraphError {
        match self {
            MuleError::Graph(e) => e,
            other => unreachable!("legacy delegate produced a non-graph error: {other}"),
        }
    }

    /// The typed error for an interrupted run, carrying its partial
    /// counters.
    pub(crate) fn from_interrupt(interrupt: Interrupt, stats: EnumerationStats) -> Self {
        match interrupt {
            Interrupt::Deadline => MuleError::DeadlineExceeded { stats },
            Interrupt::Budget => MuleError::BudgetExhausted { stats },
            Interrupt::Cancelled => MuleError::Cancelled { stats },
        }
    }

    /// The partial-run counters, when this error is one of the three
    /// interruption variants ([`MuleError::DeadlineExceeded`] /
    /// [`MuleError::BudgetExhausted`] / [`MuleError::Cancelled`]);
    /// `None` for every other error. A convenient way for front ends to
    /// report partial progress without matching all three variants.
    pub fn interrupted_stats(&self) -> Option<&EnumerationStats> {
        match self {
            MuleError::DeadlineExceeded { stats }
            | MuleError::BudgetExhausted { stats }
            | MuleError::Cancelled { stats } => Some(stats),
            _ => None,
        }
    }
}

/// Which search engine a [`Prepared`] session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The incremental-probability kernel (the paper's contribution):
    /// MULE, or LARGE-MULE's bounded recursion when
    /// [`Query::min_size`] ≥ 2.
    #[default]
    Auto,
    /// The DFS–NOIP baseline (Algorithm 7) per prepared component —
    /// probability recomputed from scratch, maximality by full scan.
    /// Always sequential; exists so ablations run through the same
    /// session front door.
    Noip,
}

/// Builder for a clique-mining session: the single public entry point.
///
/// Collects every knob that used to be scattered across
/// [`MuleConfig`], [`PrepareConfig`] and per-function parameters,
/// validates on [`Query::prepare`] (before any preprocessing work), and
/// produces a reusable [`Prepared`] session. See the
/// [module docs](self) for the lifecycle.
#[derive(Debug, Clone)]
pub struct Query<'g> {
    g: &'g UncertainGraph,
    alpha: Option<f64>,
    alpha_floor: f64,
    min_size: usize,
    threads: usize,
    engine: Engine,
    core_filter: bool,
    shared_neighborhood: bool,
    shard_components: bool,
    mule: MuleConfig,
    limits: LimitSpec,
}

impl<'g> Query<'g> {
    /// Start a query over `g` with default settings: all α-maximal
    /// cliques, sequential, full preprocessing pipeline, [`Engine::Auto`].
    /// The α threshold has no default — set it with [`Query::alpha`].
    pub fn new(g: &'g UncertainGraph) -> Self {
        Query {
            g,
            alpha: None,
            alpha_floor: 0.0,
            min_size: 0,
            threads: 1,
            engine: Engine::Auto,
            core_filter: true,
            shared_neighborhood: true,
            shard_components: true,
            mule: MuleConfig::default(),
            limits: LimitSpec::default(),
        }
    }

    /// The α threshold: cliques must exist with probability ≥ `alpha`.
    /// Validated by [`Query::prepare`] (must lie in `(0, 1]`).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// The α-floor for [`Query::prepare_base`] (default `0.0` = prune
    /// nothing, so the base serves every valid α). Edges below the
    /// floor are dropped from the base artifact once, making it
    /// smaller; in exchange, [`Base::refine`] only accepts `α ≥ floor`.
    /// Validated by [`Query::prepare_base`] (must lie in `[0, 1]` —
    /// unlike a query α, `0` is legal). Ignored by [`Query::prepare`].
    pub fn alpha_floor(mut self, floor: f64) -> Self {
        self.alpha_floor = floor;
        self
    }

    /// Only report cliques with at least `t` vertices (`0`/`1` = all).
    /// Values ≥ 2 engage the size-based pipeline stages and the
    /// LARGE-MULE search bound — the builder-state replacement for
    /// reaching for `enumerate_large_maximal_cliques`.
    pub fn min_size(mut self, t: usize) -> Self {
        self.min_size = t;
        self
    }

    /// Worker threads for [`Prepared::collect`] (default 1 =
    /// sequential). `0` is rejected by [`Query::prepare`] — say
    /// [`Query::threads_auto`] when you mean "one per CPU".
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// One worker per available CPU.
    pub fn threads_auto(mut self) -> Self {
        self.threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        self
    }

    /// Select the search engine (default [`Engine::Auto`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Whether to build the tiered neighborhood index (see
    /// [`IndexMode`]; default [`IndexMode::Auto`]).
    pub fn index_mode(mut self, mode: IndexMode) -> Self {
        self.mule.index_mode = mode;
        self
    }

    /// Budget for the index's dense probability tier, in bytes per
    /// enumeration kernel (see [`MuleConfig::dense_index_bytes`]).
    pub fn dense_index_bytes(mut self, bytes: usize) -> Self {
        self.mule.dense_index_bytes = bytes;
        self
    }

    /// Budget for the index's bitset membership tier under
    /// [`IndexMode::Auto`] (see [`MuleConfig::max_index_bytes`]).
    pub fn max_index_bytes(mut self, bytes: usize) -> Self {
        self.mule.max_index_bytes = bytes;
        self
    }

    /// Replace the whole kernel configuration at once (harness/CLI
    /// convenience; the granular setters cover the common cases). The
    /// `degeneracy_order` / `naive_root` ablation switches are ignored
    /// by the pipeline, exactly as [`PrepareConfig::mule`] documents.
    pub fn kernel_config(mut self, cfg: MuleConfig) -> Self {
        self.mule = cfg;
        self
    }

    /// Toggle pipeline stage 2, the expected-degree core filter
    /// (default on; engages only when `min_size ≥ 2`).
    pub fn core_filter(mut self, on: bool) -> Self {
        self.core_filter = on;
        self
    }

    /// Toggle pipeline stage 3, the Modani–Dey shared-neighborhood peel
    /// (default on; engages only when `min_size ≥ 3`).
    pub fn shared_neighborhood(mut self, on: bool) -> Self {
        self.shared_neighborhood = on;
        self
    }

    /// Toggle pipeline stage 4, connected-component sharding (default
    /// on). Off = a single identity-mapped instance, the CLI's
    /// `--no-prune` shape. Every stage toggle is output-neutral.
    pub fn shard_components(mut self, on: bool) -> Self {
        self.shard_components = on;
        self
    }

    /// Bound every execution method's wall-clock time: a run still
    /// going `d` after it started is interrupted at its next limit
    /// probe (within ~1024 search nodes) and returns
    /// [`MuleError::DeadlineExceeded`] with partial stats. Everything
    /// the sink received up to that point is a byte-identical prefix of
    /// the uninterrupted stream — see [`mod@crate::limits`] for the
    /// full semantics. The deadline re-arms per execution method; it is
    /// a per-run bound, not a session lifetime.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.limits.deadline = Some(d);
        self
    }

    /// Bound every execution method's work: a run that has expanded
    /// more than `n` search nodes ([`EnumerationStats::calls`], totaled
    /// across parallel workers) is interrupted and returns
    /// [`MuleError::BudgetExhausted`]. Enforcement is amortized — the
    /// overshoot is at most one probe window (~1024 nodes) per worker.
    pub fn node_budget(mut self, n: u64) -> Self {
        self.limits.node_budget = Some(n);
        self
    }

    /// Attach an external kill switch: keep a clone of `token` and call
    /// [`CancelToken::cancel`] from any thread to make in-flight (and
    /// subsequent, until [`CancelToken::reset`]) executions return
    /// [`MuleError::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.limits.cancel = Some(token);
        self
    }

    /// Validate the builder state and run the preprocessing pipeline —
    /// the session's one-time cost. Errors are reported here, eagerly,
    /// before any query executes: a missing or out-of-range α, a zero
    /// thread count. The returned [`Prepared`] session answers any
    /// number of queries without re-running a single pipeline stage.
    pub fn prepare(self) -> Result<Prepared, MuleError> {
        let alpha = self.alpha.ok_or(MuleError::AlphaNotSet)?;
        if self.threads == 0 {
            return Err(MuleError::ZeroThreads);
        }
        let cfg = PrepareConfig {
            min_size: self.min_size,
            core_filter: self.core_filter,
            shared_neighborhood: self.shared_neighborhood,
            shard_components: self.shard_components,
            mule: self.mule,
        };
        let inst = prepare(self.g, alpha, &cfg)?;
        // Component graphs are already α-pruned by pipeline stage 1 (and
        // α validated above), so the baseline enumerators wrap a copy
        // directly instead of re-running the prune pass.
        let noip = match self.engine {
            Engine::Auto => Vec::new(),
            Engine::Noip => inst
                .components()
                .map(|(sub, _)| DfsNoip::from_pruned(sub.clone(), inst.alpha()))
                .collect(),
        };
        Ok(Prepared {
            inst,
            noip,
            engine: self.engine,
            threads: self.threads,
            stats: EnumerationStats::new(),
            limits: self.limits,
        })
    }

    /// Rebuild a session from a catalog file written by
    /// [`Prepared::save`] — the cold-start entry point. No pipeline
    /// stage runs (pinned by `tests/catalog_cold_open.rs`): the file
    /// already holds the pipeline's output, and [`Query::open`] only
    /// validates it and rebuilds the deterministic per-component
    /// neighborhood index. The session starts with the saved
    /// configuration, one worker thread and [`Engine::Auto`]; retune
    /// with [`Prepared::set_threads`] / [`Prepared::set_engine`].
    ///
    /// Failures are typed: unreadable file → [`MuleError::Io`];
    /// structurally or semantically invalid content →
    /// [`MuleError::Catalog`]. A corrupted catalog never panics and
    /// never serves data.
    pub fn open(path: impl AsRef<Path>) -> Result<Prepared, MuleError> {
        let inst = crate::catalog::open(path)?;
        Ok(Prepared::from_instance(inst))
    }

    /// [`Query::open`] over an in-memory byte image (the counterpart of
    /// [`Prepared::to_catalog_bytes`]).
    pub fn open_bytes(bytes: impl Into<Vec<u8>>) -> Result<Prepared, MuleError> {
        let inst = crate::catalog::from_bytes(ugraph_io::Bytes::from(bytes.into()))?;
        Ok(Prepared::from_instance(inst))
    }

    /// Validate the builder state and run only the **α-independent**
    /// pipeline work — floor-prune ([`Query::alpha_floor`], default
    /// none) and component decomposition, with the per-component tiered
    /// indexes built once. The returned [`Base`] derives a full
    /// [`Prepared`] session for any `α ≥ floor` via [`Base::refine`],
    /// byte-identical to `Query::new(&g).alpha(α).prepare()` but
    /// without re-running the α-generic stages: untouched components
    /// are shared into the refined session as `Arc` clones.
    ///
    /// [`Query::alpha`] is not required (and not consulted) — α is
    /// supplied per refinement. Runtime settings (threads, engine,
    /// limits) set on this builder become the template every refined
    /// session starts from.
    pub fn prepare_base(self) -> Result<Base, MuleError> {
        if self.threads == 0 {
            return Err(MuleError::ZeroThreads);
        }
        let cfg = PrepareConfig {
            min_size: self.min_size,
            core_filter: self.core_filter,
            shared_neighborhood: self.shared_neighborhood,
            shard_components: self.shard_components,
            mule: self.mule,
        };
        let base = crate::prepare::prepare_base(self.g, self.alpha_floor, &cfg)?;
        Ok(Base {
            base,
            threads: self.threads,
            engine: self.engine,
            limits: self.limits,
        })
    }

    /// Rebuild a [`Base`] from a base catalog file written by
    /// [`Base::save`] — the α-generic counterpart of [`Query::open`].
    /// No pipeline stage runs; only validation and the deterministic
    /// per-component index rebuild. Opening a fixed-α catalog through
    /// this entry point fails with
    /// [`CatalogError::WrongKind`](ugraph_io::catalog::CatalogError) —
    /// and vice versa for [`Query::open`] on a base catalog — so the
    /// two artifact kinds cannot be confused silently.
    pub fn open_base(path: impl AsRef<Path>) -> Result<Base, MuleError> {
        let base = crate::catalog::open_base(path)?;
        Ok(Base::from_base(base))
    }

    /// [`Query::open_base`] over an in-memory byte image (the
    /// counterpart of [`Base::to_catalog_bytes`]).
    pub fn open_base_bytes(bytes: impl Into<Vec<u8>>) -> Result<Base, MuleError> {
        let base = crate::catalog::base_from_bytes(ugraph_io::Bytes::from(bytes.into()))?;
        Ok(Base::from_base(base))
    }
}

/// An α-generic prepared artifact: the output of [`Query::prepare_base`].
///
/// Owns the [`PreparedBase`] (floor-pruned components, id maps, tiered
/// indexes — computed once) plus the runtime template (threads, engine,
/// limits) refined sessions start from. One resident `Base` serves every
/// query threshold `α ≥ floor`: [`Base::refine`] derives a [`Prepared`]
/// session byte-identical to a fresh `Query::new(&g).alpha(α).prepare()`
/// while re-running only the cheap α-dependent bounds locally per
/// component — this is the paper's "α is a query-time parameter" shape
/// made resident.
pub struct Base {
    base: PreparedBase,
    threads: usize,
    engine: Engine,
    limits: LimitSpec,
}

impl Base {
    /// A base opened from a catalog: default runtime template (one
    /// thread, [`Engine::Auto`], no limits), like [`Query::open`].
    fn from_base(base: PreparedBase) -> Self {
        Base {
            base,
            threads: 1,
            engine: Engine::Auto,
            limits: LimitSpec::default(),
        }
    }

    /// The α-floor the base was pruned at (`0.0` = serves every α).
    pub fn floor(&self) -> f64 {
        self.base.floor()
    }

    /// The size threshold refinements are built for.
    pub fn min_size(&self) -> usize {
        self.base.min_size()
    }

    /// Number of floor-level components resident in the base.
    pub fn num_components(&self) -> usize {
        self.base.components().len()
    }

    /// The underlying α-independent artifact, for advanced callers.
    pub fn prepared_base(&self) -> &PreparedBase {
        &self.base
    }

    /// Retune the worker-thread template refined sessions start with.
    /// Rejects `0` exactly like [`Query::threads`].
    pub fn set_threads(&mut self, n: usize) -> Result<(), MuleError> {
        if n == 0 {
            return Err(MuleError::ZeroThreads);
        }
        self.threads = n;
        Ok(())
    }

    /// Retune the engine template refined sessions start with.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// Derive a full [`Prepared`] session at `alpha` — the per-α step.
    ///
    /// Output is byte-identical (cliques, order, probability bits,
    /// stats, report) to `Query::new(&g).alpha(alpha).prepare()` with
    /// the same builder settings, but no α-generic stage re-runs:
    /// components the α-mask leaves untouched are shared (`Arc` clones
    /// of graph and index), and only the core-filter/peel bounds re-run
    /// locally where masking bit something. `α < floor` fails with
    /// [`MuleError::AlphaBelowFloor`]; an out-of-range α with the usual
    /// graph-layer validation error. The base is unaffected either way
    /// and can refine any number of thresholds.
    pub fn refine(&self, alpha: f64) -> Result<Prepared, MuleError> {
        if alpha < self.base.floor() {
            return Err(MuleError::AlphaBelowFloor {
                alpha,
                floor: self.base.floor(),
            });
        }
        let inst = self.base.refine(alpha)?;
        let noip = match self.engine {
            Engine::Auto => Vec::new(),
            Engine::Noip => inst
                .components()
                .map(|(sub, _)| DfsNoip::from_pruned(sub.clone(), inst.alpha()))
                .collect(),
        };
        Ok(Prepared {
            inst,
            noip,
            engine: self.engine,
            threads: self.threads,
            stats: EnumerationStats::new(),
            limits: self.limits.clone(),
        })
    }

    /// Fold a [`GraphDelta`] batch into the resident base, re-running
    /// the floor-prune/shard work only on the components an op touches
    /// (untouched components carry over byte-for-byte). The result is
    /// byte-identical to a fresh [`Query::prepare_base`] of the mutated
    /// graph; bases retain every edge at their floor, so — unlike
    /// [`Prepared::apply`] — this never needs a precondition. On error
    /// ([`MuleError::Delta`]) the base is unchanged. Refined views
    /// derived *before* the apply still describe the old graph: derive
    /// them again. See [`mod@crate::delta`].
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<(), MuleError> {
        crate::delta::apply_base(&mut self.base, delta)
    }

    /// Persist the base as a flagged-UGQ1 catalog file (see
    /// [`crate::catalog`] for the byte layout). A later
    /// [`Query::open_base`] rebuilds an equivalent base that refines
    /// every `α ≥ floor` byte-identically, with zero pipeline work
    /// beyond the refinement itself. The write is atomic-durable (temp
    /// file + fsync + rename): on error the prior file is intact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MuleError> {
        Ok(crate::catalog::save_base(&self.base, path)?)
    }

    /// The catalog byte image [`Base::save`] would write.
    pub fn to_catalog_bytes(&self) -> Vec<u8> {
        crate::catalog::base_to_bytes(&self.base)
    }
}

/// A reusable mining session: the output of [`Query::prepare`].
///
/// Owns the [`PreparedInstance`] (compact per-component kernels, id
/// maps, [`PrepareReport`]) and executes queries over it. Every
/// execution method reuses the same prepared state — preprocessing ran
/// exactly once, at [`Query::prepare`] — and reruns are allocation-free
/// in steady state, like the underlying kernels. Counters of the most
/// recent execution are at [`Prepared::stats`].
pub struct Prepared {
    inst: PreparedInstance,
    /// One reusable DFS–NOIP enumerator per component ([`Engine::Noip`]
    /// only; empty under [`Engine::Auto`]).
    noip: Vec<DfsNoip>,
    engine: Engine,
    threads: usize,
    stats: EnumerationStats,
    /// Per-execution limits (deadline / node budget / cancel token);
    /// inactive by default.
    limits: LimitSpec,
}

impl Prepared {
    /// A fresh session around an instance that came out of a catalog:
    /// default runtime settings, engine state built on demand.
    fn from_instance(inst: PreparedInstance) -> Self {
        Prepared {
            inst,
            noip: Vec::new(),
            engine: Engine::Auto,
            threads: 1,
            stats: EnumerationStats::new(),
            limits: LimitSpec::default(),
        }
    }

    /// Persist this session's prepared instance as a UGQ1 catalog file
    /// (see [`crate::catalog`] for the byte-level format). A later
    /// [`Query::open`] rebuilds an equivalent session — same α, size
    /// threshold, stage toggles and index configuration — that serves
    /// every query byte-identically, without re-running any pipeline
    /// stage. Runtime-only settings (threads, engine) are not part of
    /// the catalog. The write is atomic-durable (temp file + fsync +
    /// rename): on error the prior file is intact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MuleError> {
        Ok(crate::catalog::save(&self.inst, path)?)
    }

    /// The catalog byte image [`Prepared::save`] would write — for
    /// callers that manage their own storage.
    pub fn to_catalog_bytes(&self) -> Vec<u8> {
        crate::catalog::to_bytes(&self.inst)
    }

    /// Retune the worker-thread count of an existing session (catalogs
    /// persist no runtime settings, so reopened sessions start at 1).
    /// Rejects `0` exactly like [`Query::threads`].
    pub fn set_threads(&mut self, n: usize) -> Result<(), MuleError> {
        if n == 0 {
            return Err(MuleError::ZeroThreads);
        }
        self.threads = n;
        Ok(())
    }

    /// Switch the search engine of an existing session. Selecting
    /// [`Engine::Noip`] lazily builds the per-component baseline
    /// enumerators on first switch (the same construction
    /// [`Query::prepare`] performs eagerly); switching back to
    /// [`Engine::Auto`] keeps them around for free re-switching.
    pub fn set_engine(&mut self, engine: Engine) {
        if engine == Engine::Noip && self.noip.is_empty() {
            self.noip = self
                .inst
                .components()
                .map(|(sub, _)| DfsNoip::from_pruned(sub.clone(), self.inst.alpha()))
                .collect();
        }
        self.engine = engine;
    }

    /// Fold a [`GraphDelta`] batch into the live session: re-run the
    /// pipeline stages only on the touched components, share every
    /// untouched component's bytes, and rebuild the emission schedule.
    /// The resulting session is byte-identical — cliques, order,
    /// probability bits, report — to a fresh
    /// `Query::new(&g').alpha(α).prepare()` of the mutated graph `g'`
    /// (pinned by `tests/delta_equivalence.rs`), and adds **zero**
    /// pipeline invocations.
    ///
    /// Requires that the instance still retains the full α-pruned
    /// graph: its own report must show zero core-filter/peel losses and
    /// (for sharded instances) zero dropped-small components — always
    /// true when `min_size ≤ 1`. Otherwise, and on any invalid op
    /// (self-loop, out-of-range vertex, edge not visible at α), this
    /// returns a typed [`MuleError::Delta`] and the session is
    /// unchanged. See [`mod@crate::delta`] for the soundness argument
    /// and the representability contract.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<(), MuleError> {
        crate::delta::apply_instance(&mut self.inst, delta)?;
        self.stats = EnumerationStats::new();
        // Engine state wraps per-component graphs that may just have
        // changed: rebuild it for Noip sessions, drop it otherwise (the
        // same lazy path `set_engine` uses).
        self.noip.clear();
        if self.engine == Engine::Noip {
            self.noip = self
                .inst
                .components()
                .map(|(sub, _)| DfsNoip::from_pruned(sub.clone(), self.inst.alpha()))
                .collect();
        }
        Ok(())
    }

    /// Retune the per-execution wall-clock deadline on a live session
    /// (`None` removes it) — the server front end sets this per
    /// request. Semantics as [`Query::deadline`].
    pub fn set_deadline(&mut self, d: Option<Duration>) {
        self.limits.deadline = d;
    }

    /// Retune the per-execution search-node budget on a live session
    /// (`None` removes it). Semantics as [`Query::node_budget`].
    pub fn set_node_budget(&mut self, n: Option<u64>) {
        self.limits.node_budget = n;
    }

    /// Attach (or, with `None`, detach) an external [`CancelToken`] on
    /// a live session. Semantics as [`Query::cancel_token`].
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.limits.cancel = token;
    }

    /// The α threshold the session was prepared for.
    pub fn alpha(&self) -> f64 {
        self.inst.alpha()
    }

    /// The size threshold (`0`/`1` = all maximal cliques).
    pub fn min_size(&self) -> usize {
        self.inst.min_size()
    }

    /// Worker threads [`Prepared::collect`] will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine this session dispatches to.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// What each pipeline stage removed and the shape of the prepared
    /// instance — fixed at prepare time, stable across executions.
    pub fn report(&self) -> &PrepareReport {
        self.inst.report()
    }

    /// Counters from the most recent execution method.
    pub fn stats(&self) -> &EnumerationStats {
        &self.stats
    }

    /// The underlying prepared instance, for advanced drivers (e.g. the
    /// work-stealing scheduler [`crate::parallel::par_enumerate_prepared`]).
    pub fn instance(&self) -> &PreparedInstance {
        &self.inst
    }

    /// Stream every qualifying α-maximal clique — canonical order,
    /// original ids, exact probability — into `sink`, sequentially.
    /// This is the zero-copy primitive the other execution methods are
    /// built on; the sink can stop the run early via [`Control::Stop`].
    ///
    /// With limits configured ([`Query::deadline`] /
    /// [`Query::node_budget`] / [`Query::cancel_token`]) an interrupted
    /// run returns the matching typed error with partial counters;
    /// everything `sink` received before the error is a byte-identical
    /// prefix of the uninterrupted stream. With no limits (the default)
    /// this never errors.
    pub fn stream<S: CliqueSink>(&mut self, sink: &mut S) -> Result<&EnumerationStats, MuleError> {
        let interrupt = match self.engine {
            Engine::Auto => {
                let mut limits = self.limits.arm();
                let interrupt = self.inst.run_limited(sink, &mut limits);
                self.stats = *self.inst.stats();
                interrupt
            }
            Engine::Noip => {
                let mut limits = self.limits.arm();
                self.stats = run_noip(&self.inst, &mut self.noip, sink, &mut limits);
                limits.tripped()
            }
        };
        match interrupt {
            Some(i) => Err(MuleError::from_interrupt(i, self.stats)),
            None => Ok(&self.stats),
        }
    }

    /// Collect all qualifying cliques as `(clique, probability)` pairs
    /// in canonical emission order. Runs on the session's configured
    /// thread count: with [`Query::threads`] > 1 (and [`Engine::Auto`])
    /// the work-stealing scheduler fans root subtrees out per component
    /// and merges back the byte-identical stream.
    ///
    /// An interrupted run (deadline / budget / cancellation) returns
    /// the typed error with partial counters and discards the partial
    /// result set; stream into your own sink via [`Prepared::stream`]
    /// to keep the prefix that was produced.
    pub fn collect(&mut self) -> Result<Vec<(Vec<VertexId>, f64)>, MuleError> {
        if self.threads > 1 && self.engine == Engine::Auto {
            let (out, interrupt) = crate::parallel::par_enumerate_prepared_limited(
                &self.inst,
                self.threads,
                &self.limits,
            );
            self.stats = out.stats;
            match interrupt {
                Some(i) => Err(MuleError::from_interrupt(i, self.stats)),
                None => Ok(out.cliques.into_iter().zip(out.probs).collect()),
            }
        } else {
            let mut sink = CollectSink::new();
            self.stream(&mut sink)?;
            Ok(sink.into_pairs())
        }
    }

    /// [`Prepared::collect`] without the probabilities: just the clique
    /// vertex sets, sorted lexicographically — the shape the legacy
    /// wrappers return, kept in one place so the delegates cannot
    /// drift.
    pub fn sorted_cliques(&mut self) -> Result<Vec<Vec<VertexId>>, MuleError> {
        let mut cliques: Vec<Vec<VertexId>> = self.collect()?.into_iter().map(|(c, _)| c).collect();
        cliques.sort();
        Ok(cliques)
    }

    /// Count qualifying cliques without storing them (sequential —
    /// counting is a streaming query; buffering the full output to
    /// parallelize a count would defeat it). Interruption semantics as
    /// [`Prepared::stream`].
    pub fn count(&mut self) -> Result<u64, MuleError> {
        let mut sink = CountSink::new();
        self.stream(&mut sink)?;
        Ok(sink.count)
    }

    /// The `k` most probable qualifying cliques, probability descending
    /// (ties lexicographic). Errors on `k = 0`. Under [`Engine::Auto`]
    /// with no size threshold and no limits this runs the adaptive
    /// β-cut engine (`mule::topk`): subtrees whose probability has
    /// fallen to the current k-th best are skipped, maximality still
    /// judged at α. Otherwise — including whenever a deadline, budget
    /// or cancel token is configured — it selects over the streamed
    /// enumeration, which enforces the limits and produces the
    /// identical ranking.
    pub fn top_k(&mut self, k: usize) -> Result<RankedCliques, MuleError> {
        if k == 0 {
            return Err(MuleError::ZeroTopK);
        }
        if self.engine == Engine::Auto && self.min_size() <= 1 && !self.limits.is_active() {
            let (top, stats) = crate::topk::beta_top_k(&self.inst, k);
            self.stats = stats;
            Ok(top)
        } else {
            let mut sink = TopKSink::new(k);
            self.stream(&mut sink)?;
            Ok(sink.into_sorted())
        }
    }

    /// A pull-based iterator over the qualifying cliques, in the same
    /// canonical order [`Prepared::stream`] emits. Work is done lazily,
    /// one schedule unit (root subtree / component) at a time, so
    /// memory stays bounded by one unit's output instead of the whole
    /// result set; dropping the iterator abandons the rest of the
    /// search. [`Prepared::stats`] reflects the progress made so far.
    pub fn iter(&mut self) -> Cliques<'_> {
        let mut buf = VecDeque::new();
        let stage = match self.engine {
            Engine::Auto => {
                if let Some(empty) = self.inst.begin_incremental() {
                    buf.push_back(empty);
                }
                self.stats = *self.inst.stats();
                IterStage::Pipeline { next_unit: 0 }
            }
            Engine::Noip => {
                self.stats = EnumerationStats::new();
                self.stats.calls = 1; // the conceptual root node
                if self.inst.original_vertices() == 0 && self.min_size() <= 1 {
                    self.stats.emitted += 1;
                    buf.push_back((Vec::new(), 1.0));
                }
                IterStage::Noip {
                    next_comp: 0,
                    next_singleton: 0,
                }
            }
        };
        Cliques {
            prepared: self,
            buf,
            stage,
        }
    }
}

/// The DFS–NOIP engine: one baseline run per prepared component
/// (ids translated in the sink layer), singletons emitted directly,
/// the size threshold enforced by an emission filter. Counters are
/// the merged per-component baseline counters. A [`Control::Stop`]
/// from the sink is latched, so later components are neither
/// searched nor allowed to emit — the same early-stop contract the
/// [`Engine::Auto`] path honors per schedule unit.
///
/// Limits are enforced more coarsely than in the MULE kernel (whose
/// recursion probes per search node): the baseline's own recursion is
/// untouched, so probes happen per *emission* (amortized, via
/// [`ProbeSink`] below the id translation so sub-threshold emissions
/// still tick) and immediately at every component boundary. The prefix
/// guarantee is identical; only the interruption latency is looser. A
/// tripped limit leaves the latch un-stopped, and the caller
/// distinguishes the two Stop sources via `limits.tripped()`.
fn run_noip<S: CliqueSink>(
    inst: &PreparedInstance,
    noips: &mut [DfsNoip],
    sink: &mut S,
    limits: &mut RunLimits,
) -> EnumerationStats {
    let mut stats = EnumerationStats::new();
    stats.calls = 1; // the conceptual root node
    let t = inst.min_size();
    let mut latch = StopLatch {
        inner: sink,
        stopped: false,
    };
    let mut filter = MinSizeSink {
        inner: &mut latch,
        t,
    };
    let mut ticks = 0u64;
    if limits.probe_now(ticks) {
        return stats;
    }
    if inst.original_vertices() == 0 {
        if t <= 1 {
            stats.emitted += 1;
            filter.inner.emit(&[], 1.0);
        }
        return stats;
    }
    for (noip, (_, map)) in noips.iter_mut().zip(inst.components()) {
        {
            let mut remap = RemapSink::new(&mut filter, map);
            let mut probe = ProbeSink {
                inner: &mut remap,
                limits,
                ticks: &mut ticks,
            };
            noip.run(&mut probe);
        }
        stats.merge(noip.stats());
        if filter.inner.stopped || limits.probe_now(ticks) {
            return stats;
        }
    }
    for &v in inst.singletons() {
        stats.calls += 1;
        stats.max_depth = stats.max_depth.max(1);
        stats.emitted += 1;
        if filter.emit(&[v], 1.0) == Control::Stop {
            break;
        }
    }
    stats
}

/// Innermost NOIP sink adapter: ticks the armed [`RunLimits`] once per
/// emission and answers [`Control::Stop`] — without forwarding the
/// emission — when a limit fires, so the baseline recursion unwinds on
/// a clean prefix.
struct ProbeSink<'a, S: CliqueSink> {
    inner: &'a mut S,
    limits: &'a mut RunLimits,
    ticks: &'a mut u64,
}

impl<S: CliqueSink> CliqueSink for ProbeSink<'_, S> {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        *self.ticks += 1;
        if self.limits.probe(*self.ticks) {
            return Control::Stop;
        }
        self.inner.emit(clique, prob)
    }
}

/// Latches the first [`Control::Stop`] a sink returns: every later
/// emission is swallowed and answered with `Stop`, so a multi-segment
/// driver (the NOIP per-component loop) can both unwind its current
/// segment and know not to start the next one.
struct StopLatch<'a, S: CliqueSink> {
    inner: &'a mut S,
    stopped: bool,
}

impl<S: CliqueSink> CliqueSink for StopLatch<'_, S> {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        if self.stopped {
            return Control::Stop;
        }
        let ctl = self.inner.emit(clique, prob);
        if ctl == Control::Stop {
            self.stopped = true;
        }
        ctl
    }
}

/// Emission filter enforcing [`Query::min_size`] for engines whose
/// recursion has no size bound of its own (DFS–NOIP): cliques below the
/// threshold are dropped, everything else passes through. Inactive
/// (pure pass-through) for `t ≤ 1`, so the empty clique and singletons
/// keep their default-semantics emissions.
struct MinSizeSink<'a, S: CliqueSink> {
    inner: &'a mut S,
    t: usize,
}

impl<S: CliqueSink> CliqueSink for MinSizeSink<'_, S> {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        if self.t >= 2 && clique.len() < self.t {
            return Control::Continue;
        }
        self.inner.emit(clique, prob)
    }
}

/// Where the pull iterator is in the enumeration.
enum IterStage {
    /// Walking the prepared schedule, one unit per refill.
    Pipeline {
        /// Next schedule unit to run.
        next_unit: usize,
    },
    /// Walking the NOIP per-component runs, then the singletons.
    Noip {
        /// Next component to run.
        next_comp: usize,
        /// Next singleton to emit once components are done.
        next_singleton: usize,
    },
}

/// Pull-based clique iterator borrowing a [`Prepared`] session — see
/// [`Prepared::iter`]. Yields `(clique, probability)` in canonical
/// order.
pub struct Cliques<'p> {
    prepared: &'p mut Prepared,
    buf: VecDeque<(Vec<VertexId>, f64)>,
    stage: IterStage,
}

impl Iterator for Cliques<'_> {
    type Item = (Vec<VertexId>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.buf.pop_front() {
                return Some(item);
            }
            match &mut self.stage {
                IterStage::Pipeline { next_unit } => {
                    if *next_unit >= self.prepared.inst.num_units() {
                        return None;
                    }
                    let mut sink = CollectSink::new();
                    self.prepared.inst.run_unit(*next_unit, &mut sink);
                    *next_unit += 1;
                    self.prepared.stats = *self.prepared.inst.stats();
                    self.buf.extend(sink.into_pairs());
                }
                IterStage::Noip {
                    next_comp,
                    next_singleton,
                } => {
                    let t = self.prepared.inst.min_size();
                    if *next_comp < self.prepared.noip.len() {
                        let (_, map) = self
                            .prepared
                            .inst
                            .components()
                            .nth(*next_comp)
                            .expect("component index in range");
                        let noip = &mut self.prepared.noip[*next_comp];
                        let mut collect = CollectSink::new();
                        {
                            let mut filter = MinSizeSink {
                                inner: &mut collect,
                                t,
                            };
                            let mut remap = RemapSink::new(&mut filter, map);
                            noip.run(&mut remap);
                        }
                        self.prepared.stats.merge(noip.stats());
                        *next_comp += 1;
                        self.buf.extend(collect.into_pairs());
                    } else if *next_singleton < self.prepared.inst.singletons().len() {
                        let v = self.prepared.inst.singletons()[*next_singleton];
                        *next_singleton += 1;
                        self.prepared.stats.calls += 1;
                        self.prepared.stats.max_depth = self.prepared.stats.max_depth.max(1);
                        self.prepared.stats.emitted += 1;
                        self.buf.push_back((vec![v], 1.0));
                    } else {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_core::builder::{from_edges, GraphBuilder};

    fn fixture() -> UncertainGraph {
        // Two triangles in separate components, an isolated vertex and a
        // sub-α edge — exercises sharding, singletons and pruning.
        from_edges(
            9,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (4, 5, 0.8),
                (5, 6, 0.8),
                (4, 6, 0.8),
                (7, 8, 0.3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builder_validates_eagerly() {
        let g = fixture();
        assert!(matches!(
            Query::new(&g).prepare(),
            Err(MuleError::AlphaNotSet)
        ));
        assert!(matches!(
            Query::new(&g).alpha(0.5).threads(0).prepare(),
            Err(MuleError::ZeroThreads)
        ));
        assert!(matches!(
            Query::new(&g).alpha(0.0).prepare(),
            Err(MuleError::Graph(GraphError::InvalidAlpha { .. }))
        ));
        assert!(matches!(
            Query::new(&g).alpha(1.5).prepare(),
            Err(MuleError::Graph(GraphError::InvalidAlpha { .. }))
        ));
        assert!(Query::new(&g).alpha(0.5).threads_auto().prepare().is_ok());
    }

    #[test]
    fn session_answers_all_query_shapes() {
        let g = fixture();
        let mut s = Query::new(&g).alpha(0.5).prepare().unwrap();
        let pairs = s.collect().unwrap();
        assert_eq!(s.count().unwrap() as usize, pairs.len());
        let cliques: Vec<_> = pairs.iter().map(|(c, _)| c.clone()).collect();
        assert_eq!(
            cliques,
            vec![vec![0, 1, 2], vec![3], vec![4, 5, 6], vec![7], vec![8]]
        );
        let top = s.top_k(2).unwrap();
        assert_eq!(top.len(), 2);
        assert!((top[0].1 - 1.0).abs() < 1e-12, "singletons are certain");
        let pulled: Vec<_> = s.iter().collect();
        assert_eq!(pulled, pairs, "pull iterator matches collect");
        assert!(matches!(s.top_k(0), Err(MuleError::ZeroTopK)));
    }

    #[test]
    fn min_size_and_threads_route_through_builder() {
        let g = fixture();
        let mut s = Query::new(&g).alpha(0.5).min_size(3).prepare().unwrap();
        let cliques: Vec<_> = s.collect().unwrap().into_iter().map(|(c, _)| c).collect();
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![4, 5, 6]]);
        let mut par = Query::new(&g)
            .alpha(0.5)
            .min_size(3)
            .threads(3)
            .prepare()
            .unwrap();
        let par_cliques: Vec<_> = par.collect().unwrap().into_iter().map(|(c, _)| c).collect();
        assert_eq!(par_cliques, cliques);
        assert_eq!(par.stats(), s.stats(), "merged stats equal sequential");
    }

    #[test]
    fn noip_engine_matches_auto() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.1] {
            let mut auto = Query::new(&g).alpha(alpha).prepare().unwrap();
            let mut noip = Query::new(&g)
                .alpha(alpha)
                .engine(Engine::Noip)
                .prepare()
                .unwrap();
            let mut a = auto.collect().unwrap();
            let mut b = noip.collect().unwrap();
            a.sort_by(|x, y| x.0.cmp(&y.0));
            b.sort_by(|x, y| x.0.cmp(&y.0));
            assert_eq!(a, b, "α={alpha}");
            let mut pulled: Vec<_> = noip.iter().collect();
            pulled.sort_by(|x, y| x.0.cmp(&y.0));
            assert_eq!(pulled, b, "α={alpha} (iter)");
        }
    }

    #[test]
    fn noip_stream_honors_early_stop_across_components() {
        // Stop during the first component must prevent any further
        // emission — later components and singletons stay silent.
        let g = fixture();
        let mut s = Query::new(&g)
            .alpha(0.5)
            .engine(Engine::Noip)
            .prepare()
            .unwrap();
        let mut calls = 0usize;
        let mut sink = crate::sinks::FnSink(|_c: &[VertexId], _p: f64| {
            calls += 1;
            Control::Stop
        });
        let stats = *s.stream(&mut sink).unwrap();
        assert!(stats.emitted >= 1);
        assert_eq!(calls, 1, "emissions after Control::Stop");
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g0 = GraphBuilder::new(0).build();
        for engine in [Engine::Auto, Engine::Noip] {
            let mut s = Query::new(&g0).alpha(0.5).engine(engine).prepare().unwrap();
            assert_eq!(s.collect().unwrap(), vec![(vec![], 1.0)], "{engine:?}");
            assert_eq!(s.iter().count(), 1, "{engine:?}");
            let mut bounded = Query::new(&g0)
                .alpha(0.5)
                .min_size(2)
                .engine(engine)
                .prepare()
                .unwrap();
            assert_eq!(
                bounded.count().unwrap(),
                0,
                "{engine:?}: empty clique misses t"
            );
        }
        let g3 = GraphBuilder::new(3).build();
        let mut s = Query::new(&g3).alpha(0.5).prepare().unwrap();
        assert_eq!(s.count().unwrap(), 3);
    }

    #[test]
    fn iter_is_lazy_and_abandonable() {
        let g = fixture();
        let mut s = Query::new(&g).alpha(0.5).prepare().unwrap();
        let total = s.count().unwrap();
        let first_two: Vec<_> = s.iter().take(2).collect();
        assert_eq!(first_two.len(), 2);
        assert!(
            s.stats().emitted < total,
            "abandoned iterator must not have run the whole search"
        );
    }

    #[test]
    fn error_display_and_sources() {
        let text = MuleError::AlphaNotSet.to_string();
        assert!(text.contains("alpha"));
        assert!(MuleError::ZeroThreads.to_string().contains("at least 1"));
        assert!(MuleError::ZeroTopK.to_string().contains("k = 0"));
        assert!(MuleError::AlphaBelowFloor {
            alpha: 0.2,
            floor: 0.5
        }
        .to_string()
        .contains("floor"));
        let ge: MuleError = GraphError::InvalidAlpha { value: 2.0 }.into();
        use std::error::Error;
        assert!(ge.source().is_some());
        let io: MuleError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(io.source().is_some());
    }

    #[test]
    fn base_refines_byte_identically_across_engines_and_settings() {
        let g = fixture();
        for engine in [Engine::Auto, Engine::Noip] {
            for t in [0usize, 3] {
                let base = Query::new(&g)
                    .min_size(t)
                    .engine(engine)
                    .prepare_base()
                    .unwrap();
                for alpha in [0.9, 0.5, 0.25] {
                    let mut refined = base.refine(alpha).unwrap();
                    let mut fresh = Query::new(&g)
                        .alpha(alpha)
                        .min_size(t)
                        .engine(engine)
                        .prepare()
                        .unwrap();
                    assert_eq!(
                        refined.collect().unwrap(),
                        fresh.collect().unwrap(),
                        "{engine:?} t={t} α={alpha}"
                    );
                    assert_eq!(refined.stats(), fresh.stats(), "{engine:?} t={t} α={alpha}");
                    assert_eq!(
                        refined.report(),
                        fresh.report(),
                        "{engine:?} t={t} α={alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn base_floor_is_enforced_and_validated() {
        let g = fixture();
        assert!(matches!(
            Query::new(&g).alpha_floor(1.5).prepare_base(),
            Err(MuleError::Graph(GraphError::InvalidAlpha { .. }))
        ));
        assert!(matches!(
            Query::new(&g).threads(0).prepare_base(),
            Err(MuleError::ZeroThreads)
        ));
        let base = Query::new(&g).alpha_floor(0.5).prepare_base().unwrap();
        assert_eq!(base.floor(), 0.5);
        assert!(matches!(
            base.refine(0.25),
            Err(MuleError::AlphaBelowFloor { .. })
        ));
        assert!(matches!(
            base.refine(1.5),
            Err(MuleError::Graph(GraphError::InvalidAlpha { .. }))
        ));
        // At or above the floor everything works, byte-identically.
        let mut at_floor = base.refine(0.5).unwrap();
        let mut fresh = Query::new(&g).alpha(0.5).prepare().unwrap();
        assert_eq!(at_floor.collect().unwrap(), fresh.collect().unwrap());
    }

    #[test]
    fn base_catalog_round_trip_through_session_api() {
        let g = fixture();
        let base = Query::new(&g).prepare_base().unwrap();
        let bytes = base.to_catalog_bytes();
        let runs_before = crate::prepare::pipeline_invocations();
        let mut reopened = Query::open_base_bytes(bytes).unwrap();
        assert_eq!(
            crate::prepare::pipeline_invocations(),
            runs_before,
            "open_base must not run the pipeline"
        );
        reopened.set_threads(2).unwrap();
        assert!(reopened.set_threads(0).is_err());
        reopened.set_engine(Engine::Noip);
        for alpha in [0.9, 0.5] {
            let mut a = reopened.refine(alpha).unwrap();
            // Same runtime template on the fresh side: the contract is
            // byte-identity under *equal* settings.
            let mut b = Query::new(&g)
                .alpha(alpha)
                .threads(2)
                .engine(Engine::Noip)
                .prepare()
                .unwrap();
            assert_eq!(a.collect().unwrap(), b.collect().unwrap(), "α={alpha}");
        }
        // File round trip through save/open_base.
        let path = std::env::temp_dir().join("mule-query-base-roundtrip.ugq");
        base.save(&path).unwrap();
        let from_file = Query::open_base(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(from_file.floor(), base.floor());
        assert_eq!(from_file.num_components(), base.num_components());
        // Wrong-kind opens are typed in both directions.
        let fixed = Query::new(&g).alpha(0.5).prepare().unwrap();
        assert!(matches!(
            Query::open_base_bytes(fixed.to_catalog_bytes()),
            Err(MuleError::Catalog(CatalogError::WrongKind { .. }))
        ));
        assert!(matches!(
            Query::open_bytes(base.to_catalog_bytes()),
            Err(MuleError::Catalog(CatalogError::WrongKind { .. }))
        ));
    }
}
