//! Combinatorial bounds from Section 3 of the paper.
//!
//! * Theorem 1: for any `0 < α < 1`, the maximum number of α-maximal
//!   cliques on `n` vertices is exactly the central binomial coefficient
//!   `g(n) = C(n, ⌊n/2⌋)`.
//! * Moon–Moser (1965): for deterministic graphs (`α = 1`) the maximum is
//!   `3^{n/3}` (with the `n mod 3` adjustments).
//! * Observation 5: since `g(n) = Θ(2^n / √n)` and each clique has up to
//!   `Θ(n)` vertices, any enumeration algorithm needs `Ω(√n · 2^n)` time;
//!   MULE's `O(n · 2^n)` (Theorem 3) is within `O(√n)` of optimal.

/// Exact binomial coefficient `C(n, k)` in `u128`.
///
/// Returns `None` on overflow of the *result*. The multiplicative formula
/// reduces the divisor against both operands by GCD before multiplying, so
/// intermediates never exceed the final value times the current numerator —
/// `C(127, 63)` (≈ 1.5 × 10³⁷) computes without tripping on the
/// `acc × (n−i)` blow-up a naive loop would hit.
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    fn gcd(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        let mut num = (n - i) as u128;
        let mut den = (i + 1) as u128;
        // den divides acc · num (each C(n, i+1) is an integer); peeling the
        // common factors off acc and then num always reduces den to 1.
        let g = gcd(acc, den);
        acc /= g;
        den /= g;
        let g = gcd(num, den);
        num /= g;
        den /= g;
        debug_assert_eq!(den, 1, "binomial divisor did not cancel");
        acc = acc.checked_mul(num)?;
    }
    Some(acc)
}

/// Theorem 1: `f(n, α) = C(n, ⌊n/2⌋)` for `0 < α < 1`, `n ≥ 2`.
/// (For `n = 0` the only graph has one maximal clique, the empty set; for
/// `n = 1`, one singleton — both equal `C(n, ⌊n/2⌋)` anyway.)
pub fn max_alpha_maximal_cliques(n: u64) -> Option<u128> {
    binomial(n, n / 2)
}

/// Moon–Moser bound: the maximum number of maximal cliques in a
/// *deterministic* graph on `n ≥ 2` vertices. `3^{n/3}` when `3 | n`,
/// `4·3^{(n-4)/3}` when `n ≡ 1 (mod 3)`, `2·3^{(n-2)/3}` when `n ≡ 2`.
///
/// For `n < 2` returns 1 (the empty/singleton clique). Note `n = 2`
/// yields 2 — the *edgeless* pair has two maximal singleton cliques,
/// matching the general `2·3^{(n−2)/3}` branch.
pub fn moon_moser(n: usize) -> u128 {
    match n {
        0 | 1 => 1,
        _ => match n % 3 {
            0 => 3u128.pow(n as u32 / 3),
            1 => 4 * 3u128.pow((n as u32 - 4) / 3),
            _ => 2 * 3u128.pow((n as u32 - 2) / 3),
        },
    }
}

/// Simple valid lower bound on `C(n, ⌊n/2⌋)`: the largest of the `n + 1`
/// binomials summing to `2^n` is at least their average, `2^n / (n + 1)`.
/// Observation 5 only needs `C(n, ⌊n/2⌋) = Θ(2^n / √n)` (Stirling); this
/// elementary bound already certifies the exponential growth, and the exact
/// value is available from [`max_alpha_maximal_cliques`] for any `n` where
/// it fits in `u128`.
pub fn central_binomial_lower_bound(n: u64) -> f64 {
    2f64.powi(n as i32) / (n as f64 + 1.0)
}

/// The paper's output-size lower bound (Observation 5): there are graphs
/// whose α-maximal-clique listing has total size `Ω(√n · 2^n)` vertex ids;
/// this returns the witness value `(n/2) · C(n, ⌊n/2⌋)` (every extremal
/// clique has `⌊n/2⌋` vertices).
pub fn output_size_lower_bound(n: u64) -> Option<u128> {
    Some(max_alpha_maximal_cliques(n)? * (n as u128 / 2).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), Some(1));
        assert_eq!(binomial(5, 0), Some(1));
        assert_eq!(binomial(5, 5), Some(1));
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(10, 5), Some(252));
        assert_eq!(binomial(4, 7), Some(0));
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..60u64 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k).unwrap(),
                    binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap(),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..40u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn binomial_large_does_not_overflow_u128_for_n_127() {
        // C(127, 63) ≈ 1.5e37 < u128::MAX ≈ 3.4e38.
        assert!(binomial(127, 63).is_some());
    }

    #[test]
    fn central_binomial_matches_known_values() {
        assert_eq!(max_alpha_maximal_cliques(2), Some(2)); // C(2,1)
        assert_eq!(max_alpha_maximal_cliques(3), Some(3)); // C(3,1)
        assert_eq!(max_alpha_maximal_cliques(4), Some(6));
        assert_eq!(max_alpha_maximal_cliques(5), Some(10));
        assert_eq!(max_alpha_maximal_cliques(10), Some(252));
    }

    #[test]
    fn moon_moser_known_values() {
        assert_eq!(moon_moser(3), 3);
        assert_eq!(moon_moser(4), 4);
        assert_eq!(moon_moser(5), 6);
        assert_eq!(moon_moser(6), 9);
        assert_eq!(moon_moser(7), 12);
        assert_eq!(moon_moser(9), 27);
        assert_eq!(moon_moser(0), 1);
        assert_eq!(moon_moser(2), 2); // edgeless pair: two maximal singletons
    }

    /// Section 3's headline comparison: uncertainty increases the worst
    /// case — `g(n) ≥ MoonMoser(n)` everywhere, strictly from n = 4 on
    /// (at n = 3 both equal 3).
    #[test]
    fn uncertain_bound_dominates_deterministic() {
        for n in 2..60usize {
            let g = max_alpha_maximal_cliques(n as u64).unwrap();
            let mm = moon_moser(n);
            assert!(g >= mm, "n = {n}");
            if n >= 4 {
                assert!(g > mm, "n = {n} should be strict");
            }
        }
    }

    #[test]
    fn stirling_lower_bound_is_a_lower_bound() {
        for n in 1..100u64 {
            let exact = max_alpha_maximal_cliques(n).unwrap() as f64;
            assert!(
                central_binomial_lower_bound(n) <= exact,
                "n = {n}: {} > {exact}",
                central_binomial_lower_bound(n)
            );
        }
    }

    #[test]
    fn output_size_bound_scales() {
        assert_eq!(output_size_lower_bound(4), Some(12)); // 6 cliques × 2
        assert_eq!(output_size_lower_bound(1), Some(1));
    }
}
