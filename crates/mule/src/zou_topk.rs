//! The related-work problem (Zou, Li, Gao, Zhang — "Finding top-k maximal
//! cliques in an uncertain graph", ICDE 2010; reference 47 of the paper):
//! among the maximal cliques of the **deterministic skeleton**, find the
//! `k` with the highest clique probability.
//!
//! This differs from the paper's problem in exactly the ways Section 1.2
//! lists: maximality is skeleton-maximality (no α in the definition), and
//! only `k` results are returned. We implement it as a branch-and-bound
//! Bron–Kerbosch:
//!
//! * the search state carries `clq(R)` incrementally (one multiplication
//!   per extension, MULE's trick transplanted);
//! * since every superset of `R` has probability ≤ `clq(R)` (Observation
//!   2), a subtree can be pruned as soon as `clq(R)` falls below the
//!   current k-th best probability — a sound upper bound;
//! * a bounded min-heap keeps the best `k` found so far, so the threshold
//!   tightens as the search proceeds.
//!
//! Implementing the comparator lets the harness demonstrate the semantic
//! difference between the two problems on the same inputs (see the tests:
//! the top-k skeleton-maximal clique can fail to be α-maximal and vice
//! versa).

use crate::sinks::{CliqueSink, TopKSink};
use ugraph_core::{UncertainGraph, VertexId};

/// Statistics from a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZouStats {
    /// Search nodes expanded.
    pub nodes: u64,
    /// Subtrees cut by the probability bound.
    pub bound_pruned: u64,
    /// Skeleton-maximal cliques reaching the heap.
    pub emitted: u64,
}

/// Find the `k` skeleton-maximal cliques with the highest clique
/// probability. Returns `(results, stats)`; results are sorted by
/// probability descending, ties broken lexicographically.
pub fn zou_top_k(
    g: &UncertainGraph,
    k: usize,
    mut min_prob: f64,
) -> (Vec<(Vec<VertexId>, f64)>, ZouStats) {
    assert!(
        (0.0..=1.0).contains(&min_prob),
        "min_prob must be a probability"
    );
    let mut sink = TopKSink::new(k);
    let mut stats = ZouStats::default();
    if k == 0 {
        return (Vec::new(), stats);
    }
    let mut r: Vec<VertexId> = Vec::new();
    let p: Vec<VertexId> = g.vertices().collect();
    bb_recurse(
        g,
        &mut r,
        1.0,
        p,
        Vec::new(),
        &mut sink,
        &mut min_prob,
        &mut stats,
    );
    (sink.into_sorted(), stats)
}

#[allow(clippy::too_many_arguments)]
fn bb_recurse(
    g: &UncertainGraph,
    r: &mut Vec<VertexId>,
    q: f64,
    p: Vec<VertexId>,
    x: Vec<VertexId>,
    sink: &mut TopKSink,
    threshold: &mut f64,
    stats: &mut ZouStats,
) {
    stats.nodes += 1;
    // Bound: no extension of R can beat the current k-th best.
    if q < *threshold {
        stats.bound_pruned += 1;
        return;
    }
    if p.is_empty() && x.is_empty() {
        stats.emitted += 1;
        let mut clique = r.clone();
        clique.sort_unstable();
        let _ = sink.emit(&clique, q);
        // Tighten the admission threshold once the heap is full.
        if let Some(t) = sink.threshold() {
            *threshold = threshold.max(t);
        }
        return;
    }
    // Tomita pivot on the skeleton.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| g.contains_edge(u, w)).count())
        .expect("P ∪ X non-empty");
    let branch: Vec<VertexId> = p
        .iter()
        .copied()
        .filter(|&v| !g.contains_edge(pivot, v))
        .collect();
    let mut p = p;
    let mut x = x;
    for v in branch {
        // clq(R ∪ {v}) = q · ∏_{u ∈ R} p(u, v): |R| multiplications, each
        // edge guaranteed present because the search keeps R a clique.
        let mut q2 = q;
        for &u in r.iter() {
            q2 *= g.edge_prob_raw(u, v).expect("R ∪ {v} is a clique");
        }
        let p2: Vec<VertexId> = p
            .iter()
            .copied()
            .filter(|&w| g.contains_edge(v, w))
            .collect();
        let x2: Vec<VertexId> = x
            .iter()
            .copied()
            .filter(|&w| g.contains_edge(v, w))
            .collect();
        r.push(v);
        bb_recurse(g, r, q2, p2, x2, sink, threshold, stats);
        r.pop();
        p.retain(|&w| w != v);
        x.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deterministic::bron_kerbosch;
    use ugraph_core::builder::{complete_graph, from_edges};
    use ugraph_core::{clique, Prob};

    /// Reference: enumerate all skeleton-maximal cliques, rank by prob.
    fn reference_top_k(g: &UncertainGraph, k: usize) -> Vec<(Vec<VertexId>, f64)> {
        let mut all: Vec<(Vec<VertexId>, f64)> = bron_kerbosch(g)
            .into_iter()
            .map(|c| {
                let p = clique::clique_probability(g, &c).unwrap();
                (c, p)
            })
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    fn fixture() -> UncertainGraph {
        from_edges(
            6,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9), // strong triangle: 0.729
                (2, 3, 0.99),
                (3, 4, 0.2),
                (4, 5, 0.3),
                (3, 5, 0.25), // weak triangle: 0.015
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_reference_on_fixture() {
        let g = fixture();
        for k in [1, 2, 3, 10] {
            let (got, _) = zou_top_k(&g, k, 0.0);
            assert_eq!(got, reference_top_k(&g, k), "k = {k}");
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for trial in 0..20 {
            let n = 8 + trial % 6;
            let mut b = ugraph_core::GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.5 {
                        b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
                    }
                }
            }
            let g = b.build();
            for k in [1, 3, 7] {
                let (got, _) = zou_top_k(&g, k, 0.0);
                let expected = reference_top_k(&g, k);
                // The branch-and-bound multiplies factors in DFS insertion
                // order while the reference multiplies pairwise-sorted, so
                // probabilities may differ in the last ULP; compare sets
                // exactly and probabilities with relative tolerance.
                assert_eq!(
                    got.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>(),
                    expected.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>(),
                    "trial {trial}, k {k}"
                );
                for ((_, p1), (_, p2)) in got.iter().zip(&expected) {
                    assert!((p1 - p2).abs() <= 1e-12 * p2.max(1e-300), "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn bound_prunes_without_changing_results() {
        let g = complete_graph(9, Prob::new(0.5).unwrap());
        // K9's only maximal clique is everything; with k = 1 the threshold
        // never helps, so test on a looser structure:
        let g2 = fixture();
        let (unbounded, s1) = zou_top_k(&g2, 1, 0.0);
        let (bounded, s2) = zou_top_k(&g2, 1, 0.5); // seed threshold
        assert_eq!(unbounded, bounded);
        assert!(s2.bound_pruned >= s1.bound_pruned);
        let _ = g;
    }

    #[test]
    fn semantic_difference_from_alpha_maximality() {
        // Skeleton-maximal top-1 is the whole weak triangle {3,4,5} ∪ …?
        // Build a case where the *skeleton*-maximal clique has tiny
        // probability while a subset is α-maximal:
        let g = from_edges(3, &[(0, 1, 0.9), (1, 2, 0.1), (0, 2, 0.1)]).unwrap();
        // Skeleton-maximal: the full triangle only (prob 0.009).
        let (zou, _) = zou_top_k(&g, 1, 0.0);
        assert_eq!(zou[0].0, vec![0, 1, 2]);
        // α-maximal at α = 0.5: the heavy edge {0,1} — which is NOT
        // skeleton-maximal — plus vertex 2, isolated once its weak edges
        // are pruned.
        let alpha_cliques = crate::enumerate_maximal_cliques(&g, 0.5).unwrap();
        assert_eq!(alpha_cliques, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn k_zero_and_empty_graph() {
        let g = fixture();
        assert!(zou_top_k(&g, 0, 0.0).0.is_empty());
        let empty = ugraph_core::GraphBuilder::new(0).build();
        let (got, _) = zou_top_k(&empty, 3, 0.0);
        assert_eq!(got, vec![(vec![], 1.0)]);
    }

    #[test]
    #[should_panic]
    fn invalid_min_prob_rejected() {
        let _ = zou_top_k(&fixture(), 1, 1.5);
    }
}
