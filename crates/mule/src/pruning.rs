//! Shared-neighborhood filtering (Modani & Dey (paper ref 34)), the preprocessing
//! step of LARGE–MULE (Section 4.3).
//!
//! When only maximal cliques with at least `t` vertices are wanted, any
//! clique of interest satisfies, inside the clique alone:
//!
//! * every edge `{u, v}` has at least `t − 2` common neighbors, and
//! * every vertex has degree at least `t − 1`.
//!
//! Deleting edges/vertices that violate these conditions — *recursively,
//! to a fixpoint*, since deletions reduce degrees and shared neighborhoods
//! elsewhere — cannot remove any vertex or edge of a clique with ≥ t
//! vertices (each survives every round by induction, because the rest of
//! the clique is still present). The α-edge pruning of Observation 3 is
//! applied first so that "clique" here means "α-feasible clique".
//!
//! The fixpoint is computed by batched peeling rounds over *dirty*
//! vertices: removing edge `{u, v}` only changes `Γ(u)` and `Γ(v)`, so a
//! round only re-examines edges incident to vertices touched in the
//! previous round. Each examination is an `O(deg)` sorted-merge
//! intersection. Batching (rather than a per-edge work queue) keeps the
//! removal of a hub's edges from fanning out into quadratic re-checks.

use ugraph_core::{subgraph, GraphBuilder, GraphError, UncertainGraph, VertexId};

/// Outcome counters for a pruning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Edges removed because `p(e) < α` (Observation 3).
    pub alpha_pruned_edges: usize,
    /// Edges removed by the shared-neighborhood / degree conditions.
    pub shared_pruned_edges: usize,
    /// Vertices that had qualifying edges after α-pruning but lost all of
    /// them to the shared-neighborhood peel (the vertex ids remain valid;
    /// the vertices just become isolated).
    pub degree_pruned_vertices: usize,
    /// Edge examinations performed by the peeling queue (a work measure;
    /// at least `m` because every edge is checked once).
    pub examinations: usize,
}

/// Apply α-pruning followed by shared-neighborhood filtering for size
/// threshold `t`. Returns the pruned graph (same vertex-id space) and a
/// report of what was removed.
///
/// For `t ≤ 2` only the α-pruning applies (every edge trivially satisfies
/// the conditions).
pub fn shared_neighborhood_filter(
    g: &UncertainGraph,
    alpha: f64,
    t: usize,
) -> Result<(UncertainGraph, PruneReport), GraphError> {
    let pruned = subgraph::prune_below_alpha(g, alpha)?;
    let alpha_pruned_edges = g.num_edges() - pruned.num_edges();
    if t <= 2 {
        let report = PruneReport {
            alpha_pruned_edges,
            ..Default::default()
        };
        return Ok((pruned, report));
    }
    let (peeled, mut report) = shared_neighborhood_peel(&pruned, t)?;
    report.alpha_pruned_edges = alpha_pruned_edges;
    Ok((peeled, report))
}

/// The shared-neighborhood fixpoint alone, **assuming `g` is already
/// α-pruned** (so "clique" in the soundness argument means "α-feasible
/// clique" — see module docs). The preprocessing pipeline
/// (`crate::prepare`) calls this directly for its stage 3, having
/// α-pruned in stage 1; calling it on an unpruned graph peels against
/// deterministic cliques instead, which is still a valid (weaker)
/// filter but not what LARGE–MULE's preprocessing specifies.
///
/// For `t ≤ 2` the conditions are vacuous and the graph is returned
/// unchanged (a copy).
pub fn shared_neighborhood_peel(
    g: &UncertainGraph,
    t: usize,
) -> Result<(UncertainGraph, PruneReport), GraphError> {
    let mut report = PruneReport::default();
    if t <= 2 {
        return Ok((g.clone(), report));
    }
    let need_common = t - 2; // per-edge common-neighbor requirement
    let need_degree = t - 1; // per-vertex degree requirement

    // Mutable adjacency: sorted neighbor lists with parallel probabilities.
    let n = g.num_vertices();
    let mut adj: Vec<Vec<(VertexId, f64)>> = (0..n as VertexId)
        .map(|v| g.neighbors_with_probs(v).collect())
        .collect();
    let had_edges: Vec<bool> = adj.iter().map(|a| !a.is_empty()).collect();

    // Batched rounds over "dirty" vertices: the first round examines every
    // edge; later rounds only examine edges incident to a vertex whose
    // adjacency changed. Removing edge {u, v} only alters Γ(u)/Γ(v), so
    // this reaches the same fixpoint while touching a shrinking frontier —
    // and batching keeps hub removals from flooding a per-edge work queue.
    let mut dirty = vec![true; n];
    loop {
        let mut removals: Vec<(VertexId, VertexId)> = Vec::new();
        for u in 0..n as VertexId {
            for &(v, _) in &adj[u as usize] {
                if u < v && (dirty[u as usize] || dirty[v as usize]) {
                    report.examinations += 1;
                    let fails = adj[u as usize].len() < need_degree
                        || adj[v as usize].len() < need_degree
                        || common_count(&adj[u as usize], &adj[v as usize]) < need_common;
                    if fails {
                        removals.push((u, v));
                    }
                }
            }
        }
        if removals.is_empty() {
            break;
        }
        dirty.iter_mut().for_each(|d| *d = false);
        for &(u, v) in &removals {
            remove_edge(&mut adj, u, v);
            dirty[u as usize] = true;
            dirty[v as usize] = true;
        }
        report.shared_pruned_edges += removals.len();
    }

    report.degree_pruned_vertices = (0..n)
        .filter(|&v| had_edges[v] && adj[v].is_empty())
        .count();

    // Rebuild an UncertainGraph from the surviving adjacency.
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for &(v, p) in &adj[u as usize] {
            if u < v {
                b.add_edge(u, v, p)?;
            }
        }
    }
    Ok((b.try_build()?.with_name(g.name().to_string()), report))
}

/// Size of the intersection of two sorted `(vertex, prob)` lists.
fn common_count(a: &[(VertexId, f64)], b: &[(VertexId, f64)]) -> usize {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Remove the undirected edge `{u, v}` from both adjacency lists.
fn remove_edge(adj: &mut [Vec<(VertexId, f64)>], u: VertexId, v: VertexId) {
    if let Ok(i) = adj[u as usize].binary_search_by_key(&v, |&(w, _)| w) {
        adj[u as usize].remove(i);
    }
    if let Ok(i) = adj[v as usize].binary_search_by_key(&u, |&(w, _)| w) {
        adj[v as usize].remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_core::builder::{complete_graph, from_edges};
    use ugraph_core::Prob;

    #[test]
    fn t_two_only_alpha_prunes() {
        let g = from_edges(3, &[(0, 1, 0.9), (1, 2, 0.1)]).unwrap();
        let (p, r) = shared_neighborhood_filter(&g, 0.5, 2).unwrap();
        assert_eq!(p.num_edges(), 1);
        assert_eq!(r.alpha_pruned_edges, 1);
        assert_eq!(r.shared_pruned_edges, 0);
    }

    #[test]
    fn complete_graph_survives_up_to_its_size() {
        let g = complete_graph(5, Prob::new(0.9).unwrap());
        for t in 2..=5 {
            let (p, _) = shared_neighborhood_filter(&g, 0.1, t).unwrap();
            assert_eq!(p.num_edges(), 10, "t = {t}");
        }
        let (p, r) = shared_neighborhood_filter(&g, 0.1, 6).unwrap();
        assert_eq!(p.num_edges(), 0, "no 6-clique in K5");
        assert_eq!(r.degree_pruned_vertices, 5);
    }

    #[test]
    fn pendant_edges_removed_for_triangle_threshold() {
        // Triangle {0,1,2} with a pendant chain 2-3-4.
        let g = from_edges(
            5,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (2, 3, 0.9),
                (3, 4, 0.9),
            ],
        )
        .unwrap();
        let (p, r) = shared_neighborhood_filter(&g, 0.5, 3).unwrap();
        assert_eq!(p.num_edges(), 3, "only the triangle survives");
        assert!(p.contains_edge(0, 1) && p.contains_edge(1, 2) && p.contains_edge(0, 2));
        assert!(r.shared_pruned_edges >= 2);
        assert!(r.examinations >= 5, "every edge examined at least once");
    }

    #[test]
    fn pruning_cascades_to_fixpoint() {
        // Two triangles sharing vertex 2 plus a chord: requiring t = 4
        // kills everything (no K4 anywhere), and the removals must cascade.
        let g = from_edges(
            5,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (2, 3, 0.9),
                (3, 4, 0.9),
                (2, 4, 0.9),
            ],
        )
        .unwrap();
        let (p, r) = shared_neighborhood_filter(&g, 0.5, 4).unwrap();
        assert_eq!(p.num_edges(), 0);
        assert_eq!(r.shared_pruned_edges, 6);
    }

    #[test]
    fn k4_with_tail_keeps_k4_at_t4() {
        let mut edges = vec![(4, 5, 0.9), (5, 0, 0.9)];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v, 0.9));
            }
        }
        let g = from_edges(6, &edges).unwrap();
        let (p, _) = shared_neighborhood_filter(&g, 0.5, 4).unwrap();
        assert_eq!(p.num_edges(), 6);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                assert!(p.contains_edge(u, v));
            }
        }
    }

    /// The safety property LARGE–MULE relies on: pruning never removes an
    /// edge of an α-clique with ≥ t vertices.
    #[test]
    fn preserves_large_clique_edges() {
        // K4 at p=0.8 overlapping a K3 at p=0.8, α small.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v, 0.8));
            }
        }
        edges.push((3, 4, 0.8));
        edges.push((3, 5, 0.8));
        edges.push((4, 5, 0.8));
        let g = from_edges(6, &edges).unwrap();
        let (p, _) = shared_neighborhood_filter(&g, 0.01, 4).unwrap();
        // The K4 {0,1,2,3} must be intact; the K3 {3,4,5} may vanish.
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                assert!(p.contains_edge(u, v), "({u},{v}) lost");
            }
        }
        assert!(!p.contains_edge(4, 5));
    }

    /// Randomized cross-check against a trivially-correct fixpoint loop.
    #[test]
    fn queue_peeling_matches_naive_fixpoint() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        for trial in 0..20 {
            let n = 12 + trial % 6;
            let mut b = ugraph_core::GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.5 {
                        b.add_edge(u, v, 0.9).unwrap();
                    }
                }
            }
            let g = b.build();
            for t in 3..=5 {
                let (fast, _) = shared_neighborhood_filter(&g, 0.5, t).unwrap();
                let slow = naive_fixpoint(&g, t);
                let fast_edges: Vec<_> = fast.edges().map(|(u, v, _)| (u, v)).collect();
                assert_eq!(fast_edges, slow, "trial {trial}, t = {t}");
            }
        }
    }

    /// Reference implementation: recompute every condition each round.
    fn naive_fixpoint(g: &UncertainGraph, t: usize) -> Vec<(VertexId, VertexId)> {
        let n = g.num_vertices();
        let mut edges: std::collections::BTreeSet<(VertexId, VertexId)> =
            g.edges().map(|(u, v, _)| (u, v)).collect();
        loop {
            let nbrs = |v: VertexId, edges: &std::collections::BTreeSet<(VertexId, VertexId)>| {
                (0..n as VertexId)
                    .filter(|&w| w != v && edges.contains(&if v < w { (v, w) } else { (w, v) }))
                    .collect::<Vec<_>>()
            };
            let mut next = edges.clone();
            for &(u, v) in &edges {
                let nu = nbrs(u, &edges);
                let nv = nbrs(v, &edges);
                let common = nu.iter().filter(|w| nv.contains(w)).count();
                if common < t - 2 || nu.len() < t - 1 || nv.len() < t - 1 {
                    next.remove(&(u, v));
                }
            }
            if next == edges {
                return edges.into_iter().collect();
            }
            edges = next;
        }
    }

    #[test]
    fn vertex_ids_stay_stable() {
        let g = from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.9)]).unwrap();
        let (p, _) = shared_neighborhood_filter(&g, 0.5, 3).unwrap();
        assert_eq!(p.num_vertices(), 4);
    }
}
