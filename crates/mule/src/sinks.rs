//! Output sinks for clique enumeration.
//!
//! All enumeration algorithms in this crate *emit* maximal cliques through
//! the [`CliqueSink`] trait instead of materializing a `Vec<Vec<VertexId>>`.
//! The paper's output can be as large as `Ω(√n · 2^n)` (Observation 5), so
//! counting runs (Figures 3, 4, 6) must not allocate per clique, and the
//! runtime experiments time exactly the enumeration, not result storage.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use ugraph_core::VertexId;

/// Flow control returned by a sink: keep enumerating or stop early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Continue the enumeration.
    Continue,
    /// Abort the enumeration as soon as possible (the algorithms unwind
    /// without emitting further cliques).
    Stop,
}

/// Receiver for enumerated α-maximal cliques.
///
/// `clique` is in canonical form — vertex ids strictly increasing — and
/// `prob` is `clq(C, G)`, maintained incrementally by the caller.
pub trait CliqueSink {
    /// Handle one maximal clique. Return [`Control::Stop`] to end the
    /// enumeration early (used by e.g. "first k" queries).
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control;
}

/// Counts cliques (and total output size) without storing them.
#[derive(Debug, Default, Clone)]
pub struct CountSink {
    /// Number of maximal cliques emitted.
    pub count: u64,
    /// Total number of vertex ids across all emitted cliques — the paper's
    /// "output size" notion in Observation 5.
    pub total_vertices: u64,
    /// Size of the largest clique seen.
    pub max_size: usize,
}

impl CountSink {
    /// New, zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CliqueSink for CountSink {
    fn emit(&mut self, clique: &[VertexId], _prob: f64) -> Control {
        self.count += 1;
        self.total_vertices += clique.len() as u64;
        self.max_size = self.max_size.max(clique.len());
        Control::Continue
    }
}

/// Collects cliques (and probabilities) into vectors.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    cliques: Vec<Vec<VertexId>>,
    probs: Vec<f64>,
}

impl CollectSink {
    /// New, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cliques collected so far.
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// The collected cliques.
    pub fn cliques(&self) -> &[Vec<VertexId>] {
        &self.cliques
    }

    /// The collected probabilities, parallel to [`Self::cliques`].
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Consume into the clique list, sorted lexicographically for
    /// deterministic comparison in tests.
    pub fn into_sorted_cliques(mut self) -> Vec<Vec<VertexId>> {
        self.cliques.sort();
        self.cliques
    }

    /// Consume into `(clique, prob)` pairs in emission order.
    pub fn into_pairs(self) -> Vec<(Vec<VertexId>, f64)> {
        self.cliques.into_iter().zip(self.probs).collect()
    }
}

impl CliqueSink for CollectSink {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        self.cliques.push(clique.to_vec());
        self.probs.push(prob);
        Control::Continue
    }
}

/// Translates compact (remapped) vertex ids back to original ids on
/// emission — the sink-layer half of the preprocessing pipeline
/// (`mule::prepare`): enumerators run on dense per-component ids and
/// this adapter folds the id translation into the emission path.
///
/// The map must be **monotone** (strictly increasing, as produced by
/// component sharding, where a component's vertices keep their relative
/// order), so a canonical (ascending) clique stays canonical after
/// translation with no re-sort — checked in debug builds. For
/// non-monotone relabelings (e.g. degeneracy orders) use the sorting
/// translator inside `mule::enumerate` instead.
pub struct RemapSink<'a, S: CliqueSink> {
    inner: &'a mut S,
    to_original: &'a [VertexId],
    scratch: Vec<VertexId>,
}

impl<'a, S: CliqueSink> RemapSink<'a, S> {
    /// Wrap `inner`, translating each emitted vertex `v` to
    /// `to_original[v]`.
    pub fn new(inner: &'a mut S, to_original: &'a [VertexId]) -> Self {
        debug_assert!(to_original.windows(2).all(|w| w[0] < w[1]));
        RemapSink {
            inner,
            to_original,
            scratch: Vec::new(),
        }
    }
}

impl<S: CliqueSink> CliqueSink for RemapSink<'_, S> {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        // One translation implementation for the whole crate: the
        // borrowed-scratch adapter in `prepare` (which carries the
        // monotonicity debug_assert).
        crate::prepare::Remap {
            inner: &mut *self.inner,
            map: self.to_original,
            scratch: &mut self.scratch,
        }
        .emit(clique, prob)
    }
}

/// Adapts a closure `FnMut(&[VertexId], f64) -> Control` into a sink.
pub struct FnSink<F>(pub F);

impl<F: FnMut(&[VertexId], f64) -> Control> CliqueSink for FnSink<F> {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        (self.0)(clique, prob)
    }
}

/// Stops after the first `limit` cliques, collecting them.
#[derive(Debug)]
pub struct FirstKSink {
    limit: usize,
    inner: CollectSink,
}

impl FirstKSink {
    /// Collect at most `limit` cliques, then stop the enumeration.
    pub fn new(limit: usize) -> Self {
        FirstKSink {
            limit,
            inner: CollectSink::new(),
        }
    }

    /// The collected cliques (at most `limit`).
    pub fn into_cliques(self) -> Vec<Vec<VertexId>> {
        self.inner.cliques
    }
}

impl CliqueSink for FirstKSink {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        if self.inner.len() >= self.limit {
            return Control::Stop;
        }
        self.inner.emit(clique, prob);
        if self.inner.len() >= self.limit {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Histogram of maximal-clique sizes: `hist[k]` counts cliques with `k`
/// vertices. Drives the Figure 6 style size-distribution reports.
#[derive(Debug, Default, Clone)]
pub struct SizeHistogramSink {
    hist: Vec<u64>,
}

impl SizeHistogramSink {
    /// New, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// `hist[k]` = number of maximal cliques of size `k`.
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Number of cliques with size ≥ `t` — the Figure 6 y-axis.
    pub fn count_at_least(&self, t: usize) -> u64 {
        self.hist.iter().skip(t).sum()
    }

    /// Total cliques observed.
    pub fn total(&self) -> u64 {
        self.hist.iter().sum()
    }
}

impl CliqueSink for SizeHistogramSink {
    fn emit(&mut self, clique: &[VertexId], _prob: f64) -> Control {
        let k = clique.len();
        if self.hist.len() <= k {
            self.hist.resize(k + 1, 0);
        }
        self.hist[k] += 1;
        Control::Continue
    }
}

/// Entry in the top-k heap: ordered by probability ascending so the heap
/// root is the *weakest* retained clique.
#[derive(Debug, Clone)]
struct HeapEntry {
    prob: f64,
    clique: Vec<VertexId>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.prob == other.prob && self.clique == other.clique
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want to pop the minimum
        // probability first. Ties break on the clique itself so ordering is
        // total and deterministic.
        other
            .prob
            .total_cmp(&self.prob)
            .then_with(|| other.clique.cmp(&self.clique))
    }
}

/// Retains the `k` maximal cliques with the highest clique probability —
/// the query shape studied by Zou et al. (paper ref 47), restricted to α-maximal
/// cliques (see `mule::topk`).
#[derive(Debug)]
pub struct TopKSink {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopKSink {
    /// Keep the `k` most probable cliques.
    pub fn new(k: usize) -> Self {
        TopKSink {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The current k-th best probability (threshold for admission), if the
    /// heap is full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.prob)
        } else {
            None
        }
    }

    /// Consume into `(clique, prob)` sorted by probability descending
    /// (ties: lexicographically by clique).
    pub fn into_sorted(self) -> Vec<(Vec<VertexId>, f64)> {
        let mut v: Vec<(Vec<VertexId>, f64)> =
            self.heap.into_iter().map(|e| (e.clique, e.prob)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

impl CliqueSink for TopKSink {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        if self.k == 0 {
            return Control::Stop;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry {
                prob,
                clique: clique.to_vec(),
            });
        } else if self.heap.peek().is_some_and(|worst| prob > worst.prob) {
            self.heap.pop();
            self.heap.push(HeapEntry {
                prob,
                clique: clique.to_vec(),
            });
        }
        Control::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_accumulates() {
        let mut s = CountSink::new();
        assert_eq!(s.emit(&[0, 1], 0.5), Control::Continue);
        assert_eq!(s.emit(&[2, 3, 4], 0.25), Control::Continue);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_vertices, 5);
        assert_eq!(s.max_size, 3);
    }

    #[test]
    fn collect_sink_stores_pairs() {
        let mut s = CollectSink::new();
        s.emit(&[1, 2], 0.5);
        s.emit(&[0], 1.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.cliques()[1], vec![0]);
        assert_eq!(s.probs(), &[0.5, 1.0]);
        let pairs = s.clone().into_pairs();
        assert_eq!(pairs[0], (vec![1, 2], 0.5));
        assert_eq!(s.into_sorted_cliques(), vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn remap_sink_translates_monotonically() {
        let mut inner = CollectSink::new();
        {
            let map = [3u32, 7, 9, 20];
            let mut s = RemapSink::new(&mut inner, &map);
            assert_eq!(s.emit(&[0, 2, 3], 0.5), Control::Continue);
            assert_eq!(s.emit(&[1], 1.0), Control::Continue);
        }
        assert_eq!(inner.cliques(), &[vec![3, 9, 20], vec![7]]);
        assert_eq!(inner.probs(), &[0.5, 1.0]);
    }

    #[test]
    fn remap_sink_propagates_stop() {
        let mut inner = FirstKSink::new(1);
        let map = [5u32, 6];
        let mut s = RemapSink::new(&mut inner, &map);
        assert_eq!(s.emit(&[0], 1.0), Control::Stop);
        assert_eq!(inner.into_cliques(), vec![vec![5]]);
    }

    #[test]
    fn fn_sink_adapts_closures() {
        let mut seen = Vec::new();
        {
            let mut s = FnSink(|c: &[VertexId], p: f64| {
                seen.push((c.to_vec(), p));
                Control::Continue
            });
            s.emit(&[7], 0.9);
        }
        assert_eq!(seen, vec![(vec![7], 0.9)]);
    }

    #[test]
    fn first_k_stops_exactly_at_k() {
        let mut s = FirstKSink::new(2);
        assert_eq!(s.emit(&[0], 1.0), Control::Continue);
        assert_eq!(s.emit(&[1], 1.0), Control::Stop);
        assert_eq!(s.emit(&[2], 1.0), Control::Stop); // ignored past limit
        assert_eq!(s.into_cliques(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn first_k_zero_limit() {
        let mut s = FirstKSink::new(0);
        assert_eq!(s.emit(&[0], 1.0), Control::Stop);
        assert!(s.into_cliques().is_empty());
    }

    #[test]
    fn size_histogram_counts_and_tail_sums() {
        let mut s = SizeHistogramSink::new();
        s.emit(&[0], 1.0);
        s.emit(&[0, 1], 1.0);
        s.emit(&[0, 1, 2], 1.0);
        s.emit(&[3, 4, 5], 1.0);
        assert_eq!(s.histogram(), &[0, 1, 1, 2]);
        assert_eq!(s.count_at_least(0), 4);
        assert_eq!(s.count_at_least(2), 3);
        assert_eq!(s.count_at_least(3), 2);
        assert_eq!(s.count_at_least(4), 0);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn top_k_keeps_highest_probabilities() {
        let mut s = TopKSink::new(2);
        s.emit(&[0], 0.3);
        s.emit(&[1], 0.9);
        assert_eq!(s.threshold(), Some(0.3));
        s.emit(&[2], 0.5); // evicts 0.3
        assert_eq!(s.threshold(), Some(0.5));
        s.emit(&[3], 0.1); // below threshold, ignored
        let top = s.into_sorted();
        assert_eq!(top, vec![(vec![1], 0.9), (vec![2], 0.5)]);
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let mut s = TopKSink::new(2);
        s.emit(&[5], 0.5);
        s.emit(&[1], 0.5);
        s.emit(&[3], 0.5);
        let top = s.into_sorted();
        assert_eq!(top.len(), 2);
        assert!(top[0].0 < top[1].0);
    }

    #[test]
    fn top_k_zero_is_noop_stop() {
        let mut s = TopKSink::new(0);
        assert_eq!(s.emit(&[0], 1.0), Control::Stop);
        assert!(s.into_sorted().is_empty());
    }
}
