//! MULE — Maximal Uncertain cLique Enumeration (Algorithms 1–4 of the
//! paper).
//!
//! The enumeration is a depth-first search over α-cliques. A search node
//! carries:
//!
//! * `C` — the current α-clique, grown in increasing vertex-id order so
//!   every set is reached by exactly one path;
//! * `q = clq(C, G)` — maintained incrementally;
//! * `I` — tuples `(u, r)` with `u > max(C)` such that `C ∪ {u}` is an
//!   α-clique with `clq(C ∪ {u}) = q·r`: the *candidates*;
//! * `X` — tuples `(v, s)` with `v < max(C)`, `v ∉ C`, such that `C ∪ {v}`
//!   is an α-clique with `clq(C ∪ {v}) = q·s`: extensions that belong to
//!   other search paths, kept so that maximality is detected in O(1).
//!
//! `C` is emitted as α-maximal exactly when `I = ∅ ∧ X = ∅` (Lemmas 8/9).
//! The incremental factors make extending a candidate set O(1) per tuple
//! (the paper's key insight versus Θ(n) recomputation — the DFS–NOIP
//! baseline in [`crate::dfs_noip`] shows the cost of not doing this).
//!
//! Neighborhood filtering (`S ∩ Γ(m)` in Algorithms 3/4) runs on the
//! tiered [`ugraph_core::NeighborhoodIndex`] and picks a strategy per
//! filter call: a one-load dense probability row for hub vertices
//! (budgeted by [`MuleConfig::dense_index_bytes`]), an O(1) bitset
//! membership probe plus galloping CSR search for everything else, and —
//! when no index is built ([`MuleConfig::index_mode`]) — galloping or a
//! linear two-pointer merge depending on the candidate-to-degree ratio.
//!
//! The candidate sets themselves live in a per-search pair of
//! depth-alternating arenas (`kernel::DepthArenas`): each
//! node's `I`/`X` are spans of a contiguous buffer, the filters append
//! at the sibling buffer's tail, and backtracking truncates — zero heap
//! allocations per search node once the buffers reach the deepest path
//! (see the kernel module docs for the span layout).

use crate::kernel::DepthArenas;
use crate::sinks::{CliqueSink, Control};
use crate::stats::EnumerationStats;
use ugraph_core::{GraphError, UncertainGraph, VertexId};

/// A candidate tuple `(vertex, factor)`: adding `vertex` to the current
/// clique multiplies its probability by `factor`.
pub type Candidate = (VertexId, f64);

/// Whether to build the tiered neighborhood index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Build the index when its membership tier fits in
    /// [`MuleConfig::max_index_bytes`]; otherwise run index-free
    /// (gallop / merge over the CSR adjacency).
    #[default]
    Auto,
    /// Always build the index (tests/ablation).
    Always,
    /// Never build it; always search the CSR adjacency directly.
    Never,
}

impl std::str::FromStr for IndexMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(IndexMode::Auto),
            "always" => Ok(IndexMode::Always),
            "never" => Ok(IndexMode::Never),
            other => Err(format!(
                "unknown index mode {other:?} (expected auto|always|never)"
            )),
        }
    }
}

/// Configuration for [`Mule`].
#[derive(Debug, Clone)]
pub struct MuleConfig {
    /// Neighborhood membership strategy.
    pub index_mode: IndexMode,
    /// Budget for the index's bitset membership tier under
    /// [`IndexMode::Auto`] (bytes): the tier costs `n²/8` bytes and is
    /// skipped — leaving the CSR-only strategies — when it would exceed
    /// this.
    pub max_index_bytes: usize,
    /// Budget for the index's dense probability tier, in bytes **per
    /// enumeration kernel** — when the preprocessing pipeline shards
    /// into components, each component kernel gets its own budget
    /// (rows there are component-sized, which is what makes them
    /// cheap; a global cap would starve exactly the sharded workloads
    /// the tier targets). Hub vertices get a full `f64` row (`8·n`
    /// bytes each, one load per candidate in the filter) in descending
    /// degree order until the budget is spent, and only while a row
    /// stays cache-resident
    /// (`ugraph_core::adjacency::DENSE_ROW_MAX_BYTES`). `0` disables
    /// the tier. The default is deliberately modest: the tier is
    /// rebuilt per prepare call, so its build cost (zero +
    /// scatter-fill) sits on the query path and a few MiB of the
    /// hottest hub rows is where the measured win is. See
    /// [`ugraph_core::adjacency`] for the tier-selection heuristic.
    pub dense_index_bytes: usize,
    /// If true, relabel vertices by degeneracy order before enumerating and
    /// translate emitted cliques back. Changes the search-tree shape, never
    /// the output set. Off by default (the paper uses natural ids).
    pub degeneracy_order: bool,
    /// Reproduce the paper's literal Algorithm 1 root behavior: seed the
    /// search with Î = {(u, 1) : u ∈ V} and filter it per branch, which
    /// costs Θ(n²) candidate scans before any clique is found. Off by
    /// default — the closed-form root expansion (see
    /// `Mule::run_from_root`) produces the identical output in O(m).
    /// This switch exists for the root-expansion ablation and to explain
    /// the paper's 21-hour DBLP run (EXPERIMENTS.md).
    pub naive_root: bool,
}

impl Default for MuleConfig {
    fn default() -> Self {
        MuleConfig {
            index_mode: IndexMode::Auto,
            max_index_bytes: 64 << 20,
            dense_index_bytes: 4 << 20,
            degeneracy_order: false,
            naive_root: false,
        }
    }
}

/// The MULE enumerator. Holds the α-pruned graph plus the acceleration
/// structures; [`Mule::run`] streams every α-maximal clique to a sink.
///
/// ```
/// use mule::{Mule, sinks::CollectSink};
/// use ugraph_core::builder::from_edges;
///
/// let g = from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.6)]).unwrap();
/// let mut mule = Mule::new(&g, 0.5).unwrap();
/// let mut sink = CollectSink::new();
/// mule.run(&mut sink);
/// assert_eq!(
///     sink.into_sorted_cliques(),
///     vec![vec![0, 1, 2], vec![2, 3]],
/// );
/// ```
pub struct Mule {
    kernel: crate::kernel::Kernel,
    naive_root: bool,
    stats: EnumerationStats,
    /// Candidate arena pair reused across runs (capacity persists, so a
    /// rerun on the same instance is allocation-free).
    arenas: DepthArenas,
    /// Current-clique buffer, reused across runs like the arena.
    clique_buf: Vec<VertexId>,
}

impl Mule {
    /// Prepare an enumeration of all α-maximal cliques of `g` with the
    /// default configuration. The input graph is α-pruned up front
    /// (Observation 3): edges with `p(e) < α` cannot appear in any
    /// α-clique.
    pub fn new(g: &UncertainGraph, alpha: f64) -> Result<Self, GraphError> {
        Self::with_config(g, alpha, MuleConfig::default())
    }

    /// Prepare an enumeration with an explicit [`MuleConfig`].
    pub fn with_config(
        g: &UncertainGraph,
        alpha: f64,
        config: MuleConfig,
    ) -> Result<Self, GraphError> {
        let kernel = crate::kernel::Kernel::prepare(g, alpha, &config)?;
        Ok(Mule {
            kernel,
            naive_root: config.naive_root,
            stats: EnumerationStats::new(),
            arenas: DepthArenas::new(),
            clique_buf: Vec::new(),
        })
    }

    /// The α threshold this enumerator was built with.
    pub fn alpha(&self) -> f64 {
        self.kernel.alpha
    }

    /// The pruned graph the search actually runs on.
    pub fn graph(&self) -> &UncertainGraph {
        &self.kernel.g
    }

    /// Whether the dense adjacency index was built.
    pub fn uses_dense_index(&self) -> bool {
        self.kernel.index.is_some()
    }

    /// Counters from the most recent [`Mule::run`].
    pub fn stats(&self) -> &EnumerationStats {
        &self.stats
    }

    /// Enumerate every α-maximal clique, streaming each (in canonical
    /// sorted order, with its exact probability) into `sink`. Returns the
    /// run's statistics. Stops early if the sink returns
    /// [`Control::Stop`].
    pub fn run<S: CliqueSink>(&mut self, sink: &mut S) -> &EnumerationStats {
        self.stats = EnumerationStats::new();
        if let Some(back) = self.kernel.back_map.take() {
            // Translate internal ids to original ids on emission; cliques
            // are re-sorted because the relabeling is not monotone.
            let mut translating = TranslatingSink {
                inner: sink,
                back: &back,
                scratch: Vec::new(),
            };
            self.run_from_root(&mut translating);
            self.kernel.back_map = Some(back);
        } else {
            self.run_from_root(sink);
        }
        &self.stats
    }

    /// The root of Algorithm 2, with the Θ(n²) root-level candidate scan
    /// replaced by its closed form: at the root every factor is 1 and every
    /// vertex `< u` has moved to `X` when `u` is processed, so
    /// `I₀(u) = {(w, p(u,w)) : w ∈ Γ(u), w > u}` and
    /// `X₀(u) = {(v, p(u,v)) : v ∈ Γ(u), v < u}` read straight off the
    /// (already α-pruned) adjacency in O(deg u). This is what makes
    /// million-vertex inputs (the paper's DBLP graph) feasible: the naive
    /// root loop would scan ~n²/2 candidate tuples before any real work.
    fn run_from_root<S: CliqueSink>(&mut self, sink: &mut S) {
        self.stats.calls += 1; // the conceptual root node
        let n = self.kernel.g.num_vertices();
        if n == 0 {
            // The empty clique is maximal in the empty graph.
            self.stats.emitted += 1;
            sink.emit(&[], 1.0);
            return;
        }
        // The arenas and the clique buffer are struct members so their
        // capacity survives across runs, but the recursion needs them
        // mutably alongside `&mut self` — move them out for the run.
        let mut arenas = std::mem::take(&mut self.arenas);
        let mut c = std::mem::take(&mut self.clique_buf);
        arenas.clear();
        c.clear();
        if self.naive_root {
            // Literal Algorithm 1/2 root: Î = {(u, 1)} for all u, filtered
            // per branch by GenerateI/GenerateX. Θ(n²) total root work.
            for u in self.kernel.g.vertices() {
                arenas.even.push((u, 1.0));
            }
            self.stats.calls -= 1; // enumerate_subtree recounts the root
            crate::kernel::enumerate_subtree(
                &self.kernel,
                &mut self.stats,
                &mut c,
                1.0,
                0..arenas.even.mark(),
                0..0,
                &mut arenas.even,
                &mut arenas.odd,
                &mut crate::limits::RunLimits::none(),
                sink,
            );
        } else {
            for u in 0..n as VertexId {
                let (i0, x0) = self.kernel.expand_root_into(
                    u,
                    &mut arenas.even,
                    &mut self.stats.i_candidates_scanned,
                );
                c.push(u);
                let ctl = crate::kernel::enumerate_subtree(
                    &self.kernel,
                    &mut self.stats,
                    &mut c,
                    1.0,
                    i0,
                    x0,
                    &mut arenas.even,
                    &mut arenas.odd,
                    &mut crate::limits::RunLimits::none(),
                    sink,
                );
                c.pop();
                arenas.clear();
                if ctl == Control::Stop {
                    break;
                }
            }
        }
        self.arenas = arenas;
        self.clique_buf = c;
    }
}

/// Sink adapter translating relabeled vertex ids back to the caller's ids.
struct TranslatingSink<'a, S: CliqueSink> {
    inner: &'a mut S,
    back: &'a [VertexId],
    scratch: Vec<VertexId>,
}

impl<S: CliqueSink> CliqueSink for TranslatingSink<'_, S> {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        self.scratch.clear();
        self.scratch
            .extend(clique.iter().map(|&v| self.back[v as usize]));
        self.scratch.sort_unstable();
        self.inner.emit(&self.scratch, prob)
    }
}

/// Legacy wrapper: collect all α-maximal cliques of `g`, each sorted
/// ascending, the list sorted lexicographically.
///
/// Thin delegate over the session API — equivalent to
/// `Query::new(g).alpha(alpha).prepare()?.collect()` ([`crate::Query`]),
/// which is the preferred entry point (prepare once, query many times).
/// Output is byte-identical to the pre-session wrapper (pinned by
/// `tests/api_equivalence.rs`).
pub fn enumerate_maximal_cliques(
    g: &UncertainGraph,
    alpha: f64,
) -> Result<Vec<Vec<VertexId>>, GraphError> {
    let mut session = crate::Query::new(g)
        .alpha(alpha)
        .prepare()
        .map_err(crate::MuleError::expect_graph)?;
    Ok(session
        .sorted_cliques()
        .expect("unlimited run cannot be interrupted"))
}

/// Legacy wrapper: count α-maximal cliques without storing them. Thin
/// delegate over [`crate::Prepared::count`].
pub fn count_maximal_cliques(g: &UncertainGraph, alpha: f64) -> Result<u64, GraphError> {
    let mut session = crate::Query::new(g)
        .alpha(alpha)
        .prepare()
        .map_err(crate::MuleError::expect_graph)?;
    Ok(session
        .count()
        .expect("unlimited run cannot be interrupted"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::{CollectSink, CountSink, FirstKSink};
    use ugraph_core::builder::{complete_graph, from_edges, GraphBuilder};
    use ugraph_core::clique;
    use ugraph_core::Prob;

    fn fixture() -> UncertainGraph {
        // Triangle 0-1-2 (probs 0.9, 0.9, 0.9) with a pendant 3 on 2 (0.6)
        // and an isolated vertex 4.
        from_edges(5, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.6)]).unwrap()
    }

    #[test]
    fn enumerates_expected_cliques_at_half() {
        let got = enumerate_maximal_cliques(&fixture(), 0.5).unwrap();
        assert_eq!(got, vec![vec![0, 1, 2], vec![2, 3], vec![4]]);
    }

    #[test]
    fn tighter_alpha_splits_triangle() {
        // 0.9³ = 0.729 < 0.75, so the triangle fails and its edges win.
        let got = enumerate_maximal_cliques(&fixture(), 0.75).unwrap();
        assert_eq!(
            got,
            vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![3], vec![4]]
        );
    }

    #[test]
    fn emitted_probability_matches_reference() {
        let g = fixture();
        let mut mule = Mule::new(&g, 0.5).unwrap();
        let mut sink = CollectSink::new();
        mule.run(&mut sink);
        for (c, p) in sink.into_pairs() {
            let exact = clique::clique_probability(&g, &c).unwrap();
            assert!((p - exact).abs() < 1e-12, "{c:?}: {p} vs {exact}");
        }
    }

    #[test]
    fn every_emitted_clique_is_alpha_maximal() {
        let g = fixture();
        for alpha in [0.9, 0.75, 0.5, 0.25, 1e-6] {
            for c in enumerate_maximal_cliques(&g, alpha).unwrap() {
                assert!(
                    clique::is_alpha_maximal(&g, &c, alpha),
                    "α={alpha}, clique {c:?}"
                );
            }
        }
    }

    #[test]
    fn alpha_one_reduces_to_deterministic_on_certain_edges() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        b.add_edge(2, 3, 0.99).unwrap(); // pruned at α = 1
        let g = b.build();
        let got = enumerate_maximal_cliques(&g, 1.0).unwrap();
        assert_eq!(got, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn empty_graph_emits_empty_clique() {
        let g = GraphBuilder::new(0).build();
        let got = enumerate_maximal_cliques(&g, 0.5).unwrap();
        assert_eq!(got, vec![Vec::<VertexId>::new()]);
    }

    #[test]
    fn edgeless_graph_emits_singletons() {
        let g = GraphBuilder::new(3).build();
        let got = enumerate_maximal_cliques(&g, 0.5).unwrap();
        assert_eq!(got, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let g = fixture();
        assert!(Mule::new(&g, 0.0).is_err());
        assert!(Mule::new(&g, -0.5).is_err());
        assert!(Mule::new(&g, 1.5).is_err());
        assert!(Mule::new(&g, f64::NAN).is_err());
    }

    #[test]
    fn complete_graph_maximal_size_is_threshold_bound() {
        // K6, p = 1/2 everywhere: a k-clique has prob 2^{-C(k,2)}.
        // α = 2^{-3} admits k with C(k,2) ≤ 3, i.e. k ≤ 3: every 3-subset
        // is maximal → C(6,3) = 20 cliques.
        let g = complete_graph(6, Prob::new(0.5).unwrap());
        let got = enumerate_maximal_cliques(&g, 0.125).unwrap();
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn index_modes_agree() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.1] {
            let mut results = Vec::new();
            for mode in [IndexMode::Always, IndexMode::Never] {
                let cfg = MuleConfig {
                    index_mode: mode,
                    ..Default::default()
                };
                let mut m = Mule::with_config(&g, alpha, cfg).unwrap();
                let mut sink = CollectSink::new();
                m.run(&mut sink);
                assert_eq!(m.uses_dense_index(), mode == IndexMode::Always);
                results.push(sink.into_sorted_cliques());
            }
            assert_eq!(results[0], results[1], "α={alpha}");
        }
    }

    #[test]
    fn naive_root_produces_identical_output() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.25] {
            let fast = enumerate_maximal_cliques(&g, alpha).unwrap();
            let cfg = MuleConfig {
                naive_root: true,
                ..Default::default()
            };
            let mut m = Mule::with_config(&g, alpha, cfg).unwrap();
            let mut sink = CollectSink::new();
            m.run(&mut sink);
            assert_eq!(sink.into_sorted_cliques(), fast, "α={alpha}");
            // And the naive root provably does more scanning work.
            let mut fast_m = Mule::new(&g, alpha).unwrap();
            let mut s2 = CountSink::new();
            fast_m.run(&mut s2);
            assert!(m.stats().total_scanned() >= fast_m.stats().total_scanned());
        }
    }

    #[test]
    fn degeneracy_order_preserves_output() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.25] {
            let plain = enumerate_maximal_cliques(&g, alpha).unwrap();
            let cfg = MuleConfig {
                degeneracy_order: true,
                ..Default::default()
            };
            let mut m = Mule::with_config(&g, alpha, cfg).unwrap();
            let mut sink = CollectSink::new();
            m.run(&mut sink);
            assert_eq!(sink.into_sorted_cliques(), plain, "α={alpha}");
        }
    }

    #[test]
    fn early_stop_respects_sink() {
        let g = complete_graph(6, Prob::new(0.5).unwrap());
        let mut m = Mule::new(&g, 0.125).unwrap();
        let mut sink = FirstKSink::new(3);
        m.run(&mut sink);
        assert_eq!(sink.into_cliques().len(), 3);
        assert!(m.stats().emitted >= 3);
        assert!(m.stats().emitted < 20, "must have stopped early");
    }

    #[test]
    fn stats_are_populated() {
        let g = fixture();
        let mut m = Mule::new(&g, 0.5).unwrap();
        let mut sink = CountSink::new();
        m.run(&mut sink);
        let s = m.stats();
        assert_eq!(s.emitted, 3);
        assert!(s.calls >= 4, "root + one node per clique at minimum");
        assert_eq!(s.max_depth, 3);
        assert!(s.total_scanned() > 0);
    }

    #[test]
    fn rerun_resets_stats_and_is_idempotent() {
        let g = fixture();
        let mut m = Mule::new(&g, 0.5).unwrap();
        let mut s1 = CountSink::new();
        m.run(&mut s1);
        let calls1 = m.stats().calls;
        let mut s2 = CountSink::new();
        m.run(&mut s2);
        assert_eq!(m.stats().calls, calls1);
        assert_eq!(s1.count, s2.count);
    }

    #[test]
    fn count_wrapper_matches_collect() {
        let g = fixture();
        assert_eq!(
            count_maximal_cliques(&g, 0.5).unwrap(),
            enumerate_maximal_cliques(&g, 0.5).unwrap().len() as u64
        );
    }

    #[test]
    fn disconnected_components_enumerated_independently() {
        let g = from_edges(
            6,
            &[
                (0, 1, 0.8),
                (1, 2, 0.8),
                (0, 2, 0.8),
                (3, 4, 0.8),
                (4, 5, 0.8),
                (3, 5, 0.8),
            ],
        )
        .unwrap();
        let got = enumerate_maximal_cliques(&g, 0.5).unwrap();
        assert_eq!(got, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn pruned_graph_accessor_reflects_alpha() {
        let g = fixture();
        let m = Mule::new(&g, 0.75).unwrap();
        // The 0.6 pendant edge is pruned.
        assert_eq!(m.graph().num_edges(), 3);
        assert_eq!(m.alpha(), 0.75);
    }
}
