//! Top-k α-maximal cliques by probability — the query shape of the closest
//! related work (Zou et al., "Finding top-k maximal cliques in an uncertain
//! graph", ICDE 2010, reference 47 of the paper).
//!
//! The paper contrasts itself with ref 47: MULE enumerates *all* α-maximal
//! cliques, while the top-k problem returns only the `k` most probable
//! ones. We provide the top-k query on top of MULE in two variants:
//!
//! * [`top_k_maximal_cliques`] — exhaustive MULE run through a bounded
//!   min-heap ([`crate::sinks::TopKSink`]); exact, simple, and a fair
//!   "enumerate-then-select" baseline;
//! * [`top_k_maximal_cliques_pruned`] — the same, but the enumeration
//!   re-runs with an *adaptively raised* threshold: once `k` cliques with
//!   probability ≥ β are known, no α-maximal clique with probability < β
//!   can enter the answer, so branches are cut at β instead of α. The
//!   subtlety (documented below) is that maximality must still be judged
//!   at α, so the search keeps the α-semantics for `I`/`X` construction
//!   and only uses β for *branch admission*; we realize this by filtering
//!   emissions instead: cliques with probability < β are still enumerated
//!   but discarded. The saving therefore comes from the heap alone, and
//!   the two variants are equivalent — the "pruned" variant exists to
//!   document *why* a stronger cut is unsound rather than to pretend one.

use crate::enumerate::Mule;
use crate::sinks::TopKSink;
use ugraph_core::{GraphError, UncertainGraph, VertexId};

/// The `k` α-maximal cliques with the highest clique probability, sorted
/// by probability descending (ties broken lexicographically on the vertex
/// set, so results are deterministic).
///
/// Returns fewer than `k` entries when the graph has fewer α-maximal
/// cliques.
pub fn top_k_maximal_cliques(
    g: &UncertainGraph,
    alpha: f64,
    k: usize,
) -> Result<Vec<(Vec<VertexId>, f64)>, GraphError> {
    let mut mule = Mule::new(g, alpha)?;
    let mut sink = TopKSink::new(k);
    mule.run(&mut sink);
    Ok(sink.into_sorted())
}

/// Alias of [`top_k_maximal_cliques`] kept as the named "pruned" variant.
///
/// A genuinely stronger cut — abandoning every branch whose clique
/// probability falls below the current k-th best β — is **unsound** for
/// this problem: α-maximality is defined against the α threshold, and a
/// low-probability subtree can still *witness non-maximality* of a
/// high-probability clique reached on another path (its vertices must
/// enter `X` sets). Cutting those branches can turn non-maximal sets into
/// reported answers. The safe speedup is output-side selection, which the
/// bounded heap already performs in O(log k) per emission.
pub fn top_k_maximal_cliques_pruned(
    g: &UncertainGraph,
    alpha: f64,
    k: usize,
) -> Result<Vec<(Vec<VertexId>, f64)>, GraphError> {
    top_k_maximal_cliques(g, alpha, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_maximal_cliques;
    use ugraph_core::builder::from_edges;
    use ugraph_core::clique;

    fn fixture() -> UncertainGraph {
        // Three maximal structures at α = 0.3:
        //   triangle {0,1,2} with prob 0.9³ = 0.729
        //   edge {2,3} with prob 0.5
        //   edge {3,4} with prob 0.4
        from_edges(
            5,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (2, 3, 0.5),
                (3, 4, 0.4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn returns_k_best_in_order() {
        let top = top_k_maximal_cliques(&fixture(), 0.3, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, vec![0, 1, 2]);
        assert!((top[0].1 - 0.729).abs() < 1e-12);
        assert_eq!(top[1].0, vec![2, 3]);
        assert!((top[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_output_returns_all() {
        let top = top_k_maximal_cliques(&fixture(), 0.3, 100).unwrap();
        let all = enumerate_maximal_cliques(&fixture(), 0.3).unwrap();
        assert_eq!(top.len(), all.len());
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_maximal_cliques(&fixture(), 0.3, 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn results_are_alpha_maximal_with_true_probabilities() {
        let g = fixture();
        for (c, p) in top_k_maximal_cliques(&g, 0.3, 10).unwrap() {
            assert!(clique::is_alpha_maximal(&g, &c, 0.3));
            assert!((clique::clique_probability(&g, &c).unwrap() - p).abs() < 1e-12);
        }
    }

    #[test]
    fn pruned_variant_agrees() {
        let g = fixture();
        assert_eq!(
            top_k_maximal_cliques(&g, 0.3, 3).unwrap(),
            top_k_maximal_cliques_pruned(&g, 0.3, 3).unwrap()
        );
    }

    #[test]
    fn probabilities_monotone_in_result() {
        let top = top_k_maximal_cliques(&fixture(), 0.3, 10).unwrap();
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
