//! Top-k α-maximal cliques by probability — the query shape of the closest
//! related work (Zou et al., "Finding top-k maximal cliques in an uncertain
//! graph", ICDE 2010, reference 47 of the paper).
//!
//! The paper contrasts itself with ref 47: MULE enumerates *all* α-maximal
//! cliques, while the top-k problem returns only the `k` most probable
//! ones. We provide the top-k query on top of MULE in two variants, both
//! running per-component over the preprocessing pipeline
//! ([`mod@crate::prepare`]):
//!
//! * [`top_k_maximal_cliques`] — exhaustive enumeration through a bounded
//!   min-heap ([`crate::sinks::TopKSink`]); exact, simple, and a fair
//!   "enumerate-then-select" baseline;
//! * [`top_k_maximal_cliques_pruned`] — the same answer, but the adaptive
//!   threshold β (the current k-th best probability, read back from the
//!   sink's heap between branches) is fed into **branch admission**:
//!   clique probability is non-increasing along a search path
//!   (`clq(C ∪ {u}) = clq(C) · r` with `r ≤ 1`), so once the heap is
//!   full, a subtree entered at probability `≤ β` cannot contain any
//!   clique that would be admitted, and the recursion skips it.
//!
//! # The α-maximality subtlety
//!
//! β applies to *admission only*. Maximality is still judged at α: the
//! `I`/`X` candidate sets are built with the α threshold, and a skipped
//! subtree's head vertex stays in its parent's `I` span, so later
//! siblings still filter it into their `X'` sets and low-probability
//! vertices keep witnessing non-maximality of high-probability cliques.
//! Raising the *construction* threshold to β instead would be unsound:
//! a clique `C` with `clq(C) > β` can be non-maximal solely because of
//! an extension `C ∪ {v}` with `clq ∈ [α, β]`, and judging maximality at
//! β would wrongly report `C`. The cut is safe precisely because
//! skipping a subtree never changes what *other* branches emit — it
//! only discards emissions that the heap would have rejected anyway.

use crate::kernel::{CandidateArena, DepthArenas, Kernel, Scan};
use crate::prepare::{PreparedInstance, Unit};
use crate::sinks::{CliqueSink, Control, TopKSink};
use crate::stats::EnumerationStats;
use std::ops::Range;
use ugraph_core::{GraphError, UncertainGraph, VertexId};

/// A ranked answer list: `(clique, probability)` pairs, probability
/// descending.
pub type RankedCliques = Vec<(Vec<VertexId>, f64)>;

/// The `k` α-maximal cliques with the highest clique probability, sorted
/// by probability descending (ties broken lexicographically on the vertex
/// set, so results are deterministic).
///
/// Returns fewer than `k` entries when the graph has fewer α-maximal
/// cliques.
pub fn top_k_maximal_cliques(
    g: &UncertainGraph,
    alpha: f64,
    k: usize,
) -> Result<Vec<(Vec<VertexId>, f64)>, GraphError> {
    let mut session = crate::Query::new(g)
        .alpha(alpha)
        .prepare()
        .map_err(crate::MuleError::expect_graph)?;
    let mut sink = TopKSink::new(k);
    session
        .stream(&mut sink)
        .expect("unlimited run cannot be interrupted");
    Ok(sink.into_sorted())
}

/// Like [`top_k_maximal_cliques`], but with the adaptive β cut: branches
/// whose clique probability has already fallen to the current k-th best
/// are skipped (see the module docs for why this is sound and why a
/// stronger cut is not). Produces the identical result with strictly
/// fewer search nodes once the heap fills.
pub fn top_k_maximal_cliques_pruned(
    g: &UncertainGraph,
    alpha: f64,
    k: usize,
) -> Result<Vec<(Vec<VertexId>, f64)>, GraphError> {
    Ok(top_k_pruned_with_stats(g, alpha, k)?.0)
}

/// [`top_k_maximal_cliques_pruned`] plus the run's search counters
/// (`beta_pruned` records how many branches the adaptive threshold cut),
/// so the pruning's effect is measurable.
pub fn top_k_pruned_with_stats(
    g: &UncertainGraph,
    alpha: f64,
    k: usize,
) -> Result<(RankedCliques, EnumerationStats), GraphError> {
    let session = crate::Query::new(g)
        .alpha(alpha)
        .prepare()
        .map_err(crate::MuleError::expect_graph)?;
    Ok(beta_top_k(session.instance(), k))
}

/// The adaptive-β top-k engine over an already-prepared instance:
/// walks the instance's schedule with [`beta_subtree`], feeding the
/// heap's current k-th best probability back into branch admission.
/// Shared by [`top_k_pruned_with_stats`] and the session API
/// ([`crate::Prepared::top_k`]), so the β-cut recursion exists once.
pub(crate) fn beta_top_k(inst: &PreparedInstance, k: usize) -> (RankedCliques, EnumerationStats) {
    let mut sink = TopKSink::new(k);
    let mut stats = EnumerationStats::new();
    stats.calls = 1; // the conceptual root node
    if inst.original_vertices() == 0 {
        stats.emitted = 1;
        sink.emit(&[], 1.0);
        return (sink.into_sorted(), stats);
    }
    let mut arenas = DepthArenas::new();
    let mut c: Vec<VertexId> = Vec::new();
    let mut scratch: Vec<VertexId> = Vec::new();
    for &unit in inst.schedule() {
        match unit {
            Unit::Singleton(v) => {
                stats.calls += 1;
                stats.max_depth = stats.max_depth.max(1);
                stats.emitted += 1;
                if sink.emit(&[v], 1.0) == Control::Stop {
                    break;
                }
            }
            Unit::Root { comp, local } => {
                let (kernel, map) = inst.component_parts(comp);
                let (i0, x0) = kernel.expand_root_into(
                    local,
                    &mut arenas.even,
                    &mut stats.i_candidates_scanned,
                );
                c.push(local);
                let ctl = beta_subtree(
                    kernel,
                    &mut stats,
                    &mut c,
                    1.0,
                    i0,
                    x0,
                    &mut arenas.even,
                    &mut arenas.odd,
                    map,
                    &mut scratch,
                    &mut sink,
                );
                c.pop();
                arenas.clear();
                if ctl == Control::Stop {
                    break;
                }
            }
        }
    }
    (sink.into_sorted(), stats)
}

/// Translate `c` to original ids and offer it to the heap, via the
/// shared borrowed-scratch remap adapter (one translation
/// implementation for the whole crate).
fn emit_remapped(
    sink: &mut TopKSink,
    map: &[VertexId],
    scratch: &mut Vec<VertexId>,
    c: &[VertexId],
    q: f64,
) -> Control {
    crate::prepare::Remap {
        inner: sink,
        map,
        scratch,
    }
    .emit(c, q)
}

/// [`crate::kernel::enumerate_subtree`] specialized to a [`TopKSink`]:
/// identical α-semantics for `I`/`X` construction and the leaf
/// short-circuit, plus the adaptive admission cut. A separate copy
/// rather than a parameter of the shared kernel recursion because the
/// cut must consult the sink's heap *between branches* — a feedback
/// channel the streaming [`CliqueSink`] interface deliberately does not
/// expose.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's state tuple
fn beta_subtree(
    kernel: &Kernel,
    stats: &mut EnumerationStats,
    c: &mut Vec<VertexId>,
    q: f64,
    i_span: Range<usize>,
    x_span: Range<usize>,
    cur: &mut CandidateArena,
    next: &mut CandidateArena,
    map: &[VertexId],
    scratch: &mut Vec<VertexId>,
    sink: &mut TopKSink,
) -> Control {
    stats.calls += 1;
    stats.max_depth = stats.max_depth.max(c.len());
    if i_span.is_empty() && x_span.is_empty() {
        stats.emitted += 1;
        return emit_remapped(sink, map, scratch, c, q);
    }
    for pos in i_span.clone() {
        let (u, r) = cur.get(pos);
        let q2 = q * r;
        // The adaptive cut: admission requires prob > β, and probability
        // only shrinks deeper in the subtree, so `q2 ≤ β` proves no
        // admissible clique below. `u` stays in this node's I span, so
        // later siblings' X' still see it (α-maximality unaffected).
        if sink.threshold().is_some_and(|beta| q2 <= beta) {
            stats.beta_pruned += 1;
            continue;
        }
        let mark = next.mark();
        kernel.filter_candidates_into(u, q2, cur.span(pos + 1..i_span.end), next, stats, Scan::I);
        let x2_start = next.mark();
        if mark == x2_start {
            // I' empty: leaf child — X' only tested for emptiness
            // (Lemma 9), at the α threshold as always.
            stats.calls += 1;
            stats.max_depth = stats.max_depth.max(c.len() + 1);
            let extendable = kernel.any_candidate_survives(
                u,
                q2,
                [cur.span(x_span.clone()), cur.span(i_span.start..pos)],
                stats,
            );
            if !extendable {
                stats.emitted += 1;
                c.push(u);
                let ctl = emit_remapped(sink, map, scratch, c, q2);
                c.pop();
                if ctl == Control::Stop {
                    return Control::Stop;
                }
            }
            continue;
        }
        kernel.filter_candidates_into(u, q2, cur.span(x_span.clone()), next, stats, Scan::X);
        kernel.filter_candidates_into(u, q2, cur.span(i_span.start..pos), next, stats, Scan::X);
        let x2_end = next.mark();
        c.push(u);
        let ctl = beta_subtree(
            kernel,
            stats,
            c,
            q2,
            mark..x2_start,
            x2_start..x2_end,
            next,
            cur,
            map,
            scratch,
            sink,
        );
        c.pop();
        next.truncate(mark);
        if ctl == Control::Stop {
            return Control::Stop;
        }
    }
    Control::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_maximal_cliques;
    use ugraph_core::builder::from_edges;
    use ugraph_core::clique;

    fn fixture() -> UncertainGraph {
        // Three maximal structures at α = 0.3:
        //   triangle {0,1,2} with prob 0.9³ = 0.729
        //   edge {2,3} with prob 0.5
        //   edge {3,4} with prob 0.4
        from_edges(
            5,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (2, 3, 0.5),
                (3, 4, 0.4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn returns_k_best_in_order() {
        let top = top_k_maximal_cliques(&fixture(), 0.3, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, vec![0, 1, 2]);
        assert!((top[0].1 - 0.729).abs() < 1e-12);
        assert_eq!(top[1].0, vec![2, 3]);
        assert!((top[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_output_returns_all() {
        let top = top_k_maximal_cliques(&fixture(), 0.3, 100).unwrap();
        let all = enumerate_maximal_cliques(&fixture(), 0.3).unwrap();
        assert_eq!(top.len(), all.len());
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_maximal_cliques(&fixture(), 0.3, 0)
            .unwrap()
            .is_empty());
        assert!(top_k_maximal_cliques_pruned(&fixture(), 0.3, 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn results_are_alpha_maximal_with_true_probabilities() {
        let g = fixture();
        for (c, p) in top_k_maximal_cliques(&g, 0.3, 10).unwrap() {
            assert!(clique::is_alpha_maximal(&g, &c, 0.3));
            assert!((clique::clique_probability(&g, &c).unwrap() - p).abs() < 1e-12);
        }
    }

    #[test]
    fn pruned_variant_agrees() {
        let g = fixture();
        for k in [1, 2, 3, 10] {
            assert_eq!(
                top_k_maximal_cliques(&g, 0.3, k).unwrap(),
                top_k_maximal_cliques_pruned(&g, 0.3, k).unwrap(),
                "k={k}"
            );
        }
    }

    #[test]
    fn pruned_variant_agrees_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        for seed in 0..15u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 8 + (seed % 5) as usize;
            let mut b = ugraph_core::GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.5 {
                        b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
                    }
                }
            }
            let g = b.build();
            for alpha in [0.5, 0.1, 0.01] {
                for k in [1, 3, 7] {
                    let baseline = top_k_maximal_cliques(&g, alpha, k).unwrap();
                    let (pruned, _) = top_k_pruned_with_stats(&g, alpha, k).unwrap();
                    assert_eq!(pruned, baseline, "seed={seed} α={alpha} k={k}");
                }
            }
        }
    }

    /// The β cut must fire (and save work) without changing the answer.
    #[test]
    fn beta_cut_reduces_search_nodes() {
        // A heavy early clique fills the heap at β = 0.95; everything
        // later sits below β and gets cut at the branch head.
        let mut edges = vec![(0u32, 1u32, 0.95)];
        for u in 2..12u32 {
            for v in (u + 1)..12 {
                edges.push((u, v, 0.6));
            }
        }
        let g = from_edges(12, &edges).unwrap();
        let (top, stats) = top_k_pruned_with_stats(&g, 0.01, 1).unwrap();
        assert_eq!(top, vec![(vec![0, 1], 0.95)]);
        assert!(stats.beta_pruned > 0, "cut never fired");
        let baseline_calls = {
            let mut m = crate::Mule::new(&g, 0.01).unwrap();
            let mut sink = TopKSink::new(1);
            m.run(&mut sink);
            m.stats().calls
        };
        assert!(
            stats.calls < baseline_calls,
            "pruned {} vs baseline {}",
            stats.calls,
            baseline_calls
        );
    }

    /// The α-maximality subtlety (module docs): maximality must be
    /// judged at α even inside β-cut territory. {2,3} has probability
    /// 0.9 > α but is NOT maximal — its witness {2,3,4} has probability
    /// 0.081, far below the β = 0.95 admission bar. An implementation
    /// that raised the candidate-construction threshold to β would
    /// prune the 0.3-edges, miss the witness, and wrongly report {2,3}
    /// as the second-best maximal clique.
    #[test]
    fn maximality_judged_at_alpha_not_beta() {
        let g = from_edges(5, &[(0, 1, 0.95), (2, 3, 0.9), (2, 4, 0.3), (3, 4, 0.3)]).unwrap();
        let expected = [(vec![0, 1], 0.95), (vec![2, 3, 4], 0.9 * 0.3 * 0.3)];
        let got = top_k_maximal_cliques_pruned(&g, 0.05, 2).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, expected[0].0);
        assert_eq!(got[1].0, expected[1].0, "{{2,3}} must not be reported");
        assert!((got[1].1 - expected[1].1).abs() < 1e-12);
        assert_eq!(got, top_k_maximal_cliques(&g, 0.05, 2).unwrap());
    }

    #[test]
    fn probabilities_monotone_in_result() {
        let top = top_k_maximal_cliques(&fixture(), 0.3, 10).unwrap();
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
