//! LARGE–MULE (Algorithms 5–6): enumerate only the α-maximal cliques with
//! at least `t` vertices.
//!
//! Two mechanisms make this much faster than filtering MULE's output:
//!
//! 1. the Modani–Dey shared-neighborhood filter
//!    ([`crate::pruning::shared_neighborhood_filter`]) shrinks the graph up
//!    front — on clique-projection graphs like DBLP this removes almost
//!    everything (the paper: 76797 s for MULE vs 32 s for LARGE–MULE at
//!    `t = 3`);
//! 2. the search bound `|C'| + |I'| < t → skip` (Algorithm 6, line 8): a
//!    branch whose clique plus all remaining candidates cannot reach `t`
//!    vertices is abandoned.
//!
//! The emitted set is exactly `{C : C α-maximal in G, |C| ≥ t}` (Lemma 13;
//! our tests pin the "at least t" reading, which is what the pseudo-code
//! computes). Note the subtlety analyzed in DESIGN.md: a skipped branch
//! also skips the `X ← X ∪ {(u, r)}` update, which is safe because any
//! clique that `u` could still extend would have placed `u`'s branch above
//! the size bound in the first place.
//!
//! The bounded recursion shares the kernel's adaptive candidate filter,
//! so the tiered neighborhood index (dense hub rows / bitset membership
//! / CSR gallop+merge, per [`MuleConfig`]) applies here unchanged.

use crate::enumerate::MuleConfig;
use crate::kernel::{enumerate_subtree_bounded, DepthArenas, Kernel};
use crate::pruning::{shared_neighborhood_filter, PruneReport};
use crate::sinks::{CliqueSink, Control};
use crate::stats::EnumerationStats;
use ugraph_core::{GraphError, UncertainGraph, VertexId};

/// The LARGE–MULE enumerator.
///
/// ```
/// use mule::{LargeMule, sinks::CollectSink};
/// use ugraph_core::builder::from_edges;
///
/// // A triangle and a disjoint heavy edge.
/// let g = from_edges(5, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (3, 4, 0.9)]).unwrap();
/// let mut lm = LargeMule::new(&g, 0.5, 3).unwrap();
/// let mut sink = CollectSink::new();
/// lm.run(&mut sink);
/// // Only the triangle has ≥ 3 vertices.
/// assert_eq!(sink.into_sorted_cliques(), vec![vec![0, 1, 2]]);
/// ```
pub struct LargeMule {
    kernel: Kernel,
    t: usize,
    prune_report: PruneReport,
    stats: EnumerationStats,
    /// Candidate arena pair reused across runs (see `kernel` module docs
    /// for the span layout).
    arenas: DepthArenas,
    /// Current-clique buffer, reused across runs like the arena.
    clique_buf: Vec<VertexId>,
}

impl LargeMule {
    /// Prepare an enumeration of α-maximal cliques with at least `t`
    /// vertices, using the default [`MuleConfig`].
    ///
    /// `t ≥ 2` per the paper (with `t ≤ 1` every maximal clique qualifies;
    /// use plain [`crate::Mule`] for that).
    pub fn new(g: &UncertainGraph, alpha: f64, t: usize) -> Result<Self, GraphError> {
        Self::with_config(g, alpha, t, MuleConfig::default())
    }

    /// Prepare with an explicit configuration.
    pub fn with_config(
        g: &UncertainGraph,
        alpha: f64,
        t: usize,
        config: MuleConfig,
    ) -> Result<Self, GraphError> {
        assert!(t >= 2, "size threshold t must be at least 2 (got {t})");
        let alpha = UncertainGraph::validate_alpha(alpha)?.get();
        let (pruned, prune_report) = shared_neighborhood_filter(g, alpha, t)?;
        let kernel = Kernel::wrap(pruned, alpha, &config);
        Ok(LargeMule {
            kernel,
            t,
            prune_report,
            stats: EnumerationStats::new(),
            arenas: DepthArenas::new(),
            clique_buf: Vec::new(),
        })
    }

    /// The size threshold `t`.
    pub fn threshold(&self) -> usize {
        self.t
    }

    /// What the preprocessing removed.
    pub fn prune_report(&self) -> &PruneReport {
        &self.prune_report
    }

    /// The graph the search runs on (after α and shared-neighborhood
    /// pruning).
    pub fn graph(&self) -> &UncertainGraph {
        &self.kernel.g
    }

    /// Counters from the most recent run.
    pub fn stats(&self) -> &EnumerationStats {
        &self.stats
    }

    /// Enumerate every α-maximal clique with at least `t` vertices.
    pub fn run<S: CliqueSink>(&mut self, sink: &mut S) -> &EnumerationStats {
        self.stats = EnumerationStats::new();
        self.stats.calls += 1; // the conceptual root node
                               // Root-level subtrees expanded in closed form from the adjacency
                               // (see `Kernel::expand_root_into` for the derivation); the
                               // Algorithm 6 line 8 bound applies per root branch as
                               // |{u}| + |I₀(u)|.

        let n = self.kernel.g.num_vertices();
        let mut arenas = std::mem::take(&mut self.arenas);
        let mut c = std::mem::take(&mut self.clique_buf);
        arenas.clear();
        c.clear();
        for u in 0..n as VertexId {
            let (i0, x0) = self.kernel.expand_root_into(
                u,
                &mut arenas.even,
                &mut self.stats.i_candidates_scanned,
            );
            if 1 + i0.len() < self.t {
                self.stats.size_pruned += 1;
                arenas.clear();
                continue;
            }
            c.push(u);
            // Algorithm 6 lives in `kernel::enumerate_subtree_bounded`,
            // shared with the prepared per-component path.
            let ctl = enumerate_subtree_bounded(
                &self.kernel,
                &mut self.stats,
                &mut c,
                1.0,
                i0,
                x0,
                &mut arenas.even,
                &mut arenas.odd,
                self.t,
                &mut crate::limits::RunLimits::none(),
                sink,
            );
            c.pop();
            arenas.clear();
            if ctl == Control::Stop {
                break;
            }
        }
        self.arenas = arenas;
        self.clique_buf = c;
        &self.stats
    }
}

/// Legacy wrapper: collect all α-maximal cliques with at least `t`
/// vertices, sorted lexicographically.
///
/// Thin delegate over the session API — equivalent to
/// `Query::new(g).alpha(alpha).min_size(t).prepare()?.collect()`
/// ([`crate::Query`]), which runs the full preprocessing pipeline:
/// α-prune, `(t−1)·α` expected-degree core filter, shared-neighborhood
/// peel, then per-component enumeration with the Algorithm 6 size
/// bound. [`LargeMule`] remains the direct single-kernel path; the two
/// emit the same cliques.
pub fn enumerate_large_maximal_cliques(
    g: &UncertainGraph,
    alpha: f64,
    t: usize,
) -> Result<Vec<Vec<VertexId>>, GraphError> {
    assert!(t >= 2, "size threshold t must be at least 2 (got {t})");
    let mut session = crate::Query::new(g)
        .alpha(alpha)
        .min_size(t)
        .prepare()
        .map_err(crate::MuleError::expect_graph)?;
    Ok(session
        .sorted_cliques()
        .expect("unlimited run cannot be interrupted"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_maximal_cliques;
    use crate::sinks::CollectSink;
    use ugraph_core::builder::{complete_graph, from_edges, GraphBuilder};
    use ugraph_core::Prob;

    /// LARGE–MULE must equal MULE's output filtered to size ≥ t.
    fn assert_equals_filtered(g: &UncertainGraph, alpha: f64, t: usize) {
        let all = enumerate_maximal_cliques(g, alpha).unwrap();
        let expected: Vec<Vec<VertexId>> = all.into_iter().filter(|c| c.len() >= t).collect();
        let got = enumerate_large_maximal_cliques(g, alpha, t).unwrap();
        assert_eq!(got, expected, "α = {alpha}, t = {t}");
    }

    #[test]
    fn equals_filtered_mule_on_overlapping_cliques() {
        // K4 {0..3} sharing vertex 3 with K3 {3,4,5}, plus a pendant.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v, 0.9));
            }
        }
        edges.extend([(3, 4, 0.9), (3, 5, 0.9), (4, 5, 0.9), (5, 6, 0.9)]);
        let g = from_edges(7, &edges).unwrap();
        for alpha in [0.9, 0.5, 0.25, 0.05, 1e-4] {
            for t in 2..=5 {
                assert_equals_filtered(&g, alpha, t);
            }
        }
    }

    #[test]
    fn equals_filtered_mule_on_complete_graph() {
        let g = complete_graph(7, Prob::new(0.5).unwrap());
        for alpha in [0.5, 0.125, 0.015625, 0.0009765625] {
            for t in 2..=6 {
                assert_equals_filtered(&g, alpha, t);
            }
        }
    }

    #[test]
    fn threshold_two_equals_mule_minus_singletons() {
        let g = from_edges(5, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (3, 4, 0.7)]).unwrap();
        assert_equals_filtered(&g, 0.5, 2);
    }

    #[test]
    #[should_panic]
    fn threshold_below_two_panics() {
        let g = GraphBuilder::new(2).build();
        let _ = LargeMule::new(&g, 0.5, 1);
    }

    #[test]
    fn empty_result_when_no_large_clique() {
        let g = from_edges(3, &[(0, 1, 0.9), (1, 2, 0.9)]).unwrap(); // path
        assert!(enumerate_large_maximal_cliques(&g, 0.5, 3)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn pruning_and_size_bound_reduce_work() {
        // A K5 plus 40 pendant vertices hanging off vertex 0: LARGE–MULE at
        // t = 5 should visit far fewer nodes than MULE.
        let mut b = GraphBuilder::new(45);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v, 0.99).unwrap();
            }
        }
        for w in 5..45u32 {
            b.add_edge(0, w, 0.99).unwrap();
        }
        let g = b.build();
        let mut lm = LargeMule::new(&g, 0.5, 5).unwrap();
        let mut s = CollectSink::new();
        lm.run(&mut s);
        assert_eq!(s.into_sorted_cliques(), vec![vec![0, 1, 2, 3, 4]]);
        let mut m = crate::Mule::new(&g, 0.5).unwrap();
        let mut cs = crate::sinks::CountSink::new();
        m.run(&mut cs);
        assert!(
            lm.stats().calls < m.stats().calls,
            "large {} vs mule {}",
            lm.stats().calls,
            m.stats().calls
        );
        // Preprocessing stripped the pendants.
        assert_eq!(lm.graph().num_edges(), 10);
        assert!(lm.prune_report().shared_pruned_edges >= 40);
    }

    #[test]
    fn accessors_report_configuration() {
        let g = complete_graph(4, Prob::new(0.9).unwrap());
        let lm = LargeMule::new(&g, 0.5, 3).unwrap();
        assert_eq!(lm.threshold(), 3);
        assert_eq!(lm.graph().num_vertices(), 4);
    }

    #[test]
    fn alpha_threshold_interacts_with_size() {
        // K4 at p = 0.5: at α = 2^{-6} the whole K4 qualifies; at 2^{-3}
        // only triangles — which clear t = 3 but not t = 4.
        let g = complete_graph(4, Prob::new(0.5).unwrap());
        assert_eq!(
            enumerate_large_maximal_cliques(&g, 0.015, 4).unwrap(),
            vec![vec![0, 1, 2, 3]]
        );
        assert_eq!(
            enumerate_large_maximal_cliques(&g, 0.125, 4).unwrap().len(),
            0
        );
        assert_eq!(
            enumerate_large_maximal_cliques(&g, 0.125, 3).unwrap().len(),
            4
        );
    }
}
