//! Persisting prepared sessions: encode a [`PreparedInstance`] into the
//! UGQ1 container ([`ugraph_io::catalog`]) and rebuild it — with **zero
//! pipeline work** — from the bytes.
//!
//! The io layer owns the container rules (header, TOC, checksums,
//! strict layout); this module owns what the sections *mean* and is
//! deliberately paranoid about it: checksums prove the bytes are the
//! ones written, but a catalog is an executable artifact — the kernels
//! assume α-pruned graphs, the scheduler assumes monotone disjoint id
//! maps — so every structural invariant the pipeline would have
//! established is re-validated on open. A CRC-valid file that lies
//! about its semantics is rejected exactly like a bit-flipped one:
//! typed error, never a panic, never silently-wrong cliques.
//!
//! # Sections (canonical order, all required)
//!
//! For `k` components, the TOC must contain, in exactly this order:
//! `component.0.graph`, `component.0.map`, …, `component.{k-1}.graph`,
//! `component.{k-1}.map`, `singletons`, `schedule`, `report`. All
//! integers little-endian; section payload layouts:
//!
//! ```text
//! component.N.graph — the compact remapped CSR kernel graph
//!   n u64 ‖ arcs u64 ‖ name_len u32 ‖ name ‖ offsets (n+1)×u64
//!   ‖ neighbors arcs×u32 ‖ probs arcs×u64 (f64 bit patterns)
//! component.N.map — monotone compact→original id map
//!   len u64 ‖ ids len×u32          (strictly increasing)
//! singletons — isolated original vertices (each a maximal clique)
//!   len u64 ‖ ids len×u32          (strictly increasing)
//! schedule — the global ascending-root emission order
//!   len u64 ‖ units len×(tag u8, a u32, b u32)
//!   tag 0 = singleton vertex a (b must be 0)
//!   tag 1 = root subtree: component a, local root b
//! report — the PrepareReport counters
//!   count u64 (= 14) ‖ counters 14×u64, field declaration order
//! ```
//!
//! Probabilities travel as raw `f64` bit patterns, so a save → open
//! round trip reproduces clique probabilities bit-for-bit.
//!
//! # The α-generic base variant ([`ugraph_io::catalog::FLAG_ALPHA_BASE`])
//!
//! A second section layout, same container, flagged in the header:
//! instead of a fixed-α prepared instance it stores a
//! [`PreparedBase`] — the α-*independent* half of the pipeline — so one
//! file serves every `α ≥ floor` via `PreparedBase::refine` with zero
//! pipeline work beyond the local refinement. Header reuse: `alpha_bits`
//! carries the **floor** (may be `0.0`, unlike a query α); `min_size`,
//! the stage flags and the index budgets describe the config refinements
//! are built under; the graph fingerprint fields are unchanged. For `k`
//! base components the canonical section order is:
//!
//! ```text
//! component.N.graph — floor-pruned connected component (same layout
//!                     as above; every edge ≥ floor, n ≥ 2, connected)
//! component.N.map   — monotone compact→original id map (same layout)
//! isolated — original vertices isolated at the floor
//!   len u64 ‖ ids len×u32           (strictly increasing)
//! base.meta — source-graph identity the components cannot carry
//!   name_len u32 ‖ name (UTF-8)
//! ```
//!
//! No `schedule` or `report` section exists: both are α-dependent and
//! are reconstructed exactly by `refine`. Open-path validation mirrors
//! the fixed layout (CSR invariants, floor bound on every edge, strict
//! section order, overflow-checked lengths) plus the base-specific
//! obligations: every component is *connected* with ≥ 2 vertices (the
//! untouched-component fast path shares it verbatim, so a disconnected
//! "component" would corrupt refinement), maps + isolated cover the
//! original vertex range exactly once (coverage sum checked before the
//! `O(n)` disjointness bitmap is allocated), components are ordered by
//! first original id, and the edge fingerprint bounds `Σ` component
//! edges (equality at floor `0.0`, where pruning removes nothing).
//! Opening a base through [`from_bytes`]/[`open`] or a fixed instance
//! through [`base_from_bytes`]/[`open_base`] fails with the typed
//! [`CatalogError::WrongKind`] — never a misparse.
//!
//! # Appended delta sections (`delta.{i}`)
//!
//! Both layouts accept a trailing contiguous run of `delta.0` …
//! `delta.{d-1}` sections — serialized [`crate::GraphDelta`] batches
//! ([`append_delta`]) that the open path replays, in order, through
//! [`mod@crate::delta`] after the core artifact is assembled and
//! validated. The header fingerprint and the report section keep
//! describing the **pre-delta** core artifact; the replayed, opened
//! artifact is byte-identical to a fresh prepare of the mutated graph
//! (pinned by `tests/delta_equivalence.rs`). `append_delta` proves the
//! grown image opens and replays *before* writing it, and both append
//! and [`compact`] land through the atomic-durable path, so a crashed
//! mutation can never leave a half-state. The byte-for-byte `delta.{i}`
//! payload layout is documented in [`ugraph_io::catalog`].
//!
//! # What open() validates beyond the checksums
//!
//! * α parses and lies in `(0, 1]`; `index_mode` is a known value.
//! * Every component graph passes the full CSR invariant check
//!   ([`UncertainGraph::try_from_csr`]) **and** carries no edge below α
//!   (the kernel precondition stage 1 of the pipeline establishes).
//! * Section payload lengths are recomputed from the declared counts
//!   with overflow-checked arithmetic and must match exactly — before
//!   any count-sized allocation happens.
//! * Id maps are strictly increasing, in range, and sized to their
//!   component; the schedule's units are valid, strictly ascending in
//!   original id, and exactly `Σ component sizes + |singletons|` long —
//!   which together force the maps pairwise disjoint and the coverage
//!   exactly-once, without allocating an `O(n)` seen-set for a
//!   hostile `n`.
//! * The report's fingerprint counters match the header's.
//!
//! # Why the neighborhood index is rebuilt, not stored
//!
//! `Kernel::wrap` builds the tiered [`ugraph_core::NeighborhoodIndex`]
//! deterministically from the component graph and the persisted
//! index-mode/budget config, so rebuilding at open yields bit-identical
//! probe behavior (pinned by the round-trip suite's
//! [`crate::EnumerationStats`] equality) for a few `O(n + m)` passes.
//! Storing rows instead would make the index *data*: a CRC-valid but
//! hostile row could silently misreport neighborhoods — exactly the
//! failure class this format exists to exclude. Rebuilding **is** the
//! validation; the section namespace stays open for a future version to
//! add index rows with their own proof obligations.

use crate::delta::GraphDelta;
use crate::enumerate::{IndexMode, MuleConfig};
use crate::kernel::Kernel;
use crate::prepare::{
    PrepareConfig, PrepareReport, PreparedBase, PreparedComponent, PreparedInstance, Unit,
};
use crate::query::MuleError;
use std::path::Path;
use ugraph_core::{Components, UncertainGraph, VertexId};
use ugraph_io::catalog::{
    ByteReader, Catalog, CatalogError, CatalogHeader, CatalogWriter, FLAG_ALPHA_BASE,
    FLAG_CORE_FILTER, FLAG_SHARD_COMPONENTS, FLAG_SHARED_NEIGHBORHOOD,
};
use ugraph_io::Bytes;

fn corrupt(msg: impl Into<String>) -> CatalogError {
    CatalogError::Corrupt(msg.into())
}

/// Split a TOC name list into the core layout and the trailing run of
/// appended `delta.{i}` sections, validating that the run is contiguous
/// and numbered `0..d` in order (see [`append_delta`]). A `delta.*`
/// name anywhere but in a well-formed trailing run is a typed error.
fn split_delta_names<'a>(names: &'a [&'a str]) -> Result<(&'a [&'a str], usize), CatalogError> {
    let core_len = names
        .iter()
        .position(|n| n.starts_with("delta."))
        .unwrap_or(names.len());
    for (i, name) in names[core_len..].iter().enumerate() {
        let expect = format!("delta.{i}");
        if *name != expect {
            return Err(corrupt(format!(
                "delta section {name:?} out of sequence (expected {expect:?})"
            )));
        }
    }
    Ok((&names[..core_len], names.len() - core_len))
}

fn index_mode_to_u8(mode: IndexMode) -> u8 {
    match mode {
        IndexMode::Auto => 0,
        IndexMode::Always => 1,
        IndexMode::Never => 2,
    }
}

fn index_mode_from_u8(v: u8) -> Result<IndexMode, CatalogError> {
    match v {
        0 => Ok(IndexMode::Auto),
        1 => Ok(IndexMode::Always),
        2 => Ok(IndexMode::Never),
        other => Err(corrupt(format!("unknown index mode {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Section encoders
// ---------------------------------------------------------------------------

fn encode_graph(g: &UncertainGraph) -> Vec<u8> {
    let n = g.num_vertices();
    let arcs: usize = g.vertices().map(|v| g.degree(v)).sum();
    let name = g.name().as_bytes();
    let mut out = Vec::with_capacity(8 + 8 + 4 + name.len() + (n + 1) * 8 + arcs * 12);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(arcs as u64).to_le_bytes());
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    let mut offset = 0u64;
    out.extend_from_slice(&offset.to_le_bytes());
    for v in g.vertices() {
        offset += g.degree(v) as u64;
        out.extend_from_slice(&offset.to_le_bytes());
    }
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            out.extend_from_slice(&u.to_le_bytes());
        }
    }
    for v in g.vertices() {
        for &p in g.neighbor_probs(v) {
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
    out
}

fn decode_graph(payload: &[u8], alpha: f64, what: &str) -> Result<UncertainGraph, CatalogError> {
    let mut r = ByteReader::new(payload);
    let truncated = || corrupt(format!("{what}: truncated header"));
    let n = r.u64_le().ok_or_else(truncated)?;
    let arcs = r.u64_le().ok_or_else(truncated)?;
    let name_len = r.u32_le().ok_or_else(truncated)? as u64;
    // Exact-length check with overflow-safe arithmetic BEFORE any
    // count-sized allocation: a hostile header cannot reserve memory
    // the payload does not carry.
    let expect = (|| {
        let fixed = 8u64 + 8 + 4;
        let offsets = n.checked_add(1)?.checked_mul(8)?;
        let arcs_bytes = arcs.checked_mul(12)?;
        fixed
            .checked_add(name_len)?
            .checked_add(offsets)?
            .checked_add(arcs_bytes)
    })()
    .ok_or_else(|| corrupt(format!("{what}: declared sizes overflow")))?;
    if expect != payload.len() as u64 {
        return Err(corrupt(format!(
            "{what}: payload is {} bytes but the declared counts need {expect}",
            payload.len()
        )));
    }
    let n = n as usize;
    let arcs = arcs as usize;
    let name = std::str::from_utf8(r.take(name_len as usize).ok_or_else(truncated)?)
        .map_err(|_| corrupt(format!("{what}: name is not UTF-8")))?
        .to_string();
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(r.u64_le().unwrap() as usize);
    }
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        neighbors.push(r.u32_le().unwrap());
    }
    let mut probs: Vec<f64> = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        probs.push(f64::from_bits(r.u64_le().unwrap()));
    }
    debug_assert!(r.is_empty());
    let g = UncertainGraph::try_from_csr(offsets, neighbors, probs, name)
        .map_err(|why| corrupt(format!("{what}: {why}")))?;
    // Kernel precondition: pipeline stage 1 guarantees every surviving
    // edge has p ≥ α, and the search kernels assume it.
    if let Some(p) = g.min_edge_prob() {
        if p < alpha {
            return Err(corrupt(format!(
                "{what}: edge probability {p} below the catalog's α = {alpha}"
            )));
        }
    }
    Ok(g)
}

fn encode_ids(ids: &[VertexId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + ids.len() * 4);
    out.extend_from_slice(&(ids.len() as u64).to_le_bytes());
    for &v in ids {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a strictly-increasing id list bounded by `original_n`.
fn decode_ids(
    payload: &[u8],
    original_n: usize,
    what: &str,
) -> Result<Vec<VertexId>, CatalogError> {
    let mut r = ByteReader::new(payload);
    let len = r
        .u64_le()
        .ok_or_else(|| corrupt(format!("{what}: truncated length")))?;
    let expect = len
        .checked_mul(4)
        .and_then(|b| b.checked_add(8))
        .ok_or_else(|| corrupt(format!("{what}: declared length overflows")))?;
    if expect != payload.len() as u64 {
        return Err(corrupt(format!(
            "{what}: payload is {} bytes but the declared length needs {expect}",
            payload.len()
        )));
    }
    let len = len as usize;
    let mut ids = Vec::with_capacity(len);
    let mut prev: Option<VertexId> = None;
    for _ in 0..len {
        let v = r.u32_le().unwrap();
        if (v as usize) >= original_n {
            return Err(corrupt(format!(
                "{what}: id {v} out of range for {original_n} original vertices"
            )));
        }
        if let Some(prev) = prev {
            if v <= prev {
                return Err(corrupt(format!("{what}: ids not strictly increasing")));
            }
        }
        prev = Some(v);
        ids.push(v);
    }
    Ok(ids)
}

fn encode_schedule(schedule: &[Unit]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + schedule.len() * 9);
    out.extend_from_slice(&(schedule.len() as u64).to_le_bytes());
    for unit in schedule {
        match *unit {
            Unit::Singleton(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
            }
            Unit::Root { comp, local } => {
                out.push(1);
                out.extend_from_slice(&comp.to_le_bytes());
                out.extend_from_slice(&local.to_le_bytes());
            }
        }
    }
    out
}

/// Decode and fully validate the schedule: every unit well-formed and
/// in range, original ids strictly ascending, and the unit count equal
/// to `Σ component sizes + |singletons|`. Ascending original ids make
/// units pairwise distinct, so the count equality forces an exact
/// bijection onto the roots and singletons — each enumerated exactly
/// once, with no `O(original_n)` bookkeeping a hostile header could
/// inflate.
fn decode_schedule(
    payload: &[u8],
    components: &[PreparedComponent],
    singletons: &[VertexId],
) -> Result<Vec<Unit>, CatalogError> {
    let mut r = ByteReader::new(payload);
    let len = r
        .u64_le()
        .ok_or_else(|| corrupt("schedule: truncated length"))?;
    let expect = len
        .checked_mul(9)
        .and_then(|b| b.checked_add(8))
        .ok_or_else(|| corrupt("schedule: declared length overflows"))?;
    if expect != payload.len() as u64 {
        return Err(corrupt(format!(
            "schedule: payload is {} bytes but the declared length needs {expect}",
            payload.len()
        )));
    }
    let expected_units: usize = components
        .iter()
        .map(|pc| pc.to_original.len())
        .sum::<usize>()
        + singletons.len();
    if len as usize != expected_units {
        return Err(corrupt(format!(
            "schedule has {len} units but the components and singletons supply {expected_units}"
        )));
    }
    let len = len as usize;
    let mut schedule = Vec::with_capacity(len);
    let mut prev: Option<VertexId> = None;
    for i in 0..len {
        let tag = r.u8().unwrap();
        let a = r.u32_le().unwrap();
        let b = r.u32_le().unwrap();
        let (unit, orig) = match tag {
            0 => {
                if b != 0 {
                    return Err(corrupt(format!("schedule unit {i}: singleton with b ≠ 0")));
                }
                if singletons.binary_search(&a).is_err() {
                    return Err(corrupt(format!(
                        "schedule unit {i}: {a} is not a singleton vertex"
                    )));
                }
                (Unit::Singleton(a), a)
            }
            1 => {
                let pc = components.get(a as usize).ok_or_else(|| {
                    corrupt(format!("schedule unit {i}: component {a} out of range"))
                })?;
                let orig = *pc.to_original.get(b as usize).ok_or_else(|| {
                    corrupt(format!(
                        "schedule unit {i}: local root {b} out of range for component {a}"
                    ))
                })?;
                (Unit::Root { comp: a, local: b }, orig)
            }
            other => {
                return Err(corrupt(format!("schedule unit {i}: unknown tag {other}")));
            }
        };
        if let Some(prev) = prev {
            if orig <= prev {
                return Err(corrupt(format!(
                    "schedule unit {i}: original ids not strictly ascending"
                )));
            }
        }
        prev = Some(orig);
        schedule.push(unit);
    }
    Ok(schedule)
}

fn encode_report(report: &PrepareReport) -> Vec<u8> {
    let fields = report.fields();
    let mut out = Vec::with_capacity(8 + fields.len() * 8);
    out.extend_from_slice(&(fields.len() as u64).to_le_bytes());
    for (_, value) in fields {
        out.extend_from_slice(&(value as u64).to_le_bytes());
    }
    out
}

fn decode_report(payload: &[u8]) -> Result<PrepareReport, CatalogError> {
    let template = PrepareReport::default();
    let n_fields = template.fields().len();
    let mut r = ByteReader::new(payload);
    let count = r
        .u64_le()
        .ok_or_else(|| corrupt("report: truncated length"))?;
    if count as usize != n_fields || payload.len() != 8 + n_fields * 8 {
        return Err(corrupt(format!(
            "report: expected exactly {n_fields} u64 counters, got count {count} in {} bytes",
            payload.len()
        )));
    }
    let mut next = || r.u64_le().unwrap() as usize;
    Ok(PrepareReport {
        original_vertices: next(),
        original_edges: next(),
        alpha_pruned_edges: next(),
        core_filtered_vertices: next(),
        core_filtered_edges: next(),
        shared_pruned_edges: next(),
        shared_isolated_vertices: next(),
        components_total: next(),
        components_kept: next(),
        components_dropped_small: next(),
        singleton_vertices: next(),
        largest_component: next(),
        final_vertices: next(),
        final_edges: next(),
    })
}

// ---------------------------------------------------------------------------
// Instance ⇄ catalog
// ---------------------------------------------------------------------------

/// Encode a prepared instance as a UGQ1 byte image.
pub fn to_bytes(inst: &PreparedInstance) -> Vec<u8> {
    let cfg = inst.config();
    let mut flags = 0u32;
    if cfg.core_filter {
        flags |= FLAG_CORE_FILTER;
    }
    if cfg.shared_neighborhood {
        flags |= FLAG_SHARED_NEIGHBORHOOD;
    }
    if cfg.shard_components {
        flags |= FLAG_SHARD_COMPONENTS;
    }
    let mut writer = CatalogWriter::new(CatalogHeader {
        flags,
        index_mode: index_mode_to_u8(cfg.mule.index_mode),
        alpha_bits: inst.alpha().to_bits(),
        min_size: cfg.min_size as u64,
        dense_index_bytes: cfg.mule.dense_index_bytes as u64,
        max_index_bytes: cfg.mule.max_index_bytes as u64,
        original_vertices: inst.original_vertices() as u64,
        original_edges: inst.report().original_edges as u64,
        content_hash: 0, // computed by the writer
    });
    for (i, (g, map)) in inst.components().enumerate() {
        writer.add_section(format!("component.{i}.graph"), encode_graph(g));
        writer.add_section(format!("component.{i}.map"), encode_ids(map));
    }
    writer.add_section("singletons", encode_ids(inst.singletons()));
    writer.add_section("schedule", encode_schedule(inst.schedule()));
    writer.add_section("report", encode_report(inst.report()));
    writer.finish()
}

/// Encode a prepared instance and write it to `path` atomically and
/// durably (temp file + fsync + rename; see
/// [`ugraph_io::fault::write_atomic`]). On error, prior contents of
/// `path` are intact.
pub fn save(inst: &PreparedInstance, path: impl AsRef<Path>) -> Result<(), CatalogError> {
    ugraph_io::fault::write_atomic(path.as_ref(), &to_bytes(inst))?;
    Ok(())
}

/// Bounded original-vertex count from the header fingerprint.
fn original_n_from_header(h: &CatalogHeader) -> Result<usize, CatalogError> {
    usize::try_from(h.original_vertices)
        .ok()
        .filter(|&n| n <= u32::MAX as usize + 1)
        .ok_or_else(|| {
            corrupt(format!(
                "original vertex count {} exceeds u32",
                h.original_vertices
            ))
        })
}

/// The prepare configuration both layouts persist in the header.
fn config_from_header(h: &CatalogHeader) -> Result<PrepareConfig, CatalogError> {
    let to_usize = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| corrupt(format!("{what} {v} exceeds this platform's usize")))
    };
    Ok(PrepareConfig {
        min_size: to_usize(h.min_size, "min_size")?,
        core_filter: h.flags & FLAG_CORE_FILTER != 0,
        shared_neighborhood: h.flags & FLAG_SHARED_NEIGHBORHOOD != 0,
        shard_components: h.flags & FLAG_SHARD_COMPONENTS != 0,
        mule: MuleConfig {
            index_mode: index_mode_from_u8(h.index_mode)?,
            max_index_bytes: to_usize(h.max_index_bytes, "max_index_bytes")?,
            dense_index_bytes: to_usize(h.dense_index_bytes, "dense_index_bytes")?,
            // Ablation switches of the direct path; the pipeline ignores
            // them and the catalog does not persist them.
            degeneracy_order: false,
            naive_root: false,
        },
    })
}

// ---------------------------------------------------------------------------
// Base ⇄ catalog (the α-generic layout)
// ---------------------------------------------------------------------------

fn encode_meta(name: &str) -> Vec<u8> {
    let bytes = name.as_bytes();
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Encode a prepared base as a flagged-UGQ1 byte image (see the module
/// docs for the section layout).
pub fn base_to_bytes(base: &PreparedBase) -> Vec<u8> {
    let cfg = base.config();
    let mut flags = FLAG_ALPHA_BASE;
    if cfg.core_filter {
        flags |= FLAG_CORE_FILTER;
    }
    if cfg.shared_neighborhood {
        flags |= FLAG_SHARED_NEIGHBORHOOD;
    }
    if cfg.shard_components {
        flags |= FLAG_SHARD_COMPONENTS;
    }
    let mut writer = CatalogWriter::new(CatalogHeader {
        flags,
        index_mode: index_mode_to_u8(cfg.mule.index_mode),
        alpha_bits: base.floor().to_bits(),
        min_size: cfg.min_size as u64,
        dense_index_bytes: cfg.mule.dense_index_bytes as u64,
        max_index_bytes: cfg.mule.max_index_bytes as u64,
        original_vertices: base.original_vertices() as u64,
        original_edges: base.original_edges() as u64,
        content_hash: 0, // computed by the writer
    });
    for (i, (g, map)) in base.components().enumerate() {
        writer.add_section(format!("component.{i}.graph"), encode_graph(g));
        writer.add_section(format!("component.{i}.map"), encode_ids(map));
    }
    writer.add_section("isolated", encode_ids(base.isolated()));
    writer.add_section("base.meta", encode_meta(base.graph_name()));
    writer.finish()
}

/// Encode a prepared base and write it to `path` atomically and
/// durably (temp file + fsync + rename; see
/// [`ugraph_io::fault::write_atomic`]). On error, prior contents of
/// `path` are intact.
pub fn save_base(base: &PreparedBase, path: impl AsRef<Path>) -> Result<(), CatalogError> {
    ugraph_io::fault::write_atomic(path.as_ref(), &base_to_bytes(base))?;
    Ok(())
}

/// Rebuild a prepared base from a flagged-UGQ1 byte image, re-validating
/// every semantic invariant the refinement path relies on (see the
/// module docs). Runs no pipeline stage; the per-component neighborhood
/// indexes are rebuilt deterministically, exactly as in [`from_bytes`].
pub fn base_from_bytes(data: Bytes) -> Result<PreparedBase, CatalogError> {
    let cat = Catalog::from_bytes(data)?;
    cat.verify()?;
    let h = *cat.header();
    if h.flags & FLAG_ALPHA_BASE == 0 {
        return Err(CatalogError::WrongKind {
            found: "a fixed-α prepared instance",
            expected: "an α-generic base artifact (use the fixed open path)",
        });
    }

    // The floor is an α-*bound*, not a query α: 0.0 (prune nothing) is
    // legal here and only here, so validate the range by hand.
    let floor = f64::from_bits(h.alpha_bits);
    if !(0.0..=1.0).contains(&floor) {
        // NaN fails the range test too.
        return Err(corrupt(format!("α-floor {floor} outside [0, 1]")));
    }
    let original_n = original_n_from_header(&h)?;
    let cfg = config_from_header(&h)?;

    // Canonical section order: k graph/map pairs, then isolated, then
    // base.meta — nothing else, nothing moved — optionally followed by
    // appended `delta.{i}` sections, replayed after assembly.
    let all_names: Vec<&str> = cat.sections().iter().map(|e| e.name.as_str()).collect();
    let (names, delta_count) = split_delta_names(&all_names)?;
    if names.len() < 2 || !(names.len() - 2).is_multiple_of(2) {
        return Err(corrupt(format!(
            "TOC has {} sections; expected 2·k + 2 for a base catalog",
            names.len()
        )));
    }
    let k = (names.len() - 2) / 2;
    for i in 0..k {
        if names[2 * i] != format!("component.{i}.graph")
            || names[2 * i + 1] != format!("component.{i}.map")
        {
            return Err(corrupt(format!(
                "sections out of canonical order at component {i} (found {:?}, {:?})",
                names[2 * i],
                names[2 * i + 1]
            )));
        }
    }
    if names[2 * k..] != ["isolated", "base.meta"] {
        return Err(corrupt(format!(
            "sections out of canonical order in the tail (found {:?})",
            &names[2 * k..]
        )));
    }

    let mut parts: Vec<(UncertainGraph, Vec<VertexId>)> = Vec::with_capacity(k);
    let mut component_edges = 0usize;
    let mut covered = 0usize;
    for i in 0..k {
        let graph_name = format!("component.{i}.graph");
        // decode_graph's min-probability bound doubles as the floor
        // precondition: every stored edge must carry p ≥ floor.
        let g = decode_graph(cat.section(&graph_name)?, floor, &graph_name)?;
        let map_name = format!("component.{i}.map");
        let map = decode_ids(cat.section(&map_name)?, original_n, &map_name)?;
        if map.len() != g.num_vertices() {
            return Err(corrupt(format!(
                "component {i}: map has {} ids for a {}-vertex graph",
                map.len(),
                g.num_vertices()
            )));
        }
        if g.num_vertices() < 2 {
            return Err(corrupt(format!(
                "base component {i} has {} vertices; isolated vertices belong in the isolated section",
                g.num_vertices()
            )));
        }
        // Connectivity is load-bearing: refine's untouched fast path
        // shares a base component *as is*, assuming it is one component.
        if Components::compute(&g).count() != 1 {
            return Err(corrupt(format!("base component {i} is not connected")));
        }
        // Components are emitted in discovery order from ascending BFS
        // roots, so first original ids strictly increase.
        if let Some((_, prev_map)) = parts.last() {
            if map[0] <= prev_map[0] {
                return Err(corrupt(format!(
                    "base component {i} out of order (first id {} after {})",
                    map[0], prev_map[0]
                )));
            }
        }
        component_edges += g.num_edges();
        covered += map.len();
        parts.push((g, map));
    }

    let isolated = decode_ids(cat.section("isolated")?, original_n, "isolated")?;
    // Exactly-once coverage: the cheap sum first (bounding the bitmap
    // allocation below by actual payload bytes), then disjointness.
    covered += isolated.len();
    if covered != original_n {
        return Err(corrupt(format!(
            "components and isolated vertices cover {covered} of {original_n} original vertices"
        )));
    }
    let mut seen = vec![false; original_n];
    for id in parts
        .iter()
        .flat_map(|(_, map)| map.iter())
        .chain(isolated.iter())
    {
        if std::mem::replace(&mut seen[*id as usize], true) {
            return Err(corrupt(format!(
                "original vertex {id} appears in more than one component"
            )));
        }
    }
    // Edge fingerprint: floor-pruning only removes edges, and removes
    // none at floor 0.
    let original_edges = usize::try_from(h.original_edges)
        .map_err(|_| corrupt("original edge count exceeds this platform's usize"))?;
    if component_edges > original_edges || (floor == 0.0 && component_edges != original_edges) {
        return Err(corrupt(format!(
            "components carry {component_edges} edges but the header fingerprint says {original_edges} (floor {floor})"
        )));
    }

    let meta = cat.section("base.meta")?;
    let mut r = ByteReader::new(meta);
    let name_len = r
        .u32_le()
        .ok_or_else(|| corrupt("base.meta: truncated name length"))? as usize;
    if meta.len() != 4 + name_len {
        return Err(corrupt(format!(
            "base.meta: payload is {} bytes but the declared name needs {}",
            meta.len(),
            4 + name_len
        )));
    }
    let name = std::str::from_utf8(r.take(name_len).unwrap())
        .map_err(|_| corrupt("base.meta: name is not UTF-8"))?
        .to_string();

    let mut base = PreparedBase::from_parts(
        floor,
        cfg,
        original_n,
        original_edges,
        name,
        parts,
        isolated,
    );
    replay_deltas(&cat, delta_count, |d| {
        crate::delta::apply_base(&mut base, d)
    })?;
    Ok(base)
}

/// Read and rebuild a prepared base from a catalog file, after
/// clearing any orphan temp a crashed save left beside it.
pub fn open_base(path: impl AsRef<Path>) -> Result<PreparedBase, CatalogError> {
    let path = path.as_ref();
    ugraph_io::fault::cleanup_orphan(path);
    let data = std::fs::read(path)?;
    base_from_bytes(Bytes::from(data))
}

/// Rebuild a prepared instance from a UGQ1 byte image, re-validating
/// every semantic invariant (see the module docs). Runs **no** pipeline
/// stage: `prepare::pipeline_invocations()` is untouched; the only
/// rebuilt artifact is the deterministic per-component neighborhood
/// index.
pub fn from_bytes(data: Bytes) -> Result<PreparedInstance, CatalogError> {
    let cat = Catalog::from_bytes(data)?;
    // The open path loads every section, so verify everything up front:
    // all payload checksums plus the header's whole-payload hash.
    cat.verify()?;
    let h = *cat.header();
    if h.flags & FLAG_ALPHA_BASE != 0 {
        return Err(CatalogError::WrongKind {
            found: "an α-generic base artifact",
            expected: "a fixed-α prepared instance (use the base open path)",
        });
    }

    let alpha = f64::from_bits(h.alpha_bits);
    UncertainGraph::validate_alpha(alpha).map_err(|e| corrupt(e.to_string()))?;
    let original_n = original_n_from_header(&h)?;
    let cfg = config_from_header(&h)?;

    // Canonical section order is part of the format: k graph/map pairs,
    // then singletons, schedule, report — nothing else, nothing moved —
    // optionally followed by a contiguous run of appended `delta.{i}`
    // sections ([`append_delta`]), replayed after assembly below.
    let all_names: Vec<&str> = cat.sections().iter().map(|e| e.name.as_str()).collect();
    let (names, delta_count) = split_delta_names(&all_names)?;
    if names.len() < 3 || !(names.len() - 3).is_multiple_of(2) {
        return Err(corrupt(format!(
            "TOC has {} sections; expected 2·k + 3",
            names.len()
        )));
    }
    let k = (names.len() - 3) / 2;
    for i in 0..k {
        if names[2 * i] != format!("component.{i}.graph")
            || names[2 * i + 1] != format!("component.{i}.map")
        {
            return Err(corrupt(format!(
                "sections out of canonical order at component {i} (found {:?}, {:?})",
                names[2 * i],
                names[2 * i + 1]
            )));
        }
    }
    if names[2 * k..] != ["singletons", "schedule", "report"] {
        return Err(corrupt(format!(
            "sections out of canonical order in the tail (found {:?})",
            &names[2 * k..]
        )));
    }

    let mut components = Vec::with_capacity(k);
    for i in 0..k {
        let graph_name = format!("component.{i}.graph");
        let g = decode_graph(cat.section(&graph_name)?, alpha, &graph_name)?;
        let map_name = format!("component.{i}.map");
        let map = decode_ids(cat.section(&map_name)?, original_n, &map_name)?;
        if map.len() != g.num_vertices() {
            return Err(corrupt(format!(
                "component {i}: map has {} ids for a {}-vertex graph",
                map.len(),
                g.num_vertices()
            )));
        }
        components.push(PreparedComponent {
            kernel: Kernel::wrap(g, alpha, &cfg.mule),
            to_original: map,
        });
    }

    let singletons = decode_ids(cat.section("singletons")?, original_n, "singletons")?;
    if cfg.min_size >= 2 && !singletons.is_empty() {
        return Err(corrupt(
            "singletons present although min_size ≥ 2 excludes them",
        ));
    }
    let schedule = decode_schedule(cat.section("schedule")?, &components, &singletons)?;
    let report = decode_report(cat.section("report")?)?;
    if report.original_vertices as u64 != h.original_vertices
        || report.original_edges as u64 != h.original_edges
    {
        return Err(corrupt(
            "report counters disagree with the header's graph fingerprint",
        ));
    }

    // The graph name is only observable on whole-graph instances (the
    // identity fast path / shard-off store the input graph verbatim,
    // name included; component subgraphs carry `""`). Recover it so
    // delta replay rebuilds byte-identical merged graphs.
    let name = components
        .iter()
        .find(|pc| pc.to_original.len() == original_n)
        .map(|pc| pc.kernel.g.name().to_string())
        .unwrap_or_default();
    let mut inst = PreparedInstance::from_parts(
        alpha, cfg, original_n, name, components, singletons, schedule, report,
    );
    replay_deltas(&cat, delta_count, |d| {
        crate::delta::apply_instance(&mut inst, d)
    })?;
    Ok(inst)
}

/// Replay the appended `delta.{i}` sections, in order, through `apply`.
/// The header fingerprint and every structural check describe the
/// pre-delta core artifact — they ran before this. A batch that fails
/// to decode or apply makes the whole catalog a typed corruption error
/// ([`append_delta`] proves applicability before writing, so a failure
/// here means the file was tampered with or damaged).
fn replay_deltas(
    cat: &Catalog,
    delta_count: usize,
    mut apply: impl FnMut(&GraphDelta) -> Result<(), MuleError>,
) -> Result<(), CatalogError> {
    for i in 0..delta_count {
        let sec = format!("delta.{i}");
        let delta = GraphDelta::from_bytes(cat.section(&sec)?)
            .map_err(|e| corrupt(format!("{sec}: {e}")))?;
        apply(&delta).map_err(|e| corrupt(format!("{sec}: {e}")))?;
    }
    Ok(())
}

/// Read and rebuild a prepared instance from a catalog file, after
/// clearing any orphan temp a crashed save left beside it.
pub fn open(path: impl AsRef<Path>) -> Result<PreparedInstance, CatalogError> {
    let path = path.as_ref();
    ugraph_io::fault::cleanup_orphan(path);
    let data = std::fs::read(path)?;
    from_bytes(Bytes::from(data))
}

// ---------------------------------------------------------------------------
// Delta sections: append, count, compact
// ---------------------------------------------------------------------------

/// Append one [`GraphDelta`] batch to a catalog file as the next
/// `delta.{i}` section and return the new pending-delta count. Works on
/// both layouts (fixed instance and α-generic base).
///
/// The UGQ1 container requires sections to tile the file contiguously
/// in TOC order, so an append re-serializes the whole catalog (core
/// sections byte-for-byte, header — which keeps describing the
/// *pre-delta* artifact — intact) and lands it through the
/// atomic-durable write path: on any error, including a crash at an
/// arbitrary byte boundary, the prior file is intact. Before anything
/// reaches disk the new image is opened and fully replayed in memory —
/// a batch the artifact rejects (unknown edge, out-of-range vertex,
/// precondition failure; see [`mod@crate::delta`]) is never persisted,
/// so a catalog that passed `append_delta` always reopens.
pub fn append_delta(path: impl AsRef<Path>, delta: &GraphDelta) -> Result<usize, MuleError> {
    let path = path.as_ref();
    ugraph_io::fault::cleanup_orphan(path);
    let data = std::fs::read(path).map_err(CatalogError::from)?;
    let (bytes, pending) = append_delta_bytes(Bytes::from(data), delta)?;
    ugraph_io::fault::write_atomic(path, &bytes).map_err(CatalogError::from)?;
    Ok(pending)
}

/// Byte-level form of [`append_delta`]: returns the appended catalog
/// image and the resulting pending-delta count without touching disk.
pub fn append_delta_bytes(data: Bytes, delta: &GraphDelta) -> Result<(Vec<u8>, usize), MuleError> {
    let cat = Catalog::from_bytes(data.clone())?;
    cat.verify()?;
    let names: Vec<&str> = cat.sections().iter().map(|e| e.name.as_str()).collect();
    let (_, d) = split_delta_names(&names)?;
    // Prove the batch replays against the artifact's current state
    // (any already-pending deltas applied first) before bytes are
    // assembled: a rejected batch surfaces as the typed
    // [`MuleError::Delta`] and is never persisted.
    if cat.header().flags & FLAG_ALPHA_BASE != 0 {
        let mut base = base_from_bytes(data)?;
        crate::delta::apply_base(&mut base, delta)?;
    } else {
        let mut inst = from_bytes(data)?;
        crate::delta::apply_instance(&mut inst, delta)?;
    }
    let mut writer = CatalogWriter::new(*cat.header());
    for entry in cat.sections() {
        writer.add_section(entry.name.clone(), cat.section(&entry.name)?.to_vec());
    }
    writer.add_section(format!("delta.{d}"), delta.to_bytes());
    Ok((writer.finish(), d + 1))
}

/// Number of pending (appended, not yet compacted) `delta.{i}` sections
/// in a catalog file. Counts from the TOC without replaying.
pub fn pending_deltas(path: impl AsRef<Path>) -> Result<usize, MuleError> {
    let path = path.as_ref();
    ugraph_io::fault::cleanup_orphan(path);
    let data = std::fs::read(path).map_err(CatalogError::from)?;
    let cat = Catalog::from_bytes(Bytes::from(data))?;
    cat.verify()?;
    let names: Vec<&str> = cat.sections().iter().map(|e| e.name.as_str()).collect();
    Ok(split_delta_names(&names).map_err(MuleError::from)?.1)
}

/// Fold every pending `delta.{i}` section into the core sections and
/// rewrite the catalog clean; returns how many batches were folded
/// (`0` = the file was already clean and is untouched). The compacted
/// image is exactly what saving the replayed artifact produces — i.e.
/// byte-identical to a fresh save of a fresh prepare of the mutated
/// graph — and lands through the same atomic-durable path as
/// [`append_delta`]: a crash mid-compaction leaves the old
/// base-plus-deltas file intact and replayable.
pub fn compact(path: impl AsRef<Path>) -> Result<usize, MuleError> {
    let path = path.as_ref();
    ugraph_io::fault::cleanup_orphan(path);
    let data = std::fs::read(path).map_err(CatalogError::from)?;
    let image = Bytes::from(data);
    let cat = Catalog::from_bytes(image.clone())?;
    cat.verify()?;
    let names: Vec<&str> = cat.sections().iter().map(|e| e.name.as_str()).collect();
    let (_, d) = split_delta_names(&names)?;
    if d == 0 {
        return Ok(0);
    }
    let bytes = if cat.header().flags & FLAG_ALPHA_BASE != 0 {
        base_to_bytes(&base_from_bytes(image)?)
    } else {
        to_bytes(&from_bytes(image)?)
    };
    ugraph_io::fault::write_atomic(path, &bytes).map_err(CatalogError::from)?;
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::prepare;
    use crate::sinks::CollectSink;
    use ugraph_core::builder::from_edges;

    fn fixture() -> UncertainGraph {
        from_edges(
            9,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.9),
                (4, 5, 0.8),
                (5, 6, 0.8),
                (4, 6, 0.8),
                (7, 8, 0.3),
            ],
        )
        .unwrap()
        .with_name("catalog-fixture")
    }

    /// `unwrap_err` without requiring `Debug` on [`PreparedInstance`].
    fn expect_err(res: Result<PreparedInstance, CatalogError>) -> CatalogError {
        match res {
            Ok(_) => panic!("hostile catalog was accepted"),
            Err(e) => e,
        }
    }

    fn pairs(inst: &mut PreparedInstance) -> Vec<(Vec<VertexId>, u64)> {
        let mut sink = CollectSink::new();
        inst.run(&mut sink);
        sink.into_pairs()
            .into_iter()
            .map(|(c, p)| (c, p.to_bits()))
            .collect()
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.05] {
            let mut inst = prepare(&g, alpha, &PrepareConfig::default()).unwrap();
            let bytes = to_bytes(&inst);
            let mut back = from_bytes(Bytes::from(bytes)).unwrap();
            assert_eq!(back.alpha(), inst.alpha());
            assert_eq!(back.min_size(), inst.min_size());
            assert_eq!(back.original_vertices(), inst.original_vertices());
            assert_eq!(back.report(), inst.report());
            assert_eq!(back.singletons(), inst.singletons());
            assert_eq!(pairs(&mut back), pairs(&mut inst), "α={alpha}");
            assert_eq!(back.stats(), inst.stats(), "α={alpha}");
        }
    }

    #[test]
    fn round_trip_preserves_component_graphs_exactly() {
        let g = fixture();
        let inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        let back = from_bytes(Bytes::from(to_bytes(&inst))).unwrap();
        for ((ga, ma), (gb, mb)) in inst.components().zip(back.components()) {
            assert_eq!(ga, gb);
            assert_eq!(ga.name(), gb.name());
            assert_eq!(ma, mb);
        }
        assert_eq!(back.config().min_size, 0);
        assert!(back.config().shard_components);
    }

    #[test]
    fn empty_and_edgeless_instances_round_trip() {
        for n in [0usize, 3] {
            let g = ugraph_core::GraphBuilder::new(n).build();
            let mut inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
            let mut back = from_bytes(Bytes::from(to_bytes(&inst))).unwrap();
            assert_eq!(pairs(&mut back), pairs(&mut inst), "n={n}");
        }
    }

    #[test]
    fn min_size_instances_round_trip() {
        let g = fixture();
        for t in [2usize, 3, 4] {
            let mut inst = prepare(&g, 0.5, &PrepareConfig::with_min_size(t)).unwrap();
            let mut back = from_bytes(Bytes::from(to_bytes(&inst))).unwrap();
            assert_eq!(back.min_size(), t);
            assert_eq!(pairs(&mut back), pairs(&mut inst), "t={t}");
        }
    }

    #[test]
    fn sub_alpha_component_edge_rejected() {
        // Hand-build a catalog whose component graph carries an edge
        // below the header's α: checksums all valid, semantics hostile.
        let g = fixture();
        let inst = prepare(&g, 0.9, &PrepareConfig::default()).unwrap();
        let mut bytes = to_bytes(&inst);
        // Recreate with a higher alpha claim than the payload honors:
        // flip the stored α up to 0.95 and re-seal the header CRC.
        let new_alpha = 0.95f64.to_bits().to_le_bytes();
        bytes[16..24].copy_from_slice(&new_alpha);
        let crc =
            ugraph_io::catalog::crc32(&bytes[..ugraph_io::catalog::HEADER_LEN - 4]).to_le_bytes();
        let hl = ugraph_io::catalog::HEADER_LEN;
        bytes[hl - 4..hl].copy_from_slice(&crc);
        let err = expect_err(from_bytes(Bytes::from(bytes)));
        assert!(err.to_string().contains("below the catalog's α"), "{err}");
    }

    #[test]
    fn report_fingerprint_mismatch_rejected() {
        let g = fixture();
        let inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        let bytes = to_bytes(&inst);
        // Rebuild the catalog with a lying report section (valid CRCs).
        let cat = Catalog::from_bytes(Bytes::from(bytes)).unwrap();
        let mut writer = CatalogWriter::new(*cat.header());
        for e in cat.sections() {
            let mut payload = cat.section(&e.name).unwrap().to_vec();
            if e.name == "report" {
                payload[8..16].copy_from_slice(&999u64.to_le_bytes()); // original_vertices
            }
            writer.add_section(e.name.clone(), payload);
        }
        let err = expect_err(from_bytes(Bytes::from(writer.finish())));
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn swapped_section_order_rejected() {
        let g = fixture();
        let inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        let cat = Catalog::from_bytes(Bytes::from(to_bytes(&inst))).unwrap();
        assert!(cat.sections().len() >= 5);
        // Re-serialize with two sections swapped: every checksum is
        // valid, but the canonical order is not.
        let mut order: Vec<String> = cat.sections().iter().map(|e| e.name.clone()).collect();
        order.swap(0, 1);
        let mut writer = CatalogWriter::new(*cat.header());
        for name in &order {
            writer.add_section(name.clone(), cat.section(name).unwrap().to_vec());
        }
        let err = expect_err(from_bytes(Bytes::from(writer.finish())));
        assert!(err.to_string().contains("canonical order"), "{err}");
    }

    #[test]
    fn base_round_trip_preserves_refinement_bytes() {
        let g = fixture();
        for floor in [0.0, 0.25] {
            let base = crate::prepare::prepare_base(&g, floor, &PrepareConfig::default()).unwrap();
            let back = base_from_bytes(Bytes::from(base_to_bytes(&base))).unwrap();
            assert_eq!(back.floor().to_bits(), base.floor().to_bits());
            assert_eq!(back.original_vertices(), base.original_vertices());
            assert_eq!(back.original_edges(), base.original_edges());
            assert_eq!(back.graph_name(), base.graph_name());
            assert_eq!(back.isolated(), base.isolated());
            for ((ga, ma), (gb, mb)) in base.components().zip(back.components()) {
                assert_eq!(ga, gb);
                assert_eq!(ma, mb);
            }
            // The real contract: a reopened base refines byte-identically.
            for alpha in [0.9, 0.5] {
                let mut a = base.refine(alpha).unwrap();
                let mut b = back.refine(alpha).unwrap();
                assert_eq!(to_bytes(&a), to_bytes(&b), "floor={floor} α={alpha}");
                assert_eq!(pairs(&mut a), pairs(&mut b), "floor={floor} α={alpha}");
            }
        }
    }

    #[test]
    fn base_round_trip_is_byte_stable() {
        let g = fixture();
        let base = crate::prepare::prepare_base(&g, 0.5, &PrepareConfig::with_min_size(3)).unwrap();
        let bytes = base_to_bytes(&base);
        let back = base_from_bytes(Bytes::from(bytes.clone())).unwrap();
        assert_eq!(base_to_bytes(&back), bytes);
        assert_eq!(back.min_size(), 3);
    }

    #[test]
    fn wrong_kind_is_typed_in_both_directions() {
        let g = fixture();
        let inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        let base = crate::prepare::prepare_base(&g, 0.0, &PrepareConfig::default()).unwrap();
        assert!(matches!(
            base_from_bytes(Bytes::from(to_bytes(&inst))),
            Err(CatalogError::WrongKind { .. })
        ));
        assert!(matches!(
            from_bytes(Bytes::from(base_to_bytes(&base))),
            Err(CatalogError::WrongKind { .. })
        ));
    }

    /// Re-serialize a base catalog with one section's payload replaced,
    /// keeping every checksum valid.
    fn reseal_base(bytes: Vec<u8>, target: &str, f: impl Fn(&mut Vec<u8>)) -> Vec<u8> {
        let cat = Catalog::from_bytes(Bytes::from(bytes)).unwrap();
        let mut writer = CatalogWriter::new(*cat.header());
        for e in cat.sections() {
            let mut payload = cat.section(&e.name).unwrap().to_vec();
            if e.name == target {
                f(&mut payload);
            }
            writer.add_section(e.name.clone(), payload);
        }
        writer.finish()
    }

    fn expect_base_err(res: Result<PreparedBase, CatalogError>) -> CatalogError {
        match res {
            Ok(_) => panic!("hostile base catalog was accepted"),
            Err(e) => e,
        }
    }

    #[test]
    fn disconnected_base_component_rejected() {
        // Two triangles in ONE declared component section: CRC-valid,
        // semantically hostile — refine's share path would mis-serve it.
        let g = fixture();
        let base = crate::prepare::prepare_base(&g, 0.5, &PrepareConfig::default()).unwrap();
        let two = from_edges(6, &[(0, 1, 0.9), (1, 2, 0.9), (3, 4, 0.9), (4, 5, 0.9)]).unwrap();
        let bad = reseal_base(base_to_bytes(&base), "component.0.graph", |payload| {
            *payload = encode_graph(&two);
        });
        // Map length no longer matches (3 ids vs 6 vertices) — widen the
        // map too so connectivity is the first violated rule.
        let bad = reseal_base(bad, "component.0.map", |payload| {
            *payload = encode_ids(&[0, 1, 2, 3, 7, 8]);
        });
        let err = expect_base_err(base_from_bytes(Bytes::from(bad)));
        assert!(err.to_string().contains("not connected"), "{err}");
    }

    #[test]
    fn base_coverage_and_overlap_rejected() {
        let g = fixture();
        let base = crate::prepare::prepare_base(&g, 0.5, &PrepareConfig::default()).unwrap();
        let bytes = base_to_bytes(&base);
        // Drop a vertex from the isolated list: coverage sum breaks.
        let short = reseal_base(bytes.clone(), "isolated", |payload| {
            *payload = encode_ids(&[]);
        });
        let err = expect_base_err(base_from_bytes(Bytes::from(short)));
        assert!(err.to_string().contains("cover"), "{err}");
        // Rewrite a map onto an id another component owns: the fixture's
        // components are {0,1,2} and {4,5,6}; remapping the second to
        // {2,4,5} keeps the coverage sum and the ordering but double-
        // covers vertex 2 (and orphans 6) — only the bitmap catches it.
        let overlap = reseal_base(bytes, "component.1.map", |payload| {
            *payload = encode_ids(&[2, 4, 5]);
        });
        let err = expect_base_err(base_from_bytes(Bytes::from(overlap)));
        assert!(err.to_string().contains("more than one"), "{err}");
    }

    #[test]
    fn sub_floor_edge_and_bad_floor_rejected() {
        let g = fixture();
        let base = crate::prepare::prepare_base(&g, 0.5, &PrepareConfig::default()).unwrap();
        let mut bytes = base_to_bytes(&base);
        // Claim a higher floor than the payload honors (0.5 → 0.85) and
        // re-seal the header CRC: the 0.8-triangle now violates it.
        bytes[16..24].copy_from_slice(&0.85f64.to_bits().to_le_bytes());
        let hl = ugraph_io::catalog::HEADER_LEN;
        let crc = ugraph_io::catalog::crc32(&bytes[..hl - 4]).to_le_bytes();
        bytes[hl - 4..hl].copy_from_slice(&crc);
        let err = expect_base_err(base_from_bytes(Bytes::from(bytes)));
        assert!(err.to_string().contains("below the catalog's α"), "{err}");
        // A floor outside [0, 1] (or NaN) is rejected before any section
        // is touched.
        for bad_floor in [1.5f64, -0.5, f64::NAN] {
            let mut bytes = base_to_bytes(&base);
            bytes[16..24].copy_from_slice(&bad_floor.to_bits().to_le_bytes());
            let crc = ugraph_io::catalog::crc32(&bytes[..hl - 4]).to_le_bytes();
            bytes[hl - 4..hl].copy_from_slice(&crc);
            let err = expect_base_err(base_from_bytes(Bytes::from(bytes)));
            assert!(err.to_string().contains("floor"), "{err}");
        }
    }

    #[test]
    fn base_edge_fingerprint_rejected() {
        // At floor 0.0 pruning removes nothing, so Σ component edges
        // must equal the header fingerprint exactly.
        let g = fixture();
        let base = crate::prepare::prepare_base(&g, 0.0, &PrepareConfig::default()).unwrap();
        let mut bytes = base_to_bytes(&base);
        bytes[56..64].copy_from_slice(&99u64.to_le_bytes()); // original_edges
        let hl = ugraph_io::catalog::HEADER_LEN;
        let crc = ugraph_io::catalog::crc32(&bytes[..hl - 4]).to_le_bytes();
        bytes[hl - 4..hl].copy_from_slice(&crc);
        let err = expect_base_err(base_from_bytes(Bytes::from(bytes)));
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn base_section_order_and_meta_rejected() {
        let g = fixture();
        let base = crate::prepare::prepare_base(&g, 0.5, &PrepareConfig::default()).unwrap();
        let cat = Catalog::from_bytes(Bytes::from(base_to_bytes(&base))).unwrap();
        // Swap the tail sections: checksums fine, canon broken.
        let mut order: Vec<String> = cat.sections().iter().map(|e| e.name.clone()).collect();
        let n = order.len();
        order.swap(n - 2, n - 1);
        let mut writer = CatalogWriter::new(*cat.header());
        for name in &order {
            writer.add_section(name.clone(), cat.section(name).unwrap().to_vec());
        }
        let err = expect_base_err(base_from_bytes(Bytes::from(writer.finish())));
        assert!(err.to_string().contains("canonical order"), "{err}");
        // A lying meta length is typed, not a panic.
        let bad_meta = reseal_base(base_to_bytes(&base), "base.meta", |payload| {
            payload[0..4].copy_from_slice(&1000u32.to_le_bytes());
        });
        let err = expect_base_err(base_from_bytes(Bytes::from(bad_meta)));
        assert!(err.to_string().contains("base.meta"), "{err}");
    }

    #[test]
    fn missing_section_rejected() {
        let g = fixture();
        let inst = prepare(&g, 0.5, &PrepareConfig::default()).unwrap();
        let cat = Catalog::from_bytes(Bytes::from(to_bytes(&inst))).unwrap();
        let mut writer = CatalogWriter::new(*cat.header());
        for e in cat.sections() {
            if e.name != "report" {
                writer.add_section(e.name.clone(), cat.section(&e.name).unwrap().to_vec());
            }
        }
        expect_err(from_bytes(Bytes::from(writer.finish())));
    }
}
