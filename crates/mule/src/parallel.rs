//! Parallel MULE: fan the root-level subtrees out across threads.
//!
//! An engineering extension beyond the paper. Correctness rests on an
//! independence property of Algorithm 2's root loop: the subtree rooted at
//! `C = {u}` depends only on `u`'s neighborhood —
//!
//! * `I₀(u) = {(w, p(u,w)) : w ∈ Γ(u), w > u, p(u,w) ≥ α}`
//! * `X₀(u) = {(v, p(u,v)) : v ∈ Γ(u), v < u, p(u,v) ≥ α}`
//!
//! because at the root every candidate carries factor 1 and every vertex
//! smaller than `u` has been moved into `X` by the time `u` is processed.
//! Each subtree can therefore be explored by a different worker with no
//! shared mutable state. Work is distributed by an atomic cursor over the
//! vertex ids (natural dynamic load balancing: cheap subtrees drain fast).
//!
//! Workers collect locally and results are merged and sorted at the end,
//! so the output is deterministic and identical to sequential MULE.

use crate::enumerate::{Candidate, MuleConfig};
use crate::kernel::Kernel;
use crate::sinks::{CliqueSink, CollectSink, Control};
use crate::stats::EnumerationStats;
use std::sync::atomic::{AtomicU32, Ordering};
use ugraph_core::{GraphError, UncertainGraph, VertexId};

/// Result of a parallel enumeration: the cliques (sorted lexicographically,
/// probabilities parallel) plus merged statistics.
#[derive(Debug, Clone)]
pub struct ParallelOutput {
    /// All α-maximal cliques, each sorted ascending, the list sorted
    /// lexicographically.
    pub cliques: Vec<Vec<VertexId>>,
    /// `probs[i]` is the clique probability of `cliques[i]`.
    pub probs: Vec<f64>,
    /// Counters merged across workers (`max_depth` is the maximum).
    pub stats: EnumerationStats,
}

/// Enumerate all α-maximal cliques using `threads` worker threads
/// (`threads = 0` means one worker per available CPU).
pub fn par_enumerate_maximal_cliques(
    g: &UncertainGraph,
    alpha: f64,
    threads: usize,
) -> Result<ParallelOutput, GraphError> {
    let config = MuleConfig::default();
    let kernel = Kernel::prepare(g, alpha, &config)?;
    let n = kernel.g.num_vertices();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };

    // Degenerate cases the worker loop cannot express.
    if n == 0 {
        return Ok(ParallelOutput {
            cliques: vec![vec![]],
            probs: vec![1.0],
            stats: EnumerationStats {
                calls: 1,
                emitted: 1,
                ..Default::default()
            },
        });
    }

    let cursor = AtomicU32::new(0);
    let mut worker_outputs: Vec<(CollectSink, EnumerationStats)> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let kernel = &kernel;
            let cursor = &cursor;
            handles.push(scope.spawn(move |_| {
                let mut sink = CollectSink::new();
                let mut worker = Worker {
                    kernel,
                    stats: EnumerationStats::new(),
                };
                loop {
                    let u = cursor.fetch_add(1, Ordering::Relaxed);
                    if u as usize >= n {
                        break;
                    }
                    worker.run_root(u, &mut sink);
                }
                (sink, worker.stats)
            }));
        }
        for h in handles {
            worker_outputs.push(h.join().expect("worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    let mut stats = EnumerationStats::new();
    stats.calls = 1; // the conceptual root node
    let mut pairs: Vec<(Vec<VertexId>, f64)> = Vec::new();
    for (sink, s) in worker_outputs {
        stats.merge(&s);
        pairs.extend(sink.into_pairs());
    }
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let (cliques, probs) = pairs.into_iter().unzip();
    Ok(ParallelOutput {
        cliques,
        probs,
        stats,
    })
}

/// Per-thread search state: shares the read-only kernel, owns its counters.
struct Worker<'k> {
    kernel: &'k Kernel,
    stats: EnumerationStats,
}

impl Worker<'_> {
    /// Explore the root subtree `C = {u}` (see module docs for why the
    /// initial sets take this closed form).
    fn run_root(&mut self, u: VertexId, sink: &mut CollectSink) {
        let mut i0 = Vec::new();
        let mut x0 = Vec::new();
        for (w, p) in self.kernel.g.neighbors_with_probs(u) {
            // Kernel graphs are α-pruned, so p ≥ α always holds; the test
            // is kept for clarity and symmetry with Algorithm 3 line 8.
            if p >= self.kernel.alpha {
                if w > u {
                    i0.push((w, p));
                } else {
                    x0.push((w, p));
                }
            }
        }
        let mut c = vec![u];
        self.recurse(&mut c, 1.0, &i0, x0, sink);
    }

    fn recurse(
        &mut self,
        c: &mut Vec<VertexId>,
        q: f64,
        i_set: &[Candidate],
        x_set: Vec<Candidate>,
        sink: &mut CollectSink,
    ) -> Control {
        self.stats.calls += 1;
        self.stats.max_depth = self.stats.max_depth.max(c.len());
        if i_set.is_empty() && x_set.is_empty() {
            self.stats.emitted += 1;
            return sink.emit(c, q);
        }
        let mut x_set = x_set;
        for pos in 0..i_set.len() {
            let (u, r) = i_set[pos];
            let q2 = q * r;
            let i2 = self.kernel.filter_candidates(
                u,
                q2,
                &i_set[pos + 1..],
                &mut self.stats.i_candidates_scanned,
            );
            let x2 =
                self.kernel
                    .filter_candidates(u, q2, &x_set, &mut self.stats.x_candidates_scanned);
            c.push(u);
            let ctl = self.recurse(c, q2, &i2, x2, sink);
            c.pop();
            if ctl == Control::Stop {
                return Control::Stop;
            }
            x_set.push((u, r));
        }
        Control::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_maximal_cliques;
    use ugraph_core::builder::{complete_graph, from_edges, GraphBuilder};
    use ugraph_core::Prob;

    fn fixture() -> UncertainGraph {
        let mut edges = Vec::new();
        // K5 (0..5) + K4 (4..8) sharing vertex 4 + pendant chain.
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v, 0.9));
            }
        }
        for u in 4..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v, 0.8));
            }
        }
        edges.push((8, 9, 0.7));
        from_edges(10, &edges).unwrap()
    }

    #[test]
    fn matches_sequential_for_various_alpha_and_threads() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.2, 0.05, 1e-4] {
            let expected = enumerate_maximal_cliques(&g, alpha).unwrap();
            for threads in [1, 2, 4] {
                let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
                assert_eq!(out.cliques, expected, "α={alpha}, threads={threads}");
            }
        }
    }

    #[test]
    fn probabilities_align_with_cliques() {
        let g = fixture();
        let out = par_enumerate_maximal_cliques(&g, 0.3, 3).unwrap();
        assert_eq!(out.cliques.len(), out.probs.len());
        for (c, p) in out.cliques.iter().zip(&out.probs) {
            let exact = ugraph_core::clique::clique_probability(&g, c).unwrap();
            assert!((p - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_emitted_matches_output() {
        let g = fixture();
        let out = par_enumerate_maximal_cliques(&g, 0.4, 4).unwrap();
        assert_eq!(out.stats.emitted as usize, out.cliques.len());
        assert!(out.stats.calls > 1);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let g = fixture();
        let expected = enumerate_maximal_cliques(&g, 0.5).unwrap();
        let out = par_enumerate_maximal_cliques(&g, 0.5, 0).unwrap();
        assert_eq!(out.cliques, expected);
    }

    #[test]
    fn empty_graph_emits_empty_clique() {
        let g = GraphBuilder::new(0).build();
        let out = par_enumerate_maximal_cliques(&g, 0.5, 2).unwrap();
        assert_eq!(out.cliques, vec![Vec::<VertexId>::new()]);
        assert_eq!(out.probs, vec![1.0]);
    }

    #[test]
    fn complete_graph_counts_match() {
        let g = complete_graph(9, Prob::new(0.5).unwrap());
        let alpha = 0.5f64.powi(6); // admits k with C(k,2) ≤ 6 → k ≤ 4
        let out = par_enumerate_maximal_cliques(&g, alpha, 4).unwrap();
        assert_eq!(out.cliques.len(), 126); // C(9,4)
        assert!(out.cliques.iter().all(|c| c.len() == 4));
    }
}
