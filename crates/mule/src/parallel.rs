//! Parallel MULE: work-stealing over the root-level subtrees.
//!
//! An engineering extension beyond the paper. Correctness rests on an
//! independence property of Algorithm 2's root loop: the subtree rooted
//! at `C = {u}` depends only on `u`'s neighborhood (see
//! `Kernel::expand_root_into` for the closed-form initial sets), so
//! each root can be explored by a different worker with no shared
//! mutable state.
//!
//! # Input: the preprocessing pipeline
//!
//! Since PR 3 the driver runs over a [`PreparedInstance`]
//! ([`mod@crate::prepare`]): the graph arrives α-pruned and sharded into
//! compact per-component kernels, and the root tasks seeded into the
//! deques are `(component, local root)` pairs — sharding falls out of
//! the decomposition, and a worker never touches memory outside the
//! component it is currently searching. The per-component tiered
//! neighborhood index (dense hub rows + bitset membership) is built
//! once at prepare time and shared read-only, so workers pay no
//! index-construction or synchronization cost.
//!
//! # Scheduling: per-worker deques + stealing
//!
//! Root subtree costs are heavily skewed (a hub vertex can own most of
//! the search tree), so a bare shared cursor stalls: whoever draws the
//! hub last runs alone while the rest idle. Instead:
//!
//! * root tasks from every component are sorted **largest-degree-first**
//!   (ties by original id) and dealt round-robin across per-worker
//!   deques, so the expensive subtrees start early and start spread out;
//! * each worker pops work from the *front* of its own deque;
//! * a worker whose deque runs dry picks victims round-robin and steals
//!   the *back half* of the first non-empty deque (the cheap tail —
//!   classic steal-from-the-back, minimizing contention with the
//!   victim's front pops).
//!
//! No work is ever produced after seeding, so termination is a full
//! sweep finding every deque empty. Each worker owns its own
//! depth-alternating arena pair (`DepthArenas`), so the per-node
//! zero-allocation property of the sequential kernel holds per worker.
//!
//! # Determinism by construction
//!
//! Every clique emitted from root `u` starts with `u` (the clique is
//! grown from `{u}` with larger ids only), and within one root the DFS
//! emits in lexicographic order (children are visited in increasing
//! vertex order and emission happens at leaves). Component id maps are
//! monotone, so this holds in *original* ids too: per-root outputs are
//! pre-sorted with pairwise-disjoint, increasing key ranges, placing
//! each root's block at its original root index and concatenating is a
//! k-way merge with no comparisons, and the result is **byte-identical
//! to sequential MULE** no matter which worker ran which root or in
//! what order — the schedule affects timing only. The merged statistics
//! are equally schedule-independent (each root subtree contributes the
//! same counters wherever it runs), so they equal the sequential run's.

use crate::kernel::{enumerate_subtree, enumerate_subtree_bounded, DepthArenas};
use crate::limits::{Interrupt, LimitSpec, RunLimits};
use crate::prepare::PreparedInstance;
use crate::sinks::{CollectSink, Control, RemapSink};
use crate::stats::EnumerationStats;
use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use ugraph_core::{GraphError, UncertainGraph, VertexId};

/// One root's collected output: `(root, pairs)` with pairs in emission
/// (= lexicographic) order.
type RootOutput = (VertexId, Vec<(Vec<VertexId>, f64)>);

/// Result of a parallel enumeration: the cliques (sorted lexicographically,
/// probabilities parallel) plus merged statistics.
#[derive(Debug, Clone)]
pub struct ParallelOutput {
    /// All α-maximal cliques, each sorted ascending, the list sorted
    /// lexicographically.
    pub cliques: Vec<Vec<VertexId>>,
    /// `probs[i]` is the clique probability of `cliques[i]`.
    pub probs: Vec<f64>,
    /// Counters merged across workers; schedule-independent and equal to
    /// the sequential run's (`max_depth` is the maximum).
    pub stats: EnumerationStats,
}

/// A root task: `(component index, local root id)` in a prepared
/// instance.
type RootTask = (u32, u32);

/// Enumerate all α-maximal cliques using `threads` worker threads
/// (`threads = 0` means one worker per available CPU).
///
/// Runs the preprocessing pipeline ([`mod@crate::prepare`]) with default
/// settings and fans the per-component root subtrees out over the
/// work-stealing scheduler; see [`par_enumerate_prepared`].
pub fn par_enumerate_maximal_cliques(
    g: &UncertainGraph,
    alpha: f64,
    threads: usize,
) -> Result<ParallelOutput, GraphError> {
    let session = crate::Query::new(g)
        .alpha(alpha)
        .prepare()
        .map_err(crate::MuleError::expect_graph)?;
    Ok(par_enumerate_prepared(session.instance(), threads))
}

/// Enumerate a prepared instance on `threads` worker threads
/// (`threads = 0` means one worker per available CPU), honoring the
/// instance's `min_size`. The deques are seeded with per-component root
/// tasks, so component sharding is the unit of distribution; the output
/// is identical to [`PreparedInstance::run`] — and, on default prepare
/// settings, byte-identical to sequential [`crate::Mule`].
pub fn par_enumerate_prepared(inst: &PreparedInstance, threads: usize) -> ParallelOutput {
    let (out, interrupt) = par_enumerate_prepared_limited(inst, threads, &LimitSpec::default());
    debug_assert!(interrupt.is_none(), "no limits were configured");
    out
}

/// [`par_enumerate_prepared`] under live limits. Every worker arms its
/// own [`RunLimits`] from the same spec, sharing one deadline instant
/// and one atomic node counter — so the budget bounds the run's *total*
/// search nodes and all workers observe the same clock and the same
/// [`crate::CancelToken`]. A tripped worker clears its own deque (so no
/// peer steals the work it is abandoning) and retires; peers observe
/// the same condition at their next probe, within one amortization
/// window. Returns the merged (partial, on interruption) output and
/// stats plus the most severe interrupt any worker hit.
pub(crate) fn par_enumerate_prepared_limited(
    inst: &PreparedInstance,
    threads: usize,
    spec: &LimitSpec,
) -> (ParallelOutput, Option<Interrupt>) {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    let n = inst.original_vertices();
    // One clock and one node counter for the whole run.
    let deadline = spec.deadline.map(|d| Instant::now() + d);
    let shared_calls = Arc::new(AtomicU64::new(0));

    // Degenerate case the worker loop cannot express. The empty clique
    // has zero vertices, so it never meets a size threshold.
    if n == 0 {
        if inst.min_size() >= 2 {
            return (
                ParallelOutput {
                    cliques: vec![],
                    probs: vec![],
                    stats: EnumerationStats {
                        calls: 1,
                        ..Default::default()
                    },
                },
                None,
            );
        }
        return (
            ParallelOutput {
                cliques: vec![vec![]],
                probs: vec![1.0],
                stats: EnumerationStats {
                    calls: 1,
                    emitted: 1,
                    ..Default::default()
                },
            },
            None,
        );
    }

    // Seed: every component's roots, largest-degree-first (stable sort,
    // so ties keep ascending original order), dealt round-robin so
    // every deque starts with a share of the expensive subtrees.
    let mut tasks: Vec<RootTask> = Vec::new();
    for (ci, (sub, _)) in inst.components().enumerate() {
        for local in 0..sub.num_vertices() as u32 {
            tasks.push((ci as u32, local));
        }
    }
    tasks.sort_by_key(|&(ci, local)| {
        let (kernel, _) = inst.component_parts(ci);
        std::cmp::Reverse(kernel.g.neighbors(local).len())
    });
    let queues: Vec<Mutex<VecDeque<RootTask>>> = (0..threads)
        .map(|_| Mutex::new(VecDeque::with_capacity(tasks.len() / threads + 1)))
        .collect();
    for (k, &task) in tasks.iter().enumerate() {
        queues[k % threads].lock().unwrap().push_back(task);
    }

    let mut worker_outputs: Vec<(Vec<RootOutput>, EnumerationStats, Option<Interrupt>)> =
        Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for id in 0..threads {
            let queues = &queues;
            let limits = spec.arm_shared(deadline, Arc::clone(&shared_calls));
            handles.push(scope.spawn(move |_| {
                let mut worker = Worker {
                    inst,
                    stats: EnumerationStats::new(),
                    arenas: DepthArenas::new(),
                    clique_buf: Vec::new(),
                    outputs: Vec::new(),
                    limits,
                };
                loop {
                    // Immediate probe between roots: a zero deadline or
                    // a pre-tripped token retires the worker before it
                    // starts (or continues) any subtree.
                    if worker.limits.probe_now(worker.stats.calls) {
                        // Drain the deque so no peer steals work this
                        // run has already abandoned.
                        queues[id].lock().unwrap().clear();
                        break;
                    }
                    match next_task(queues, id) {
                        Some((ci, local)) => worker.run_root(ci, local),
                        None => break,
                    }
                }
                (worker.outputs, worker.stats, worker.limits.tripped())
            }));
        }
        for h in handles {
            worker_outputs.push(h.join().expect("worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    // K-way merge by construction: slot each root's pre-sorted block at
    // its original root index, then concatenate (see module docs).
    // Singleton components never reach a worker; their one-clique blocks
    // are filled in directly, with the stats contribution the direct
    // search would record for them.
    let mut slots: Vec<Vec<(Vec<VertexId>, f64)>> = (0..n).map(|_| Vec::new()).collect();
    let mut stats = EnumerationStats::new();
    stats.calls = 1; // the conceptual root node
    for &v in inst.singletons() {
        slots[v as usize] = vec![(vec![v], 1.0)];
        stats.calls += 1;
        stats.emitted += 1;
        stats.max_depth = stats.max_depth.max(1);
    }
    // The most severe interrupt across workers (external cancellation
    // outranks the deadline, which outranks the budget — matching the
    // single-probe ordering in `limits`).
    let mut interrupt = None;
    for (outputs, s, tripped) in worker_outputs {
        stats.merge(&s);
        interrupt = match (interrupt, tripped) {
            (Some(Interrupt::Cancelled), _) | (_, Some(Interrupt::Cancelled)) => {
                Some(Interrupt::Cancelled)
            }
            (Some(Interrupt::Deadline), _) | (_, Some(Interrupt::Deadline)) => {
                Some(Interrupt::Deadline)
            }
            (a, b) => a.or(b),
        };
        for (u, pairs) in outputs {
            debug_assert!(slots[u as usize].is_empty(), "root {u} ran twice");
            slots[u as usize] = pairs;
        }
    }
    let total: usize = slots.iter().map(Vec::len).sum();
    let mut cliques = Vec::with_capacity(total);
    let mut probs = Vec::with_capacity(total);
    for pairs in slots {
        for (c, p) in pairs {
            cliques.push(c);
            probs.push(p);
        }
    }
    (
        ParallelOutput {
            cliques,
            probs,
            stats,
        },
        interrupt,
    )
}

/// Pop the next task for worker `id`: own deque front first, then steal
/// the back half of the first non-empty victim (round-robin from
/// `id + 1`). `None` means every deque was empty — and since no work is
/// created after seeding, the worker can retire.
fn next_task<T: Copy>(queues: &[Mutex<VecDeque<T>>], id: usize) -> Option<T> {
    if let Some(u) = queues[id].lock().unwrap().pop_front() {
        return Some(u);
    }
    let t = queues.len();
    for k in 1..t {
        let victim = (id + k) % t;
        let mut stolen = {
            let mut vq = queues[victim].lock().unwrap();
            let keep = vq.len() / 2;
            vq.split_off(keep)
        };
        // Locks are never held in pairs (victim released above, own
        // acquired below), so stealing cannot deadlock.
        if let Some(u) = stolen.pop_front() {
            if !stolen.is_empty() {
                queues[id].lock().unwrap().append(&mut stolen);
            }
            return Some(u);
        }
    }
    None
}

/// Per-thread search state: shares the read-only prepared instance,
/// owns its arena, counters and per-root outputs.
struct Worker<'k> {
    inst: &'k PreparedInstance,
    stats: EnumerationStats,
    arenas: DepthArenas,
    clique_buf: Vec<VertexId>,
    /// One [`RootOutput`] for every root this worker explored.
    outputs: Vec<RootOutput>,
    /// This worker's armed limit state (deadline instant / node counter
    /// shared across the run's workers).
    limits: RunLimits,
}

impl Worker<'_> {
    /// Explore the root subtree `C = {local}` of component `ci` with the
    /// shared kernel recursion, collecting its cliques — translated to
    /// original ids by the sink layer — separately for the
    /// deterministic merge.
    fn run_root(&mut self, ci: u32, local: VertexId) {
        let (kernel, map) = self.inst.component_parts(ci);
        let t = self.inst.min_size();
        let mut sink = CollectSink::new();
        let mut arenas = std::mem::take(&mut self.arenas);
        let mut c = std::mem::take(&mut self.clique_buf);
        arenas.clear();
        c.clear();
        let (i0, x0) = kernel.expand_root_into(
            local,
            &mut arenas.even,
            &mut self.stats.i_candidates_scanned,
        );
        if t >= 2 && 1 + i0.len() < t {
            self.stats.size_pruned += 1;
        } else {
            c.push(local);
            let mut remap = RemapSink::new(&mut sink, map);
            let ctl = if t >= 2 {
                enumerate_subtree_bounded(
                    kernel,
                    &mut self.stats,
                    &mut c,
                    1.0,
                    i0,
                    x0,
                    &mut arenas.even,
                    &mut arenas.odd,
                    t,
                    &mut self.limits,
                    &mut remap,
                )
            } else {
                enumerate_subtree(
                    kernel,
                    &mut self.stats,
                    &mut c,
                    1.0,
                    i0,
                    x0,
                    &mut arenas.even,
                    &mut arenas.odd,
                    &mut self.limits,
                    &mut remap,
                )
            };
            // CollectSink never stops on its own; the only Stop the
            // recursion can return here is a tripped limit.
            debug_assert!(
                ctl == Control::Continue || self.limits.tripped().is_some(),
                "CollectSink never stops"
            );
            c.pop();
        }
        self.arenas = arenas;
        self.clique_buf = c;
        let root_original = map[local as usize];
        self.outputs.push((root_original, sink.into_pairs()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_maximal_cliques;
    use crate::prepare::{prepare, PrepareConfig};
    use ugraph_core::builder::{complete_graph, from_edges, GraphBuilder};
    use ugraph_core::Prob;

    fn fixture() -> UncertainGraph {
        let mut edges = Vec::new();
        // K5 (0..5) + K4 (4..8) sharing vertex 4 + pendant chain.
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v, 0.9));
            }
        }
        for u in 4..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v, 0.8));
            }
        }
        edges.push((8, 9, 0.7));
        from_edges(10, &edges).unwrap()
    }

    #[test]
    fn matches_sequential_for_various_alpha_and_threads() {
        let g = fixture();
        for alpha in [0.9, 0.5, 0.2, 0.05, 1e-4] {
            let expected = enumerate_maximal_cliques(&g, alpha).unwrap();
            for threads in [1, 2, 4] {
                let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
                assert_eq!(out.cliques, expected, "α={alpha}, threads={threads}");
            }
        }
    }

    #[test]
    fn probabilities_align_with_cliques() {
        let g = fixture();
        let out = par_enumerate_maximal_cliques(&g, 0.3, 3).unwrap();
        assert_eq!(out.cliques.len(), out.probs.len());
        for (c, p) in out.cliques.iter().zip(&out.probs) {
            let exact = ugraph_core::clique::clique_probability(&g, c).unwrap();
            assert!((p - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_equal_sequential_run() {
        // The merge is schedule-independent, so the merged counters must
        // equal sequential MULE's exactly — not just emitted.
        let g = fixture();
        for alpha in [0.9, 0.4, 0.05] {
            let mut m = crate::Mule::new(&g, alpha).unwrap();
            let mut sink = crate::sinks::CountSink::new();
            m.run(&mut sink);
            for threads in [1, 3, 8] {
                let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
                assert_eq!(&out.stats, m.stats(), "α={alpha}, threads={threads}");
            }
        }
    }

    #[test]
    fn stats_emitted_matches_output() {
        let g = fixture();
        let out = par_enumerate_maximal_cliques(&g, 0.4, 4).unwrap();
        assert_eq!(out.stats.emitted as usize, out.cliques.len());
        assert!(out.stats.calls > 1);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let g = fixture();
        let expected = enumerate_maximal_cliques(&g, 0.5).unwrap();
        let out = par_enumerate_maximal_cliques(&g, 0.5, 0).unwrap();
        assert_eq!(out.cliques, expected);
    }

    #[test]
    fn more_threads_than_roots() {
        let g = from_edges(3, &[(0, 1, 0.9), (1, 2, 0.9)]).unwrap();
        let expected = enumerate_maximal_cliques(&g, 0.5).unwrap();
        let out = par_enumerate_maximal_cliques(&g, 0.5, 16).unwrap();
        assert_eq!(out.cliques, expected);
    }

    #[test]
    fn empty_graph_emits_empty_clique() {
        let g = GraphBuilder::new(0).build();
        let out = par_enumerate_maximal_cliques(&g, 0.5, 2).unwrap();
        assert_eq!(out.cliques, vec![Vec::<VertexId>::new()]);
        assert_eq!(out.probs, vec![1.0]);
    }

    #[test]
    fn complete_graph_counts_match() {
        let g = complete_graph(9, Prob::new(0.5).unwrap());
        let alpha = 0.5f64.powi(6); // admits k with C(k,2) ≤ 6 → k ≤ 4
        let out = par_enumerate_maximal_cliques(&g, alpha, 4).unwrap();
        assert_eq!(out.cliques.len(), 126); // C(9,4)
        assert!(out.cliques.iter().all(|c| c.len() == 4));
    }

    #[test]
    fn skewed_hub_graph_is_deterministic_across_thread_counts() {
        // One hub adjacent to everything (the expensive first subtree the
        // largest-degree-first seeding is for) plus a sparse periphery.
        let mut b = GraphBuilder::new(40);
        for v in 1..40u32 {
            b.add_edge(0, v, 0.95).unwrap();
        }
        for v in 1..39u32 {
            b.add_edge(v, v + 1, 0.9).unwrap();
        }
        let g = b.build();
        let expected = enumerate_maximal_cliques(&g, 0.5).unwrap();
        let baseline = par_enumerate_maximal_cliques(&g, 0.5, 1).unwrap();
        assert_eq!(baseline.cliques, expected);
        for threads in [2, 3, 5, 8, 13] {
            let out = par_enumerate_maximal_cliques(&g, 0.5, threads).unwrap();
            assert_eq!(out.cliques, baseline.cliques, "threads={threads}");
            let bits: Vec<u64> = out.probs.iter().map(|p| p.to_bits()).collect();
            let base: Vec<u64> = baseline.probs.iter().map(|p| p.to_bits()).collect();
            assert_eq!(bits, base, "threads={threads}");
        }
    }

    #[test]
    fn min_size_parallel_matches_sequential_large() {
        let g = fixture();
        for alpha in [0.5, 0.1] {
            for t in 3..=5usize {
                let expected = crate::enumerate_large_maximal_cliques(&g, alpha, t).unwrap();
                let inst = prepare(&g, alpha, &PrepareConfig::with_min_size(t)).unwrap();
                for threads in [1, 3] {
                    let out = par_enumerate_prepared(&inst, threads);
                    assert_eq!(out.cliques, expected, "α={alpha}, t={t}, threads={threads}");
                }
            }
        }
    }

    #[test]
    fn steal_half_takes_the_back() {
        let queues = vec![
            Mutex::new(VecDeque::new()),
            Mutex::new(VecDeque::from(vec![10, 11, 12, 13])),
        ];
        // Worker 0 is empty: it must steal the back half {12, 13} of
        // worker 1, return the first stolen root and keep the rest.
        assert_eq!(next_task(&queues, 0), Some(12));
        assert_eq!(
            queues[0]
                .lock()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![13]
        );
        assert_eq!(
            queues[1]
                .lock()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![10, 11]
        );
        // Own work is drained before stealing again.
        assert_eq!(next_task(&queues, 0), Some(13));
        // Then the remaining victim half, then exhaustion.
        assert_eq!(next_task(&queues, 0), Some(11));
        assert_eq!(next_task(&queues, 0), Some(10));
        assert_eq!(next_task(&queues, 0), None);
        assert_eq!(next_task(&queues, 1), None);
    }
}
