//! Timing harness: runs an enumeration algorithm on a graph, with a
//! cooperative timeout, and reports runtime plus output statistics.
//!
//! The paper reports wall-clock seconds per `(graph, α)` point; we do the
//! same, with one pragmatic addition: a deadline. DFS–NOIP at small α can
//! exceed any reasonable budget (the paper itself reports "more than 11
//! hours" on wiki-vote), so runs are aborted cooperatively once the
//! deadline passes and reported as `timed_out` — figures then print
//! `>Xs`, exactly like the paper's prose.
//!
//! The timeout is checked on every emission (cheap: one `Instant::now()`
//! per 1024 cliques). All the workloads in the figure sweeps emit
//! frequently relative to their node counts, so the deadline is honored
//! within a small factor; the realized overshoot is visible in the
//! reported time.

use mule::sinks::{CliqueSink, Control, CountSink};
use mule::{DfsNoip, EnumerationStats, LargeMule, Mule, MuleConfig};
use std::time::{Duration, Instant};
use ugraph_core::{UncertainGraph, VertexId};

/// Outcome of one timed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Wall-clock seconds (includes preprocessing: α-pruning, index build,
    /// and for LARGE–MULE the shared-neighborhood filter — the paper times
    /// the whole query the same way).
    pub seconds: f64,
    /// Maximal cliques emitted before completion or deadline.
    pub cliques: u64,
    /// Total vertex ids across emitted cliques (the Observation 5 output
    /// size).
    pub output_vertices: u64,
    /// Largest clique seen.
    pub max_clique: usize,
    /// The run's full counters (search-tree nodes, scanned candidates,
    /// and the per-strategy probe counters of the tiered index), so
    /// bench artifacts can track work performed, not only wall-clock.
    pub stats: EnumerationStats,
    /// True if the deadline fired before the enumeration finished.
    pub timed_out: bool,
}

impl RunResult {
    /// Search-tree nodes visited (`stats.calls`).
    pub fn calls(&self) -> u64 {
        self.stats.calls
    }

    /// Render the runtime like the paper's tables (`>12s` when timed out).
    pub fn display_time(&self) -> String {
        if self.timed_out {
            format!(">{}", crate::report::fmt_secs(self.seconds))
        } else {
            crate::report::fmt_secs(self.seconds)
        }
    }
}

/// Counting sink wrapper that aborts cooperatively at a deadline.
struct DeadlineSink {
    inner: CountSink,
    deadline: Instant,
    emissions_between_checks: u32,
    until_check: u32,
    expired: bool,
}

impl DeadlineSink {
    fn new(budget: Duration) -> Self {
        DeadlineSink {
            inner: CountSink::new(),
            deadline: Instant::now() + budget,
            emissions_between_checks: 1024,
            until_check: 1024,
            expired: false,
        }
    }
}

impl CliqueSink for DeadlineSink {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        self.inner.emit(clique, prob);
        self.until_check -= 1;
        if self.until_check == 0 {
            self.until_check = self.emissions_between_checks;
            if Instant::now() >= self.deadline {
                self.expired = true;
                return Control::Stop;
            }
        }
        Control::Continue
    }
}

/// Which algorithm a timed run should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// MULE (Algorithms 1–4), the direct single-kernel path.
    Mule,
    /// MULE with the paper's literal Θ(n²) root (ablation of the
    /// closed-form root expansion; explains the paper's DBLP runtimes).
    MuleNaiveRoot,
    /// The DFS–NOIP baseline (Algorithm 7).
    DfsNoip,
    /// LARGE–MULE with the given size threshold (direct path).
    LargeMule(usize),
    /// The preprocessing pipeline (`mule::prepare`) with the given
    /// `min_size` (0 = all maximal cliques): prune → core filter →
    /// shared-neighborhood peel → per-component enumeration. The
    /// measured time includes all pipeline stages, like the paper's
    /// whole-query timing.
    Pipeline(usize),
}

impl Algo {
    /// Short label for report rows.
    pub fn label(&self) -> String {
        match self {
            Algo::Mule => "MULE".into(),
            Algo::MuleNaiveRoot => "MULE(naive-root)".into(),
            Algo::DfsNoip => "DFS-NOIP".into(),
            Algo::LargeMule(t) => format!("LARGE-MULE(t={t})"),
            Algo::Pipeline(0 | 1) => "MULE(pipeline)".into(),
            Algo::Pipeline(t) => format!("LARGE-pipeline(t={t})"),
        }
    }
}

/// Time one `(algorithm, graph, α)` point, counting (not storing) the
/// output, honoring `budget` as a cooperative deadline. Runs with the
/// default [`MuleConfig`]; see [`timed_run_with`] to override the
/// index configuration.
pub fn timed_run(algo: Algo, g: &UncertainGraph, alpha: f64, budget: Duration) -> RunResult {
    timed_run_with(algo, g, alpha, budget, &MuleConfig::default())
}

/// [`timed_run`] with an explicit kernel configuration (index mode and
/// tier budgets); `mule_cfg` applies to every algorithm except the
/// index-free DFS–NOIP baseline.
pub fn timed_run_with(
    algo: Algo,
    g: &UncertainGraph,
    alpha: f64,
    budget: Duration,
    mule_cfg: &MuleConfig,
) -> RunResult {
    let mut sink = DeadlineSink::new(budget);
    let start = Instant::now();
    let stats = match algo {
        Algo::Mule => {
            let mut m = Mule::with_config(g, alpha, mule_cfg.clone()).expect("valid alpha");
            m.run(&mut sink);
            *m.stats()
        }
        Algo::MuleNaiveRoot => {
            let cfg = MuleConfig {
                naive_root: true,
                ..mule_cfg.clone()
            };
            let mut m = Mule::with_config(g, alpha, cfg).expect("valid alpha");
            m.run(&mut sink);
            *m.stats()
        }
        Algo::DfsNoip => {
            let mut d = DfsNoip::new(g, alpha).expect("valid alpha");
            d.run(&mut sink);
            *d.stats()
        }
        Algo::LargeMule(t) => {
            let mut l = LargeMule::with_config(g, alpha, t, mule_cfg.clone()).expect("valid alpha");
            l.run(&mut sink);
            *l.stats()
        }
        Algo::Pipeline(t) => {
            // The pipeline path goes through the session front door
            // (`mule::Query`), same as the CLI: one prepare, then a
            // streamed run — the timed region covers both, matching the
            // paper's whole-query timing.
            let mut session = mule::Query::new(g)
                .alpha(alpha)
                .min_size(t)
                .kernel_config(mule_cfg.clone())
                .prepare()
                .expect("valid alpha");
            session
                .stream(&mut sink)
                .expect("unlimited run cannot be interrupted");
            *session.stats()
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    RunResult {
        seconds,
        cliques: sink.inner.count,
        output_vertices: sink.inner.total_vertices,
        max_clique: sink.inner.max_size,
        stats,
        timed_out: sink.expired,
    }
}

/// Time one point `repeats` times and summarize the samples
/// (min/median/p95 …).
///
/// Censoring contract: if the *first* run hits the deadline, the point
/// is not repeated and the single censored sample is returned with
/// `RunResult::timed_out` set (callers mark the whole row `>…`). If a
/// *later* repeat hits the deadline (a borderline point straddling the
/// budget), repetition stops and the censored sample is **discarded** —
/// the summary then covers only completed runs (its `samples` count
/// shows how many), and the returned first-run result keeps its
/// completed counts unmarked.
pub fn repeated_run(
    algo: Algo,
    g: &UncertainGraph,
    alpha: f64,
    budget: Duration,
    repeats: usize,
) -> (RunResult, crate::report::Summary) {
    repeated_run_with(algo, g, alpha, budget, repeats, &MuleConfig::default())
}

/// [`repeated_run`] with an explicit kernel configuration, forwarded to
/// [`timed_run_with`] for every sample.
pub fn repeated_run_with(
    algo: Algo,
    g: &UncertainGraph,
    alpha: f64,
    budget: Duration,
    repeats: usize,
    mule_cfg: &MuleConfig,
) -> (RunResult, crate::report::Summary) {
    let first = timed_run_with(algo, g, alpha, budget, mule_cfg);
    let mut secs = vec![first.seconds];
    if !first.timed_out {
        for _ in 1..repeats.max(1) {
            let r = timed_run_with(algo, g, alpha, budget, mule_cfg);
            if r.timed_out {
                break;
            }
            secs.push(r.seconds);
        }
    }
    (first, crate::report::Summary::from_samples(&secs))
}

/// The α grid used by Figures 2–3 (log-spaced, matching the paper's
/// x-axes from 10⁻⁴ to 0.9).
pub fn alpha_grid() -> Vec<f64> {
    vec![0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5, 0.9]
}

/// The α grid of Figure 4 (runtime vs output size on the BA graphs).
pub fn fig4_alphas() -> Vec<f64> {
    vec![0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001]
}

/// Resolve the dataset cache directory (`UGRAPH_CACHE` env override,
/// default `target/dataset-cache`).
pub fn cache_dir() -> std::path::PathBuf {
    std::env::var_os("UGRAPH_CACHE")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("target/dataset-cache"))
}

/// Build (or load from cache) a Table 1 dataset stand-in.
pub fn dataset(name: &str, seed: u64, scale: f64) -> UncertainGraph {
    let spec =
        ugraph_gen::datasets::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name:?}"));
    let label = format!("{name}-s{seed}-x{scale}");
    ugraph_io::cache::load_or_build(&cache_dir(), &label, || spec.build_scaled(seed, scale))
}

/// Resolve the results directory (`UGRAPH_RESULTS` env override, default
/// `results`).
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("UGRAPH_RESULTS")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_core::builder::{complete_graph, from_edges};
    use ugraph_core::Prob;

    #[test]
    fn mule_run_counts_cliques() {
        let g = from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.6)]).unwrap();
        let r = timed_run(Algo::Mule, &g, 0.5, Duration::from_secs(10));
        assert_eq!(r.cliques, 2);
        assert_eq!(r.output_vertices, 5);
        assert_eq!(r.max_clique, 3);
        assert!(!r.timed_out);
        assert!(r.seconds >= 0.0);
        assert!(r.calls() > 0);
    }

    #[test]
    fn algorithms_agree_on_counts() {
        let g = complete_graph(7, Prob::new(0.5).unwrap());
        let alpha = 0.5f64.powi(3);
        let a = timed_run(Algo::Mule, &g, alpha, Duration::from_secs(10));
        let b = timed_run(Algo::DfsNoip, &g, alpha, Duration::from_secs(10));
        let c = timed_run(Algo::LargeMule(3), &g, alpha, Duration::from_secs(10));
        let d = timed_run(Algo::Pipeline(0), &g, alpha, Duration::from_secs(10));
        let e = timed_run(Algo::Pipeline(3), &g, alpha, Duration::from_secs(10));
        assert_eq!(a.cliques, b.cliques);
        assert_eq!(a.cliques, c.cliques); // all maximal cliques have size 3 here
        assert_eq!(a.cliques, d.cliques);
        assert_eq!(a.cliques, e.cliques);
    }

    #[test]
    fn repeated_run_summarizes() {
        let g = from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.6)]).unwrap();
        let (r, s) = repeated_run(Algo::Pipeline(0), &g, 0.5, Duration::from_secs(10), 4);
        assert!(!r.timed_out);
        assert_eq!(r.cliques, 2);
        assert_eq!(s.samples, 4);
        assert!(s.min <= s.median && s.median <= s.p95);
    }

    #[test]
    fn display_time_marks_timeouts() {
        let done = RunResult {
            seconds: 1.5,
            cliques: 1,
            output_vertices: 1,
            max_clique: 1,
            stats: EnumerationStats::new(),
            timed_out: false,
        };
        assert!(!done.display_time().starts_with('>'));
        let cut = RunResult {
            timed_out: true,
            ..done
        };
        assert!(cut.display_time().starts_with('>'));
    }

    #[test]
    fn grids_match_paper_axes() {
        let g = alpha_grid();
        assert_eq!(g.first(), Some(&0.0001));
        assert_eq!(g.last(), Some(&0.9));
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(fig4_alphas().len(), 6);
    }

    #[test]
    fn algo_labels() {
        assert_eq!(Algo::Mule.label(), "MULE");
        assert_eq!(Algo::DfsNoip.label(), "DFS-NOIP");
        assert_eq!(Algo::LargeMule(4).label(), "LARGE-MULE(t=4)");
        assert_eq!(Algo::Pipeline(0).label(), "MULE(pipeline)");
        assert_eq!(Algo::Pipeline(5).label(), "LARGE-pipeline(t=5)");
    }

    #[test]
    fn dataset_builder_caches_deterministically() {
        std::env::set_var(
            "UGRAPH_CACHE",
            std::env::temp_dir().join(format!("ugraph-harness-test-{}", std::process::id())),
        );
        let a = dataset("BA5000", 1, 0.01);
        let b = dataset("BA5000", 1, 0.01);
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(cache_dir());
        std::env::remove_var("UGRAPH_CACHE");
    }
}
