//! # ugraph-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section 5). Each `src/bin/*.rs` binary reproduces one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 (input graphs) |
//! | `fig1` | Figure 1 (MULE vs DFS–NOIP, four α values) |
//! | `fig2` | Figure 2 (runtime vs α) |
//! | `fig3` | Figure 3 (#α-maximal cliques vs α) |
//! | `fig4` | Figure 4 (runtime vs output size) |
//! | `fig5` | Figure 5 (LARGE–MULE runtime vs t) |
//! | `fig6` | Figure 6 (#cliques vs t) |
//! | `headline` | the prose speedup numbers of Section 5 |
//! | `theorem1` | Theorem 1 / Observation 5 empirical checks |
//!
//! Shared machinery: [`harness`] (timed runs with deadlines, dataset
//! cache), [`report`] (aligned stdout + TSV under `results/`), [`args`]
//! (CLI parsing). Criterion micro-benchmarks live in `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod harness;
pub mod plot;
pub mod report;

pub use args::Args;
pub use harness::{repeated_run, repeated_run_with, timed_run, timed_run_with, Algo, RunResult};
pub use plot::{AsciiPlot, Scale};
pub use report::{Json, Report, Summary};
