//! TSV experiment reports: every harness binary prints its series to
//! stdout *and* writes a TSV file under `results/`, so figures can be
//! re-plotted and EXPERIMENTS.md can cite stable artifacts.
//!
//! Two further building blocks live here because every harness needs
//! them and no crates.io dependency is available offline:
//!
//! * [`Summary`] — order statistics (min/median/p95/max/mean) over
//!   repeated timing samples, so reports record distributions instead
//!   of a single wall-clock mean;
//! * [`Json`] — a minimal JSON emitter backing the `--json` modes of
//!   the harness binaries (the perf-trajectory artifacts like
//!   `BENCH_pr2.json` are diffed across PRs, so the format is plain
//!   and stable).

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A tabular report: header row plus data rows, rendered aligned to
/// stdout and tab-separated to disk.
pub struct Report {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with the given title and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Report {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row; must match the column count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatches header"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table (what the binaries print).
    pub fn to_aligned_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as TSV (what lands under `results/`).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Print aligned to stdout and persist TSV as `dir/name.tsv`; returns
    /// the written path (best effort: I/O errors are reported to stderr
    /// but do not abort the experiment).
    pub fn emit(&self, dir: &Path, name: &str) -> Option<PathBuf> {
        print!("{}", self.to_aligned_string());
        println!();
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return None;
        }
        let path = dir.join(format!("{name}.tsv"));
        match fs::File::create(&path).and_then(|mut f| f.write_all(self.to_tsv().as_bytes())) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {path:?}: {e}");
                None
            }
        }
    }
}

/// Order statistics over repeated measurement samples (seconds).
///
/// The criterion shim and the harness binaries report these instead of a
/// bare mean: enumeration runtimes are right-skewed (allocator warm-up,
/// first-touch page faults), so min/median/p95 is what figure
/// regeneration wants to plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Fastest sample.
    pub min: f64,
    /// 50th percentile (linear interpolation between ranks).
    pub median: f64,
    /// 95th percentile (linear interpolation between ranks).
    pub p95: f64,
    /// Slowest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples summarized.
    pub samples: usize,
}

impl Summary {
    /// Summarize a non-empty set of samples.
    ///
    /// # Panics
    /// Panics on an empty slice — a summary of nothing is a harness bug.
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            min: sorted[0],
            median: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: *sorted.last().unwrap(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            samples: sorted.len(),
        }
    }

    /// Render as `min/median/p95` with [`fmt_secs`] units (the report-row
    /// cell format).
    pub fn display(&self) -> String {
        format!(
            "{}/{}/{}",
            fmt_secs(self.min),
            fmt_secs(self.median),
            fmt_secs(self.p95)
        )
    }

    /// [`Self::display`], prefixed `>` when the point was
    /// deadline-censored — the one cell idiom shared by every figure
    /// binary (see `harness::repeated_run` for the censoring contract).
    pub fn display_censored(&self, timed_out: bool) -> String {
        if timed_out {
            format!(">{}", self.display())
        } else {
            self.display()
        }
    }
}

/// Linear-interpolation percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Minimal JSON emitter: objects, arrays, strings, numbers, booleans.
///
/// Commas and nesting are managed by the builder; keys and values must
/// alternate correctly inside objects (checked only by the shape of the
/// call sequence, not at runtime). Non-finite floats are emitted as
/// `null`, which is what consumers of the bench artifacts expect for a
/// failed measurement.
#[derive(Debug, Default)]
pub struct Json {
    out: String,
    /// One entry per open container: `true` once the first element was
    /// written (so the next element is comma-prefixed).
    stack: Vec<bool>,
}

impl Json {
    /// Fresh, empty emitter.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems && !self.out.ends_with(':') {
                self.out.push(',');
            }
            *has_elems = true;
        }
    }

    /// Open an object (`{`).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Open an array (`[`).
    pub fn begin_arr(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Write an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        self.write_escaped(k);
        self.out.push(':');
        self
    }

    /// String value.
    pub fn str_val(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        self.write_escaped(s);
        self
    }

    /// Float value (`null` when non-finite).
    pub fn num(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Integer value.
    pub fn int(&mut self, v: i64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Convenience: `key` + [`Summary`] rendered as an object of seconds.
    pub fn summary(&mut self, k: &str, s: &Summary) -> &mut Self {
        self.key(k).begin_obj();
        self.key("min_s").num(s.min);
        self.key("median_s").num(s.median);
        self.key("p95_s").num(s.p95);
        self.key("max_s").num(s.max);
        self.key("mean_s").num(s.mean);
        self.key("samples").int(s.samples as i64);
        self.end_obj()
    }

    /// Finish and return the JSON text.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Format seconds the way the paper's plots read: sub-millisecond runs in
/// microseconds, otherwise three significant decimals.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_tsv_agree_on_content() {
        let mut r = Report::new("t", &["a", "bb"]);
        r.row(&["1".into(), "2".into()]);
        r.row(&["333".into(), "4".into()]);
        let aligned = r.to_aligned_string();
        assert!(aligned.contains("== t =="));
        assert!(aligned.contains("333"));
        let tsv = r.to_tsv();
        assert!(tsv.contains("a\tbb"));
        assert!(tsv.contains("333\t4"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["1".into()]);
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join(format!("ugraph-report-{}", std::process::id()));
        let mut r = Report::new("t", &["x"]);
        r.row(&["7".into()]);
        let path = r.emit(&dir, "probe").unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("7"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).ends_with("us"));
        assert!(fmt_secs(0.5).ends_with("ms"));
        assert_eq!(fmt_secs(12.3456), "12.346s");
    }

    #[test]
    fn summary_order_statistics() {
        let s = Summary::from_samples(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.samples, 5);
        // p95 of 5 sorted samples interpolates between ranks 3 and 4.
        assert!((s.p95 - 4.8).abs() < 1e-12, "p95 = {}", s.p95);
        assert!(s.display().contains('/'));
    }

    #[test]
    fn summary_single_sample_is_degenerate() {
        let s = Summary::from_samples(&[2.5]);
        assert_eq!(s.min, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.p95, 2.5);
        assert_eq!(s.max, 2.5);
    }

    #[test]
    #[should_panic]
    fn summary_rejects_empty() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn json_emits_nested_structure() {
        let mut j = Json::new();
        j.begin_obj();
        j.key("name").str_val("a\"b");
        j.key("n").int(3);
        j.key("x").num(0.5);
        j.key("ok").bool_val(true);
        j.key("bad").num(f64::NAN);
        j.key("rows").begin_arr();
        j.begin_obj();
        j.key("v").int(1);
        j.end_obj();
        j.begin_obj();
        j.key("v").int(2);
        j.end_obj();
        j.num(7.0);
        j.end_arr();
        j.end_obj();
        assert_eq!(
            j.finish(),
            r#"{"name":"a\"b","n":3,"x":0.5,"ok":true,"bad":null,"rows":[{"v":1},{"v":2},7]}"#
        );
    }

    #[test]
    fn json_summary_helper_round_trips_fields() {
        let s = Summary::from_samples(&[1.0, 2.0]);
        let mut j = Json::new();
        j.begin_obj();
        j.summary("t", &s);
        j.end_obj();
        let text = j.finish();
        assert!(text.contains(r#""t":{"min_s":1"#), "{text}");
        assert!(text.contains(r#""samples":2"#), "{text}");
    }

    #[test]
    #[should_panic]
    fn json_unclosed_container_panics() {
        let mut j = Json::new();
        j.begin_obj();
        j.finish();
    }
}
