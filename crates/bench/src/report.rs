//! TSV experiment reports: every harness binary prints its series to
//! stdout *and* writes a TSV file under `results/`, so figures can be
//! re-plotted and EXPERIMENTS.md can cite stable artifacts.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A tabular report: header row plus data rows, rendered aligned to
/// stdout and tab-separated to disk.
pub struct Report {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with the given title and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Report {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row; must match the column count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatches header"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table (what the binaries print).
    pub fn to_aligned_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as TSV (what lands under `results/`).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Print aligned to stdout and persist TSV as `dir/name.tsv`; returns
    /// the written path (best effort: I/O errors are reported to stderr
    /// but do not abort the experiment).
    pub fn emit(&self, dir: &Path, name: &str) -> Option<PathBuf> {
        print!("{}", self.to_aligned_string());
        println!();
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return None;
        }
        let path = dir.join(format!("{name}.tsv"));
        match fs::File::create(&path).and_then(|mut f| f.write_all(self.to_tsv().as_bytes())) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {path:?}: {e}");
                None
            }
        }
    }
}

/// Format seconds the way the paper's plots read: sub-millisecond runs in
/// microseconds, otherwise three significant decimals.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_tsv_agree_on_content() {
        let mut r = Report::new("t", &["a", "bb"]);
        r.row(&["1".into(), "2".into()]);
        r.row(&["333".into(), "4".into()]);
        let aligned = r.to_aligned_string();
        assert!(aligned.contains("== t =="));
        assert!(aligned.contains("333"));
        let tsv = r.to_tsv();
        assert!(tsv.contains("a\tbb"));
        assert!(tsv.contains("333\t4"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["1".into()]);
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join(format!("ugraph-report-{}", std::process::id()));
        let mut r = Report::new("t", &["x"]);
        r.row(&["7".into()]);
        let path = r.emit(&dir, "probe").unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("7"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).ends_with("us"));
        assert!(fmt_secs(0.5).ends_with("ms"));
        assert_eq!(fmt_secs(12.3456), "12.346s");
    }
}
