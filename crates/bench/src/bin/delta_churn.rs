//! Incremental maintenance vs full rebuild under churn (PR 10).
//!
//! The `mule::delta` subsystem claims that folding a mutation batch
//! into a resident [`mule::Prepared`] session with `apply` beats
//! re-running the whole pipeline on the mutated graph — *when the
//! churn is localized*. This harness measures exactly that claim and
//! writes `BENCH_pr10.json`:
//!
//! * **Workload** — the PR-8 community graph (a disjoint union of BA
//!   communities; see `serve_load`): the component-bearing shape where
//!   a localized batch touches one community and `apply` Arc-shares
//!   every other component untouched. All churn lands in one stable
//!   (high-probability) community, so every op is visible at the
//!   default α and representable by construction.
//! * **Series**, per batch size (churn rate) over the same session:
//!   - `apply_ms` — `Prepared::apply(&delta)` on a clone of the
//!     resident session (clone via catalog bytes, outside the timed
//!     region);
//!   - `rebuild_ms` — the same-session baseline: a fresh
//!     `Query::prepare` of the *mutated* graph (graph merge outside
//!     the timed region), per the drift discipline (both series are
//!     measured in this process, this build — compare within this
//!     artifact only);
//!   - `append_ms` — the durability path: `mule::catalog::append_delta`
//!     on a copy of the saved catalog (full re-serialize + atomic
//!     write + fsync), the cost an online `update` op pays before the
//!     in-memory fold.
//! * **Verification** — once per batch size, byte-identity:
//!   `apply` ≡ fresh prepare of the mutated graph
//!   (`to_catalog_bytes` equality), the same oracle
//!   `tests/delta_equivalence.rs` pins.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin delta_churn -- \
//!     [--seed 42] [--scale 0.25] [--alpha 0.3] [--repeats 9] \
//!     [--out BENCH_pr10.json]
//! ```

use std::time::Instant;
use ugraph_bench::{Args, Json};
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};
use ugraph_gen::ba::barabasi_albert;
use ugraph_gen::rng::{derive_seed, rng_from_seed};
use ugraph_gen::EdgeProbModel;

const USAGE: &str = "delta_churn — incremental apply vs full rebuild (PR 10)
options:
  --seed N       dataset seed (default 42)
  --scale X      BA-community count scale (default 0.25 = 78 communities)
  --alpha A      session threshold (default 0.3)
  --repeats N    samples per timing (default 9)
  --out PATH     JSON artifact path (default BENCH_pr10.json)";

/// The PR-8 community union (duplicated from `serve_load` — bins are
/// standalone): every eighth community volatile, the rest in a stable
/// high band.
fn community_graph(seed: u64, communities: usize, community_n: usize) -> UncertainGraph {
    let m_attach = 3usize.min(community_n - 1);
    let mut b = GraphBuilder::with_capacity(
        communities * community_n,
        communities * ugraph_gen::ba::ba_edge_count(community_n, m_attach),
    );
    for c in 0..communities {
        let probs = if c % 8 == 0 {
            EdgeProbModel::Uniform { lo: 0.05, hi: 1.0 }
        } else {
            EdgeProbModel::Uniform { lo: 0.75, hi: 1.0 }
        };
        let mut rng = rng_from_seed(derive_seed(seed, &format!("community{c}")));
        let community = barabasi_albert(community_n, m_attach, probs, &mut rng);
        let off = (c * community_n) as VertexId;
        for (u, v, p) in community.edges() {
            b.add_edge(off + u, off + v, p).expect("valid union edge");
        }
    }
    b.build()
}

/// A localized batch of `ops` mutations, all inside the vertex range
/// `[lo, hi)` (one stable community): round-robin insert-absent /
/// re-weight-existing / delete-existing, over distinct edges so the
/// batch is representable against the unmutated graph. Returns the
/// batch and the concretely mutated graph (the rebuild input).
fn local_batch(
    g: &UncertainGraph,
    lo: u32,
    hi: u32,
    ops: usize,
) -> (mule::GraphDelta, UncertainGraph) {
    let mut present: Vec<(u32, u32, f64)> = Vec::new();
    let mut absent: Vec<(u32, u32)> = Vec::new();
    for u in lo..hi {
        for v in (u + 1)..hi {
            match g.edge_prob_raw(u, v) {
                Some(p) => present.push((u, v, p)),
                None => absent.push((u, v)),
            }
        }
    }
    assert!(
        absent.len() >= ops && present.len() >= ops,
        "community too small for a {ops}-op batch"
    );
    let mut delta = mule::GraphDelta::new();
    let mut edges: std::collections::BTreeMap<(u32, u32), f64> =
        present.iter().map(|&(u, v, p)| ((u, v), p)).collect();
    let (mut ins, mut touch) = (0usize, 0usize);
    for i in 0..ops {
        match i % 3 {
            0 => {
                let (u, v) = absent[ins];
                ins += 1;
                delta = delta.insert(u, v, 0.9);
                edges.insert((u, v), 0.9);
            }
            1 => {
                let (u, v, _) = present[touch];
                touch += 1;
                delta = delta.set_prob(u, v, 0.8);
                edges.insert((u, v), 0.8);
            }
            _ => {
                let (u, v, _) = present[touch];
                touch += 1;
                delta = delta.delete(u, v);
                edges.remove(&(u, v));
            }
        }
    }
    // The concretely mutated graph: untouched edges everywhere else.
    let mut b = GraphBuilder::new(g.num_vertices());
    let n = g.num_vertices() as u32;
    for u in 0..n {
        for v in (u + 1)..n {
            if u >= lo && v < hi {
                continue; // community edges come from the ledger below
            }
            if let Some(p) = g.edge_prob_raw(u, v) {
                b.add_edge(u, v, p).expect("valid edge");
            }
        }
    }
    for (&(u, v), &p) in &edges {
        b.add_edge(u, v, p).expect("valid mutated edge");
    }
    (delta, b.build())
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2] * 1e3
}

fn main() {
    let args = Args::parse(&["seed", "scale", "alpha", "repeats", "out"], USAGE);
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 0.25);
    let alpha: f64 = args.get_or("alpha", 0.3);
    let repeats: usize = args.get_or("repeats", 9).max(1);
    let out_path: String = args.get_or("out", "BENCH_pr10.json".to_string());

    let community_n = 128usize;
    let communities = ((5000.0 * scale / 16.0).round() as usize).max(4);
    let g = community_graph(seed, communities, community_n);
    // Community 1 is in the stable band (min p ≥ 0.75 > α): every edge
    // is visible at α, so deletes and re-weights are representable.
    let (lo, hi) = (community_n as u32, 2 * community_n as u32);

    let session = mule::Query::new(&g)
        .alpha(alpha)
        .prepare()
        .expect("prepare");
    let resident_bytes = session.to_catalog_bytes();
    let dir = std::env::temp_dir().join(format!("mule-delta-churn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let saved = dir.join("resident.ugq");
    session.save(&saved).expect("save catalog");

    let mut json = Json::new();
    json.begin_obj();
    json.key("artifact").str_val("BENCH_pr10");
    json.key("description").str_val(
        "Incremental maintenance under churn (PR 10: mule::delta). Per batch \
         size, `apply_ms` folds the batch into a clone of the resident session \
         (Prepared::apply), `rebuild_ms` is the same-session baseline (fresh \
         Query::prepare of the mutated graph, merge untimed), `append_ms` is \
         the durability path (catalog::append_delta: re-serialize + atomic \
         write). All churn is localized to one stable BA community; apply's \
         result is verified byte-identical to the rebuild before timing is \
         trusted. Medians over --repeats; absolute numbers move between \
         sessions; compare within this artifact only.",
    );
    json.key("workload").begin_obj();
    json.key("graph").str_val("BA-communities");
    json.key("communities").int(communities as i64);
    json.key("community_n").int(community_n as i64);
    json.key("n").int(g.num_vertices() as i64);
    json.key("m").int(g.num_edges() as i64);
    json.key("alpha").num(alpha);
    json.key("churned_community").int(1);
    json.end_obj();
    json.key("config").begin_obj();
    json.key("seed").int(seed as i64);
    json.key("scale").num(scale);
    json.key("repeats").int(repeats as i64);
    json.end_obj();

    json.key("churn").begin_arr();
    for &ops in &[1usize, 4, 16, 64] {
        let (delta, mutated) = local_batch(&g, lo, hi, ops);

        // Verify once: apply ≡ fresh prepare of the mutated graph.
        let mut applied = mule::Query::open_bytes(resident_bytes.clone()).expect("clone");
        applied.apply(&delta).expect("localized batch must apply");
        let fresh = mule::Query::new(&mutated)
            .alpha(alpha)
            .prepare()
            .expect("prepare mutated");
        assert_eq!(
            applied.to_catalog_bytes(),
            fresh.to_catalog_bytes(),
            "{ops}-op batch: apply must be byte-identical to a fresh prepare"
        );

        let mut apply_s = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let mut clone = mule::Query::open_bytes(resident_bytes.clone()).expect("clone");
            let t0 = Instant::now();
            clone.apply(&delta).expect("apply");
            apply_s.push(t0.elapsed().as_secs_f64());
        }
        let mut rebuild_s = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let t0 = Instant::now();
            let session = mule::Query::new(&mutated)
                .alpha(alpha)
                .prepare()
                .expect("prepare mutated");
            rebuild_s.push(t0.elapsed().as_secs_f64());
            drop(session);
        }
        let mut append_s = Vec::with_capacity(repeats);
        let scratch = dir.join(format!("append-{ops}.ugq"));
        for _ in 0..repeats {
            std::fs::copy(&saved, &scratch).expect("copy catalog");
            let t0 = Instant::now();
            mule::catalog::append_delta(&scratch, &delta).expect("append");
            append_s.push(t0.elapsed().as_secs_f64());
        }

        let apply_ms = median_ms(&mut apply_s);
        let rebuild_ms = median_ms(&mut rebuild_s);
        let append_ms = median_ms(&mut append_s);
        json.begin_obj();
        json.key("ops").int(ops as i64);
        json.key("apply_ms").num(apply_ms);
        json.key("rebuild_ms").num(rebuild_ms);
        json.key("append_ms").num(append_ms);
        json.key("speedup").num(rebuild_ms / apply_ms.max(1e-9));
        json.end_obj();
        eprintln!(
            "done {ops} op(s): apply {apply_ms:.3} ms, rebuild {rebuild_ms:.3} ms \
             ({:.1}x), append {append_ms:.3} ms",
            rebuild_ms / apply_ms.max(1e-9)
        );
    }
    json.end_arr();
    json.end_obj();

    std::fs::write(&out_path, json.finish()).expect("write artifact");
    eprintln!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);
}
