//! Regenerates **Table 1** (the input-graph inventory): builds every
//! dataset stand-in and reports category, vertex and edge counts next to
//! the paper's numbers, plus the probability summary our generators
//! realized.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin table1 -- [--seed 42] [--scale 1.0] [--quick]
//! ```
//!
//! `--quick` scales DBLP10 (the only multi-minute build) down to 10%.

use ugraph_bench::{harness, Args, Report};
use ugraph_core::GraphStats;

const USAGE: &str = "table1 — regenerate Table 1 (input graphs)
options:
  --seed N     dataset seed (default 42)
  --scale X    global scale factor in (0,1] (default 1.0)
  --quick      build DBLP10 at 10% scale (everything else full size)";

fn main() {
    let args = Args::parse(&["seed", "scale", "quick"], USAGE);
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let quick = args.flag("quick");

    let mut report = Report::new(
        "Table 1: Input Graphs (stand-ins; paper numbers in parentheses)",
        &[
            "Input Graph",
            "Category",
            "Vertices",
            "(paper)",
            "Edges",
            "(paper)",
            "mean p",
            "max deg",
        ],
    );
    for spec in ugraph_gen::datasets::table1() {
        let s = if quick && spec.name == "DBLP10" {
            (scale * 0.1).min(1.0)
        } else {
            scale
        };
        let g = harness::dataset(spec.name, seed, s);
        let stats = GraphStats::compute(&g);
        report.row(&[
            spec.name.to_string(),
            spec.category.to_string(),
            stats.n.to_string(),
            spec.paper_n.to_string(),
            stats.m.to_string(),
            spec.paper_m.to_string(),
            format!("{:.3}", stats.mean_prob),
            stats.max_degree.to_string(),
        ]);
    }
    report.emit(&harness::results_dir(), "table1");
}
