//! Regenerates **Figure 2**: MULE runtime as a function of α.
//!
//! Panel (a): the Barabási–Albert family BA5000 … BA10000.
//! Panel (b): the semi-synthetic / real stand-ins (Fruit-Fly PPI,
//! ca-GrQc, three Gnutella snapshots, wiki-vote).
//!
//! Expected shape (paper): runtime drops sharply as α grows — larger
//! thresholds prune search paths earlier — and larger graphs sit higher.
//!
//! Each point is timed `--repeats` times and reported as a
//! min/median/p95 [`ugraph_bench::Summary`] (runtimes are right-skewed;
//! a single sample is noise). A point that hits the deadline is not
//! repeated and its cell is prefixed `>`.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin fig2 -- [--seed 42] [--scale 1.0] [--timeout 120] [--repeats 3]
//! ```

use std::time::Duration;
use ugraph_bench::{harness, repeated_run, Algo, Args, Report};

const USAGE: &str = "fig2 — MULE runtime vs alpha (Figure 2)
options:
  --seed N      dataset seed (default 42)
  --scale X     dataset scale in (0,1] (default 1.0)
  --timeout S   per-run budget in seconds (default 120)
  --repeats N   timing samples per point (default 3)
  --plot        render an ASCII log-log chart per panel";

fn main() {
    let args = Args::parse(&["seed", "scale", "timeout", "repeats", "plot"], USAGE);
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let repeats: usize = args.get_or("repeats", 3);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 120.0));
    let alphas = harness::alpha_grid();

    for (panel, datasets) in [
        (
            "a",
            &["BA5000", "BA6000", "BA7000", "BA8000", "BA9000", "BA10000"][..],
        ),
        (
            "b",
            &[
                "Fruit-Fly",
                "ca-GrQc",
                "p2p-Gnutella04",
                "p2p-Gnutella08",
                "p2p-Gnutella09",
                "wiki-vote",
            ][..],
        ),
    ] {
        let mut report = Report::new(
            format!(
                "Figure 2{panel}: MULE runtime (s, min/median/p95 over {repeats} runs) vs alpha"
            ),
            &["alpha", "graph", "runtime", "cliques", "calls"],
        );
        let mut curves: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for name in datasets {
            let g = harness::dataset(name, seed, scale);
            let mut pts = Vec::new();
            for &alpha in &alphas {
                let (r, s) = repeated_run(Algo::Mule, &g, alpha, budget, repeats);
                let cell = s.display_censored(r.timed_out);
                report.row(&[
                    format!("{alpha}"),
                    name.to_string(),
                    cell.clone(),
                    r.cliques.to_string(),
                    r.calls().to_string(),
                ]);
                pts.push((alpha, s.median));
                eprintln!("done {name} α={alpha}: {cell}");
            }
            curves.push((name.to_string(), pts));
        }
        report.emit(&harness::results_dir(), &format!("fig2{panel}"));
        if args.flag("plot") {
            let mut plot = ugraph_bench::AsciiPlot::new(
                format!("Figure 2{panel}: runtime (s, log) vs alpha (log)"),
                ugraph_bench::Scale::Log,
                ugraph_bench::Scale::Log,
            );
            for (name, pts) in &curves {
                plot = plot.series(name, pts);
            }
            println!("{}", plot.render());
        }
    }
}
