//! Regenerates **Figure 4**: MULE runtime against output size (number of
//! α-maximal cliques) on the random BA graphs, α ∈
//! {0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001}.
//!
//! Expected shape (paper): the points fall on a near-straight line —
//! observed runtime is proportional to output size, the empirical
//! counterpart of the `O(√n)`-of-optimal analysis (Lemma 12). The TSV
//! includes the `secs_per_clique` column so the proportionality constant
//! is visible directly.
//!
//! Each point is timed `--repeats` times; the runtime column is a
//! min/median/p95 summary and the proportionality constant uses the
//! median (the sample least polluted by warm-up noise).
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin fig4 -- [--seed 42] [--scale 1.0] [--timeout 120] [--repeats 3]
//! ```

use std::time::Duration;
use ugraph_bench::{harness, repeated_run, Algo, Args, Report};

const USAGE: &str = "fig4 — runtime vs output size on BA graphs (Figure 4)
options:
  --seed N      dataset seed (default 42)
  --scale X     dataset scale in (0,1] (default 1.0)
  --timeout S   per-run budget in seconds (default 120)
  --repeats N   timing samples per point (default 3)";

fn main() {
    let args = Args::parse(&["seed", "scale", "timeout", "repeats"], USAGE);
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let repeats: usize = args.get_or("repeats", 3);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 120.0));

    let datasets = ["BA5000", "BA6000", "BA7000", "BA8000", "BA9000", "BA10000"];
    let mut report = Report::new(
        format!(
            "Figure 4: runtime (min/median/p95 over {repeats} runs) vs output size (BA graphs)"
        ),
        &[
            "alpha",
            "graph",
            "cliques",
            "runtime",
            "secs_per_1k_cliques",
        ],
    );
    for name in datasets {
        let g = harness::dataset(name, seed, scale);
        for &alpha in &harness::fig4_alphas() {
            let (r, s) = repeated_run(Algo::Mule, &g, alpha, budget, repeats);
            // A censored point has a truncated time over a partial
            // count — the ratio the figure exists to show is undefined
            // there, so print a placeholder instead of a wrong number.
            let per_k = if r.timed_out {
                "-".to_string()
            } else {
                format!("{:.4}", 1000.0 * s.median / (r.cliques.max(1) as f64))
            };
            report.row(&[
                format!("{alpha}"),
                name.to_string(),
                r.cliques.to_string(),
                s.display_censored(r.timed_out),
                per_k,
            ]);
            eprintln!("done {name} α={alpha}");
        }
    }
    report.emit(&harness::results_dir(), "fig4");
}
