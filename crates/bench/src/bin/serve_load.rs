//! Sustained-load latency harness for `mule serve` (PR 7).
//!
//! Boots a real server on a prepared `.ugq` catalog, drives it with
//! concurrent newline-JSON clients for a fixed wall-clock window, and
//! records sustained throughput (queries/sec) with p50/p95/p99 request
//! latency — next to a **same-session baseline**: the identical query
//! executed directly on one resident [`mule::Prepared`] session, so the
//! artifact separates enumeration cost from serving overhead (framing,
//! scheduling, session cache, TCP) on the same machine and build.
//!
//! `--mixed-alpha` (PR 8) runs the α-split workload instead: clients
//! spread across several α values against **one resident α-generic
//! base** (each request carries `"alpha"`, refined views served from
//! the per-base LRU), next to the PR-7 shape re-measured in the same
//! process — one *fixed-α catalog per α* with a capacity-1 session
//! cache, so every α change evicts and cold-opens (session thrash).
//! The artifact also times `Base::refine(α)` against a full
//! `Query::prepare` at the same α, same session — the per-α cost the
//! server amortizes. The graph is a disjoint union of BA communities
//! (see [`community_graph`]) — the component-bearing shape where
//! refinement Arc-shares untouched components instead of redoing them.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin serve_load -- \
//!     [--seed 42] [--scale 0.25] [--alpha 0.3] [--duration 3] \
//!     [--clients 8] [--workers 4] [--out BENCH_pr7.json]
//! cargo run -p ugraph-bench --release --bin serve_load -- --mixed-alpha \
//!     [--duration 3] [--repeats 9] [--out BENCH_pr8.json]
//! ```

use mule_cli::serve::{log_to, ServeConfig, Server};
use mule_cli::wire::Json as Wire;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use ugraph_bench::{harness, Args, Json};
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};
use ugraph_gen::ba::barabasi_albert;
use ugraph_gen::rng::{derive_seed, rng_from_seed};
use ugraph_gen::EdgeProbModel;

const USAGE: &str = "serve_load — sustained-load latency for `mule serve`
options:
  --seed N       dataset seed (default 42)
  --scale X      dataset scale (default 0.25): BA5000 scale, or with
                 --mixed-alpha the BA-community count (78 at 0.25)
  --alpha A      enumeration threshold (default 0.3)
  --duration S   seconds of sustained load per run (default 3)
  --clients N    concurrent client connections (default = --workers;
                 a persistent connection pins its worker, so clients
                 beyond the worker count measure admission-queue wait)
  --workers N    server worker threads (default 4)
  --mixed-alpha  run the PR-8 α-split workload: mixed-α clients against
                 one resident base vs per-α fixed catalogs under a
                 capacity-1 cache (session thrash), plus refine-vs-
                 prepare timings
  --repeats N    samples per refine/prepare timing (--mixed-alpha, default 9)
  --out PATH     JSON artifact path (default BENCH_pr7.json, or
                 BENCH_pr8.json with --mixed-alpha)";

/// Linear-interpolation percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[rank.ceil() as usize] - sorted[lo]) * frac
}

/// Emit one latency distribution as a JSON object body.
fn emit_latency(json: &mut Json, samples: &mut [f64], wall_s: f64) {
    samples.sort_by(f64::total_cmp);
    json.key("requests").int(samples.len() as i64);
    json.key("qps").num(samples.len() as f64 / wall_s);
    json.key("p50_ms").num(percentile(samples, 0.50) * 1e3);
    json.key("p95_ms").num(percentile(samples, 0.95) * 1e3);
    json.key("p99_ms").num(percentile(samples, 0.99) * 1e3);
    json.key("max_ms")
        .num(samples.last().copied().unwrap_or(0.0) * 1e3);
}

/// One client: issue the given `count` request frame back-to-back over
/// a persistent connection until the deadline, recording per-request
/// seconds.
fn drive_frames(
    addr: std::net::SocketAddr,
    frame: &str,
    until: Instant,
    expected: u64,
) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut samples = Vec::new();
    while Instant::now() < until {
        let t0 = Instant::now();
        writer.write_all(frame.as_bytes()).expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        samples.push(t0.elapsed().as_secs_f64());
        let reply = Wire::parse(line.trim_end()).expect("parseable reply");
        assert_eq!(
            reply.get("count").and_then(Wire::as_u64),
            Some(expected),
            "server returned a wrong count under load: {line}"
        );
    }
    samples
}

/// The PR-7 client shape: plain `count` against one fixed-α catalog.
fn drive_client(
    addr: std::net::SocketAddr,
    catalog: &str,
    until: Instant,
    expected: u64,
) -> Vec<f64> {
    let frame = format!("{{\"op\":\"count\",\"catalog\":\"{catalog}\"}}\n");
    drive_frames(addr, &frame, until, expected)
}

/// The mixed-α workload graph: a disjoint union of BA communities —
/// the component-bearing shape the α-split base exists for (the paper's
/// PPI/co-authorship graphs shard into many components; a connected
/// BA graph would make every refinement re-run the whole pipeline).
/// Most communities draw their edge probabilities from a stable high
/// band (min ≥ 0.75, above the whole α grid), so refinement leaves
/// them untouched and Arc-shares their kernels; every eighth community
/// is volatile (probabilities down to 0.05) and is the only place the
/// α-stages actually re-run.
fn community_graph(seed: u64, communities: usize, community_n: usize) -> UncertainGraph {
    let m_attach = 3usize.min(community_n - 1);
    let mut b = GraphBuilder::with_capacity(
        communities * community_n,
        communities * ugraph_gen::ba::ba_edge_count(community_n, m_attach),
    );
    for c in 0..communities {
        let probs = if c % 8 == 0 {
            EdgeProbModel::Uniform { lo: 0.05, hi: 1.0 }
        } else {
            EdgeProbModel::Uniform { lo: 0.75, hi: 1.0 }
        };
        let mut rng = rng_from_seed(derive_seed(seed, &format!("community{c}")));
        let community = barabasi_albert(community_n, m_attach, probs, &mut rng);
        let off = (c * community_n) as VertexId;
        for (u, v, p) in community.edges() {
            b.add_edge(off + u, off + v, p).expect("valid union edge");
        }
    }
    b.build()
}

/// The PR-8 α-split workload: one resident base vs per-α session
/// thrash, plus direct refine-vs-prepare timings. Writes BENCH_pr8.json.
fn run_mixed_alpha(args: &Args) {
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 0.25);
    let duration = Duration::from_secs_f64(args.get_or("duration", 3.0));
    let workers: usize = args.get_or("workers", 4).max(1);
    let repeats: usize = args.get_or("repeats", 9).max(1);
    let out_path: String = args.get_or("out", "BENCH_pr8.json".to_string());
    let alphas = [0.3f64, 0.5, 0.7];
    // One client per (worker, α) pairing keeps every worker busy while
    // each connection sticks to a single α — the steady mixed-α shape.
    let clients = workers.max(alphas.len());

    // Scale controls the number of communities (fixed community size):
    // the default 0.25 yields 78 BA communities of 128 vertices each,
    // ~10k vertices — the "component-bearing scale" of the acceptance
    // bar, where most per-α work is Arc-shared instead of redone.
    let community_n = 128usize;
    let communities = ((5000.0 * scale / 16.0).round() as usize).max(4);
    let g = community_graph(seed, communities, community_n);
    let dir = std::env::temp_dir().join(format!("mule-serve-mixed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // The resident artifacts: one α-generic base, and one fixed-α
    // catalog per α for the thrash baseline.
    let base = mule::Query::new(&g).prepare_base().expect("prepare base");
    let base_path = dir.join("base.ugq");
    base.save(&base_path).expect("save base");
    let base_catalog = base_path.to_str().unwrap().to_string();
    let mut expected = Vec::new();
    let mut fixed_catalogs = Vec::new();
    for (i, &alpha) in alphas.iter().enumerate() {
        let mut session = mule::Query::new(&g)
            .alpha(alpha)
            .prepare()
            .expect("prepare");
        let n = session.count().expect("unlimited count");
        let path = dir.join(format!("fixed{i}.ugq"));
        session.save(&path).expect("save fixed catalog");
        expected.push(n);
        fixed_catalogs.push(path.to_str().unwrap().to_string());
    }

    // Same-session baseline: Base::refine(α) vs a full Query::prepare
    // at the same α, directly, no server in the path. The refined
    // output is verified against the fixed session's count above.
    let mut refine_ms = Vec::new();
    let mut prepare_ms = Vec::new();
    for (i, &alpha) in alphas.iter().enumerate() {
        let mut secs = Vec::with_capacity(repeats);
        for r in 0..repeats {
            let t0 = Instant::now();
            let refined = base.refine(alpha).expect("refine");
            secs.push(t0.elapsed().as_secs_f64());
            if r == 0 {
                let mut refined = refined;
                assert_eq!(refined.count().expect("count"), expected[i]);
            }
        }
        secs.sort_by(f64::total_cmp);
        refine_ms.push(secs[secs.len() / 2] * 1e3);
        let mut secs = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let t0 = Instant::now();
            let session = mule::Query::new(&g)
                .alpha(alpha)
                .prepare()
                .expect("prepare");
            secs.push(t0.elapsed().as_secs_f64());
            drop(session);
        }
        secs.sort_by(f64::total_cmp);
        prepare_ms.push(secs[secs.len() / 2] * 1e3);
    }

    // Serve the mixed-α load twice, same process, same build: once
    // against the resident base (α-keyed view LRU), once against the
    // per-α fixed catalogs with a capacity-1 cache — the PR-7 shape,
    // where alternating α means evict + cold-open every time.
    let run_server = |cfg: ServeConfig, frames: &[(String, u64)]| -> (Vec<f64>, f64) {
        let server = Server::start(cfg, log_to(Box::new(std::io::sink()))).expect("server start");
        let addr = server.addr();
        // Warm-up pass so the measured window is steady-state.
        for (frame, want) in frames {
            drive_frames(
                addr,
                frame,
                Instant::now() + Duration::from_millis(100),
                *want,
            );
        }
        let t0 = Instant::now();
        let until = t0 + duration;
        let samples: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let (frame, want) = &frames[c % frames.len()];
                    scope.spawn(move || drive_frames(addr, frame, until, *want))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        server.request_shutdown();
        server.join();
        (samples, wall)
    };

    let base_frames: Vec<(String, u64)> = alphas
        .iter()
        .zip(&expected)
        .map(|(alpha, want)| {
            (
                format!("{{\"op\":\"count\",\"catalog\":\"{base_catalog}\",\"alpha\":{alpha}}}\n"),
                *want,
            )
        })
        .collect();
    let (mut base_samples, base_wall) = run_server(
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        &base_frames,
    );

    let thrash_frames: Vec<(String, u64)> = fixed_catalogs
        .iter()
        .zip(&expected)
        .map(|(path, want)| {
            (
                format!("{{\"op\":\"count\",\"catalog\":\"{path}\"}}\n"),
                *want,
            )
        })
        .collect();
    let (mut thrash_samples, thrash_wall) = run_server(
        ServeConfig {
            workers,
            cache_capacity: 1,
            ..ServeConfig::default()
        },
        &thrash_frames,
    );
    let _ = std::fs::remove_dir_all(&dir);

    let mut json = Json::new();
    json.begin_obj();
    json.key("artifact").str_val("BENCH_pr8");
    json.key("description").str_val(
        "Mixed-α serving via one resident α-generic base (PR 8: α-split prepared \
         artifacts). `refine_vs_prepare` times Base::refine(α) against a full \
         Query::prepare at the same α on the same resident base, same session \
         (medians over --repeats). `serve_base` drives clients spread across the α \
         grid against ONE base catalog; every request carries \"alpha\" and is served \
         from the per-base refined-view LRU. `serve_thrash` re-measures the PR-7 \
         shape in the same process: one fixed-α catalog per α under a capacity-1 \
         session cache, so alternating α evicts and cold-opens each time. The \
         workload graph is a disjoint union of BA communities (component-bearing, \
         like the paper's PPI/co-authorship graphs): most communities sit in a \
         stable high-probability band the α grid never cuts, so refinement \
         Arc-shares their kernels and re-runs the α-stages only inside the \
         volatile minority. Single-CPU container: absolute numbers drift 10-16% \
         between sessions; compare within this artifact only.",
    );
    json.key("workload").begin_obj();
    json.key("dataset").str_val("BA-communities");
    json.key("scale").num(scale);
    json.key("communities").int(communities as i64);
    json.key("community_n").int(community_n as i64);
    json.key("volatile_communities")
        .int(communities.div_ceil(8) as i64);
    json.key("n").int(g.num_vertices() as i64);
    json.key("m").int(g.num_edges() as i64);
    json.key("op").str_val("count");
    json.key("seed").int(seed as i64);
    json.key("base_components")
        .int(base.num_components() as i64);
    json.key("alphas").begin_arr();
    for &alpha in &alphas {
        json.num(alpha);
    }
    json.end_arr();
    json.key("cliques").begin_arr();
    for &n in &expected {
        json.int(n as i64);
    }
    json.end_arr();
    json.end_obj();
    json.key("config").begin_obj();
    json.key("clients").int(clients as i64);
    json.key("server_workers").int(workers as i64);
    json.key("duration_s").num(duration.as_secs_f64());
    json.key("repeats").int(repeats as i64);
    json.end_obj();
    json.key("refine_vs_prepare").begin_arr();
    for (i, &alpha) in alphas.iter().enumerate() {
        json.begin_obj();
        json.key("alpha").num(alpha);
        json.key("prepare_full_ms").num(prepare_ms[i]);
        json.key("alpha_refine_ms").num(refine_ms[i]);
        json.key("speedup")
            .num(prepare_ms[i] / refine_ms[i].max(1e-9));
        json.end_obj();
    }
    json.end_arr();
    json.key("serve_base").begin_obj();
    emit_latency(&mut json, &mut base_samples, base_wall);
    json.end_obj();
    json.key("serve_thrash").begin_obj();
    emit_latency(&mut json, &mut thrash_samples, thrash_wall);
    json.end_obj();
    json.end_obj();

    std::fs::write(&out_path, json.finish()).expect("write artifact");
    println!("wrote {out_path}");
    for (i, &alpha) in alphas.iter().enumerate() {
        println!(
            "α={alpha}: prepare {:.3} ms, refine {:.3} ms ({:.1}x)",
            prepare_ms[i],
            refine_ms[i],
            prepare_ms[i] / refine_ms[i].max(1e-9)
        );
    }
    println!(
        "serve base: {} req ({:.0}/s)   serve thrash: {} req ({:.0}/s)",
        base_samples.len(),
        base_samples.len() as f64 / base_wall,
        thrash_samples.len(),
        thrash_samples.len() as f64 / thrash_wall,
    );
}

fn main() {
    let args = Args::parse(
        &[
            "seed",
            "scale",
            "alpha",
            "duration",
            "clients",
            "workers",
            "out",
            "mixed-alpha",
            "repeats",
        ],
        USAGE,
    );
    if args.flag("mixed-alpha") {
        run_mixed_alpha(&args);
        return;
    }
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 0.25);
    let alpha: f64 = args.get_or("alpha", 0.3);
    let duration = Duration::from_secs_f64(args.get_or("duration", 3.0));
    let workers: usize = args.get_or("workers", 4).max(1);
    let clients: usize = args.get_or("clients", workers).max(1);
    let out_path: String = args.get_or("out", "BENCH_pr7.json".to_string());

    // The workload: the BA5000 Table-1 stand-in, prepared once and
    // saved as the catalog every request re-queries.
    let g = harness::dataset("BA5000", seed, scale);
    let mut session = mule::Query::new(&g)
        .alpha(alpha)
        .prepare()
        .expect("prepare");
    let expected = session.count().expect("unlimited count");
    let dir = std::env::temp_dir().join(format!("mule-serve-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let catalog_path = dir.join("load.ugq");
    session.save(&catalog_path).expect("save catalog");
    let catalog = catalog_path.to_str().unwrap().to_string();

    // Same-session baseline: the identical query on the resident
    // session, no server in the path. Sample for the same wall-clock
    // window so both distributions see comparable machine noise.
    let mut baseline = Vec::new();
    let until = Instant::now() + duration;
    let base_t0 = Instant::now();
    while Instant::now() < until {
        let t0 = Instant::now();
        let n = session.count().expect("unlimited count");
        baseline.push(t0.elapsed().as_secs_f64());
        assert_eq!(n, expected);
    }
    let baseline_wall = base_t0.elapsed().as_secs_f64();

    // Sustained concurrent load against a live server.
    let server = Server::start(
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        log_to(Box::new(std::io::sink())),
    )
    .expect("server start");
    let addr = server.addr();
    // Warm the session cache so the measured window is steady-state.
    drive_client(addr, &catalog, Instant::now(), expected);
    drive_client(
        addr,
        &catalog,
        Instant::now() + Duration::from_millis(200),
        expected,
    );

    let load_t0 = Instant::now();
    let until = load_t0 + duration;
    let mut served: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| drive_client(addr, &catalog, until, expected)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let load_wall = load_t0.elapsed().as_secs_f64();
    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    let mut json = Json::new();
    json.begin_obj();
    json.key("artifact").str_val("BENCH_pr7");
    json.key("description").str_val(
        "Sustained-load latency for `mule serve` (PR 7: deadline-aware cancellable \
         sessions + fault-tolerant server). `serve` drives N concurrent newline-JSON \
         clients issuing `count` queries against one resident .ugq catalog for a fixed \
         window; `direct_baseline` runs the identical query on one resident Prepared \
         session with no server in the path, same build, same machine, same window — \
         the gap is the serving overhead (framing, admission, scheduling, TCP). Clients equal the worker count: a persistent connection pins its worker, so extra clients would sit in the admission queue for the whole window and report queue wait, not service latency. \
         Single-CPU container: absolute numbers drift 10-16% between sessions; compare \
         within this artifact only.",
    );
    json.key("workload").begin_obj();
    json.key("dataset").str_val("BA5000");
    json.key("scale").num(scale);
    json.key("n").int(g.num_vertices() as i64);
    json.key("m").int(g.num_edges() as i64);
    json.key("alpha").num(alpha);
    json.key("op").str_val("count");
    json.key("cliques").int(expected as i64);
    json.key("seed").int(seed as i64);
    json.end_obj();
    json.key("config").begin_obj();
    json.key("clients").int(clients as i64);
    json.key("server_workers").int(workers as i64);
    json.key("duration_s").num(duration.as_secs_f64());
    json.end_obj();
    json.key("direct_baseline").begin_obj();
    emit_latency(&mut json, &mut baseline, baseline_wall);
    json.end_obj();
    json.key("serve").begin_obj();
    emit_latency(&mut json, &mut served, load_wall);
    json.end_obj();
    json.end_obj();

    std::fs::write(&out_path, json.finish()).expect("write artifact");
    println!("wrote {out_path}");
    println!(
        "direct: {} req ({:.0}/s)   serve[{clients} clients]: {} req ({:.0}/s)",
        baseline.len(),
        baseline.len() as f64 / baseline_wall,
        served.len(),
        served.len() as f64 / load_wall,
    );
}
