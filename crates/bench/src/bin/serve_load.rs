//! Sustained-load latency harness for `mule serve` (PR 7).
//!
//! Boots a real server on a prepared `.ugq` catalog, drives it with
//! concurrent newline-JSON clients for a fixed wall-clock window, and
//! records sustained throughput (queries/sec) with p50/p95/p99 request
//! latency — next to a **same-session baseline**: the identical query
//! executed directly on one resident [`mule::Prepared`] session, so the
//! artifact separates enumeration cost from serving overhead (framing,
//! scheduling, session cache, TCP) on the same machine and build.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin serve_load -- \
//!     [--seed 42] [--scale 0.25] [--alpha 0.3] [--duration 3] \
//!     [--clients 8] [--workers 4] [--out BENCH_pr7.json]
//! ```

use mule_cli::serve::{log_to, ServeConfig, Server};
use mule_cli::wire::Json as Wire;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use ugraph_bench::{harness, Args, Json};

const USAGE: &str = "serve_load — sustained-load latency for `mule serve`
options:
  --seed N       dataset seed (default 42)
  --scale X      BA5000 dataset scale (default 0.25)
  --alpha A      enumeration threshold (default 0.3)
  --duration S   seconds of sustained load per run (default 3)
  --clients N    concurrent client connections (default = --workers;
                 a persistent connection pins its worker, so clients
                 beyond the worker count measure admission-queue wait)
  --workers N    server worker threads (default 4)
  --out PATH     JSON artifact path (default BENCH_pr7.json)";

/// Linear-interpolation percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[rank.ceil() as usize] - sorted[lo]) * frac
}

/// Emit one latency distribution as a JSON object body.
fn emit_latency(json: &mut Json, samples: &mut [f64], wall_s: f64) {
    samples.sort_by(f64::total_cmp);
    json.key("requests").int(samples.len() as i64);
    json.key("qps").num(samples.len() as f64 / wall_s);
    json.key("p50_ms").num(percentile(samples, 0.50) * 1e3);
    json.key("p95_ms").num(percentile(samples, 0.95) * 1e3);
    json.key("p99_ms").num(percentile(samples, 0.99) * 1e3);
    json.key("max_ms")
        .num(samples.last().copied().unwrap_or(0.0) * 1e3);
}

/// One client: issue `count` requests back-to-back over a persistent
/// connection until the deadline, recording per-request seconds.
fn drive_client(
    addr: std::net::SocketAddr,
    catalog: &str,
    until: Instant,
    expected: u64,
) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let frame = format!("{{\"op\":\"count\",\"catalog\":\"{catalog}\"}}\n");
    let mut samples = Vec::new();
    while Instant::now() < until {
        let t0 = Instant::now();
        writer.write_all(frame.as_bytes()).expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        samples.push(t0.elapsed().as_secs_f64());
        let reply = Wire::parse(line.trim_end()).expect("parseable reply");
        assert_eq!(
            reply.get("count").and_then(Wire::as_u64),
            Some(expected),
            "server returned a wrong count under load: {line}"
        );
    }
    samples
}

fn main() {
    let args = Args::parse(
        &[
            "seed", "scale", "alpha", "duration", "clients", "workers", "out",
        ],
        USAGE,
    );
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 0.25);
    let alpha: f64 = args.get_or("alpha", 0.3);
    let duration = Duration::from_secs_f64(args.get_or("duration", 3.0));
    let workers: usize = args.get_or("workers", 4).max(1);
    let clients: usize = args.get_or("clients", workers).max(1);
    let out_path: String = args.get_or("out", "BENCH_pr7.json".to_string());

    // The workload: the BA5000 Table-1 stand-in, prepared once and
    // saved as the catalog every request re-queries.
    let g = harness::dataset("BA5000", seed, scale);
    let mut session = mule::Query::new(&g)
        .alpha(alpha)
        .prepare()
        .expect("prepare");
    let expected = session.count().expect("unlimited count");
    let dir = std::env::temp_dir().join(format!("mule-serve-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let catalog_path = dir.join("load.ugq");
    session.save(&catalog_path).expect("save catalog");
    let catalog = catalog_path.to_str().unwrap().to_string();

    // Same-session baseline: the identical query on the resident
    // session, no server in the path. Sample for the same wall-clock
    // window so both distributions see comparable machine noise.
    let mut baseline = Vec::new();
    let until = Instant::now() + duration;
    let base_t0 = Instant::now();
    while Instant::now() < until {
        let t0 = Instant::now();
        let n = session.count().expect("unlimited count");
        baseline.push(t0.elapsed().as_secs_f64());
        assert_eq!(n, expected);
    }
    let baseline_wall = base_t0.elapsed().as_secs_f64();

    // Sustained concurrent load against a live server.
    let server = Server::start(
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        log_to(Box::new(std::io::sink())),
    )
    .expect("server start");
    let addr = server.addr();
    // Warm the session cache so the measured window is steady-state.
    drive_client(addr, &catalog, Instant::now(), expected);
    drive_client(
        addr,
        &catalog,
        Instant::now() + Duration::from_millis(200),
        expected,
    );

    let load_t0 = Instant::now();
    let until = load_t0 + duration;
    let mut served: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| drive_client(addr, &catalog, until, expected)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let load_wall = load_t0.elapsed().as_secs_f64();
    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    let mut json = Json::new();
    json.begin_obj();
    json.key("artifact").str_val("BENCH_pr7");
    json.key("description").str_val(
        "Sustained-load latency for `mule serve` (PR 7: deadline-aware cancellable \
         sessions + fault-tolerant server). `serve` drives N concurrent newline-JSON \
         clients issuing `count` queries against one resident .ugq catalog for a fixed \
         window; `direct_baseline` runs the identical query on one resident Prepared \
         session with no server in the path, same build, same machine, same window — \
         the gap is the serving overhead (framing, admission, scheduling, TCP). Clients equal the worker count: a persistent connection pins its worker, so extra clients would sit in the admission queue for the whole window and report queue wait, not service latency. \
         Single-CPU container: absolute numbers drift 10-16% between sessions; compare \
         within this artifact only.",
    );
    json.key("workload").begin_obj();
    json.key("dataset").str_val("BA5000");
    json.key("scale").num(scale);
    json.key("n").int(g.num_vertices() as i64);
    json.key("m").int(g.num_edges() as i64);
    json.key("alpha").num(alpha);
    json.key("op").str_val("count");
    json.key("cliques").int(expected as i64);
    json.key("seed").int(seed as i64);
    json.end_obj();
    json.key("config").begin_obj();
    json.key("clients").int(clients as i64);
    json.key("server_workers").int(workers as i64);
    json.key("duration_s").num(duration.as_secs_f64());
    json.end_obj();
    json.key("direct_baseline").begin_obj();
    emit_latency(&mut json, &mut baseline, baseline_wall);
    json.end_obj();
    json.key("serve").begin_obj();
    emit_latency(&mut json, &mut served, load_wall);
    json.end_obj();
    json.end_obj();

    std::fs::write(&out_path, json.finish()).expect("write artifact");
    println!("wrote {out_path}");
    println!(
        "direct: {} req ({:.0}/s)   serve[{clients} clients]: {} req ({:.0}/s)",
        baseline.len(),
        baseline.len() as f64 / baseline_wall,
        served.len(),
        served.len() as f64 / load_wall,
    );
}
