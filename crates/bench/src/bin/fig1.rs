//! Regenerates **Figure 1**: MULE vs DFS–NOIP runtime on wiki-vote,
//! BA5000, ca-GrQc and the Fruit-Fly PPI, at α ∈ {0.9, 0.8, 10⁻⁴,
//! 5·10⁻⁴} (the paper's four panels, log-scale y).
//!
//! The paper's qualitative claims this must reproduce: MULE wins on every
//! input at every α, by roughly an order of magnitude at high α and by
//! several orders at small α (where DFS–NOIP exceeded 11 hours on
//! wiki-vote — here: the deadline, reported as `>budget`).
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin fig1 -- [--seed 42] [--scale 1.0] [--timeout 60]
//! ```

use std::time::Duration;
use ugraph_bench::{harness, timed_run, Algo, Args, Report};

const USAGE: &str = "fig1 — MULE vs DFS-NOIP (Figure 1)
options:
  --seed N      dataset seed (default 42)
  --scale X     dataset scale in (0,1] (default 1.0)
  --timeout S   per-run budget in seconds (default 60)";

fn main() {
    let args = Args::parse(&["seed", "scale", "timeout"], USAGE);
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 60.0));

    // Panel order follows the figure's x-axis.
    let datasets = ["wiki-vote", "BA5000", "ca-GrQc", "Fruit-Fly"];
    let alphas = [0.9, 0.8, 0.0001, 0.0005];

    let mut report = Report::new(
        "Figure 1: MULE vs DFS-NOIP runtime (seconds; '>' = deadline hit)",
        &["alpha", "graph", "MULE", "DFS-NOIP", "speedup", "cliques"],
    );
    for &alpha in &alphas {
        for name in datasets {
            let g = harness::dataset(name, seed, scale);
            let mule = timed_run(Algo::Mule, &g, alpha, budget);
            let noip = timed_run(Algo::DfsNoip, &g, alpha, budget);
            let speedup = if noip.timed_out {
                format!(">{:.1}x", noip.seconds / mule.seconds.max(1e-9))
            } else {
                format!("{:.1}x", noip.seconds / mule.seconds.max(1e-9))
            };
            report.row(&[
                format!("{alpha}"),
                name.to_string(),
                mule.display_time(),
                noip.display_time(),
                speedup,
                mule.cliques.to_string(),
            ]);
            eprintln!(
                "done α={alpha} {name}: mule {} noip {}",
                mule.display_time(),
                noip.display_time()
            );
        }
    }
    report.emit(&harness::results_dir(), "fig1");
}
