//! Regenerates **Figure 3**: the number of α-maximal cliques as a
//! function of α (same dataset panels as Figure 2).
//!
//! Expected shape (paper): counts fall steeply as α grows; collaboration
//! projections (ca-GrQc) dominate the semi-synthetic panel — their
//! per-paper cliques survive at every threshold. The paper also notes the
//! count need not be monotone (a large clique can split into several
//! smaller maximal ones as α rises), but the differences are negligible at
//! plot scale; the TSV output lets one check for such local bumps.
//!
//! Each point also reports a min/median/p95 runtime summary over
//! `--repeats` timed runs (the counts themselves are deterministic; the
//! summary column is what the repeated-run port of this sweep adds).
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin fig3 -- [--seed 42] [--scale 1.0] [--timeout 120] [--repeats 3]
//! ```

use std::time::Duration;
use ugraph_bench::{harness, repeated_run, Algo, Args, Report};

const USAGE: &str = "fig3 — number of alpha-maximal cliques vs alpha (Figure 3)
options:
  --seed N      dataset seed (default 42)
  --scale X     dataset scale in (0,1] (default 1.0)
  --timeout S   per-run budget in seconds (default 120)
  --repeats N   timing samples per point (default 3)
  --plot        render an ASCII chart per panel";

fn main() {
    let args = Args::parse(&["seed", "scale", "timeout", "repeats", "plot"], USAGE);
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let repeats: usize = args.get_or("repeats", 3);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 120.0));
    let alphas = harness::alpha_grid();

    for (panel, datasets) in [
        (
            "a",
            &["BA5000", "BA6000", "BA7000", "BA8000", "BA9000", "BA10000"][..],
        ),
        (
            "b",
            &[
                "Fruit-Fly",
                "ca-GrQc",
                "p2p-Gnutella04",
                "p2p-Gnutella08",
                "p2p-Gnutella09",
                "wiki-vote",
            ][..],
        ),
    ] {
        let mut report = Report::new(
            format!("Figure 3{panel}: number of alpha-maximal cliques vs alpha"),
            &[
                "alpha",
                "graph",
                "cliques",
                "output_vertices",
                "max_clique",
                "runtime",
            ],
        );
        let mut curves: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for name in datasets {
            let g = harness::dataset(name, seed, scale);
            let mut pts = Vec::new();
            for &alpha in &alphas {
                let (r, s) = repeated_run(Algo::Mule, &g, alpha, budget, repeats);
                let count = if r.timed_out {
                    format!(">{}", r.cliques)
                } else {
                    r.cliques.to_string()
                };
                let runtime = s.display_censored(r.timed_out);
                report.row(&[
                    format!("{alpha}"),
                    name.to_string(),
                    count,
                    r.output_vertices.to_string(),
                    r.max_clique.to_string(),
                    runtime,
                ]);
                pts.push((alpha, r.cliques as f64));
                eprintln!("done {name} α={alpha}: {} cliques", r.cliques);
            }
            curves.push((name.to_string(), pts));
        }
        report.emit(&harness::results_dir(), &format!("fig3{panel}"));
        if args.flag("plot") {
            let mut plot = ugraph_bench::AsciiPlot::new(
                format!("Figure 3{panel}: #cliques (log) vs alpha (log)"),
                ugraph_bench::Scale::Log,
                ugraph_bench::Scale::Log,
            );
            for (name, pts) in &curves {
                plot = plot.series(name, pts);
            }
            println!("{}", plot.render());
        }
    }
}
