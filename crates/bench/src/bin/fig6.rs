//! Regenerates **Figure 6**: the number of α-maximal cliques of size at
//! least `t`, as a function of `t` (log-scale y), on BA10000, ca-GrQc and
//! DBLP — the output-size companion of Figure 5.
//!
//! Expected shape (paper): counts drop by orders of magnitude with each
//! unit of `t` (most maximal cliques are small), which is exactly why
//! LARGE–MULE's pruning pays off.
//!
//! Each point also records a min/median/p95 runtime summary over
//! `--repeats` timed runs alongside the (deterministic) counts.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin fig6 -- [--seed 42] [--scale 1.0] [--dblp-scale 0.1] [--timeout 120] [--repeats 3]
//! ```

use std::time::Duration;
use ugraph_bench::{harness, repeated_run, Algo, Args, Report};

const USAGE: &str = "fig6 — number of large alpha-maximal cliques vs t (Figure 6)
options:
  --seed N         dataset seed (default 42)
  --scale X        scale for BA10000 / ca-GrQc (default 1.0)
  --dblp-scale X   scale for DBLP10 (default 0.1)
  --timeout S      per-run budget in seconds (default 120)
  --repeats N      timing samples per point (default 3)";

fn main() {
    let args = Args::parse(
        &["seed", "scale", "dblp-scale", "timeout", "repeats"],
        USAGE,
    );
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let dblp_scale: f64 = args.get_or("dblp-scale", 0.1);
    let repeats: usize = args.get_or("repeats", 3);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 120.0));

    let small_alphas = [0.2, 0.1, 0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001];
    let dblp_alphas = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];

    type Panel<'a> = (
        &'a str,
        &'a str,
        f64,
        &'a [f64],
        std::ops::RangeInclusive<usize>,
    );
    let panels: [Panel; 3] = [
        ("a", "BA10000", scale, &small_alphas, 2..=6),
        ("b", "ca-GrQc", scale, &small_alphas, 2..=8),
        ("c", "DBLP10", dblp_scale, &dblp_alphas, 2..=8),
    ];

    for (panel, name, s, alphas, t_range) in panels {
        let g = harness::dataset(name, seed, s);
        let mut report = Report::new(
            format!("Figure 6{panel}: #alpha-maximal cliques of size >= t on {name} (scale {s})"),
            &["alpha", "t", "cliques", "max_clique", "runtime"],
        );
        for &alpha in alphas {
            for t in t_range.clone() {
                let (r, summary) = repeated_run(Algo::LargeMule(t), &g, alpha, budget, repeats);
                let count = if r.timed_out {
                    format!(">{}", r.cliques)
                } else {
                    r.cliques.to_string()
                };
                let runtime = summary.display_censored(r.timed_out);
                report.row(&[
                    format!("{alpha}"),
                    t.to_string(),
                    count,
                    r.max_clique.to_string(),
                    runtime,
                ]);
            }
            eprintln!("done {name} α={alpha}");
        }
        report.emit(&harness::results_dir(), &format!("fig6{panel}"));
    }
}
