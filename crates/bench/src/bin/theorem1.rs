//! Empirically checks the theory of Sections 3–4:
//!
//! * **Theorem 1** — on the Lemma 1 extremal graph, MULE must find exactly
//!   `C(n, ⌊n/2⌋)` α-maximal cliques (compared against both the
//!   closed-form bound and, for small `n`, the brute-force oracle);
//! * **Moon–Moser** — Bron–Kerbosch on the deterministic extremal graph
//!   must find exactly `3^{n/3}` (with `n mod 3` adjustments);
//! * **Theorem 3 / Observation 5** — MULE's search-tree size stays within
//!   the `O(n · 2^n)` bound while the output alone is `Θ(2^n/√n)` cliques;
//!   the table shows nodes, output, and their ratios to the bounds.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin theorem1 -- [--max-n 20] [--alpha 0.5]
//! ```

use mule::bounds::{max_alpha_maximal_cliques, moon_moser};
use mule::deterministic::count_maximal_cliques_deterministic;
use mule::naive::count_naive;
use mule::sinks::CountSink;
use mule::Mule;
use ugraph_bench::{harness, Args, Report};
use ugraph_gen::extremal::{lemma1_graph, moon_moser_graph};

const USAGE: &str = "theorem1 — empirical checks of Theorem 1 / Moon-Moser / Theorem 3
options:
  --max-n N    largest n for the extremal sweep (default 20; cost ~2^n)
  --alpha A    threshold used for the Lemma 1 construction (default 0.5)";

fn main() {
    let args = Args::parse(&["max-n", "alpha"], USAGE);
    let max_n: usize = args.get_or("max-n", 20);
    let alpha: f64 = args.get_or("alpha", 0.5);
    let dir = harness::results_dir();

    // Theorem 1: MULE on the Lemma 1 graph attains the bound exactly.
    let mut t1 = Report::new(
        format!("Theorem 1: alpha-maximal cliques on the Lemma 1 graph (alpha = {alpha})"),
        &["n", "MULE", "C(n,n/2)", "naive", "nodes", "n*2^n"],
    );
    for n in 2..=max_n {
        let g = lemma1_graph(n, alpha);
        let mut m = Mule::new(&g, alpha).expect("valid alpha");
        let mut sink = CountSink::new();
        m.run(&mut sink);
        let bound = max_alpha_maximal_cliques(n as u64).expect("fits u128");
        let naive = if n <= 14 {
            count_naive(&g, alpha).expect("valid alpha").to_string()
        } else {
            "-".to_string()
        };
        let status = if sink.count as u128 == bound {
            ""
        } else {
            "  <-- MISMATCH"
        };
        t1.row(&[
            n.to_string(),
            format!("{}{status}", sink.count),
            bound.to_string(),
            naive,
            m.stats().calls.to_string(),
            ((n as u128) << n).to_string(),
        ]);
    }
    t1.emit(&dir, "theorem1");

    // Moon–Moser: the deterministic extremal family at α = 1.
    let mut mm = Report::new(
        "Moon-Moser: maximal cliques of the deterministic extremal graph",
        &["n", "Bron-Kerbosch", "MooonMoser(n)", "MULE(alpha=1)"],
    );
    for n in 2..=max_n.min(18) {
        let g = moon_moser_graph(n);
        let bk = count_maximal_cliques_deterministic(&g);
        let mut m = Mule::new(&g, 1.0).expect("alpha = 1 is valid");
        let mut sink = CountSink::new();
        m.run(&mut sink);
        mm.row(&[
            n.to_string(),
            bk.to_string(),
            moon_moser(n).to_string(),
            sink.count.to_string(),
        ]);
    }
    mm.emit(&dir, "moon_moser");
}
