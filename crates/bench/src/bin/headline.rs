//! Regenerates the **headline numbers quoted in Section 5's prose**:
//!
//! * wiki-vote, α = 0.9 — paper: DFS–NOIP 64 s vs MULE 8 s (8×);
//! * wiki-vote, α = 10⁻⁴ — paper: DFS–NOIP > 11 h vs MULE 114 s (>350×);
//! * ca-GrQc, α = 10⁻⁴ — paper: DFS–NOIP 4400 s vs MULE 25 s (176×);
//! * DBLP, α = 0.9 — paper: MULE 76797 s vs LARGE–MULE(t=3) 32 s (2400×);
//! * ca-GrQc, α = 10⁻⁴ — paper: MULE 125 s vs LARGE–MULE 10 s (t=6) and
//!   6 s (t=7).
//!
//! Absolute numbers shift (2010 Java vs Rust, stand-in data); the ratios
//! and their ordering are the reproduction target recorded in
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin headline -- [--seed 42] [--scale 1.0] [--dblp-scale 0.1] [--timeout 120]
//! ```

use std::time::Duration;
use ugraph_bench::{harness, timed_run, Algo, Args, Report};

const USAGE: &str = "headline — the Section 5 prose speedups
options:
  --seed N         dataset seed (default 42)
  --scale X        scale for wiki-vote / ca-GrQc (default 1.0)
  --dblp-scale X   scale for DBLP10 (default 0.1)
  --timeout S      per-run budget in seconds (default 120)";

fn main() {
    let args = Args::parse(&["seed", "scale", "dblp-scale", "timeout"], USAGE);
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let dblp_scale: f64 = args.get_or("dblp-scale", 0.1);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 120.0));

    let mut report = Report::new(
        "Section 5 headline comparisons (paper ratio in last column)",
        &["comparison", "slow", "fast", "ratio", "paper"],
    );

    let mut add = |label: &str,
                   slow_algo: Algo,
                   fast_algo: Algo,
                   g: &ugraph_core::UncertainGraph,
                   alpha: f64,
                   paper: &str| {
        let fast = timed_run(fast_algo, g, alpha, budget);
        let slow = timed_run(slow_algo, g, alpha, budget);
        let ratio = slow.seconds / fast.seconds.max(1e-9);
        let ratio = if slow.timed_out {
            format!(">{ratio:.0}x")
        } else {
            format!("{ratio:.0}x")
        };
        report.row(&[
            label.to_string(),
            slow.display_time(),
            fast.display_time(),
            ratio,
            paper.to_string(),
        ]);
        eprintln!("done {label}");
    };

    let wiki = harness::dataset("wiki-vote", seed, scale);
    add(
        "wiki-vote α=0.9 NOIP/MULE",
        Algo::DfsNoip,
        Algo::Mule,
        &wiki,
        0.9,
        "64s/8s = 8x",
    );
    add(
        "wiki-vote α=1e-4 NOIP/MULE",
        Algo::DfsNoip,
        Algo::Mule,
        &wiki,
        1e-4,
        ">11h/114s > 350x",
    );
    let grqc = harness::dataset("ca-GrQc", seed, scale);
    add(
        "ca-GrQc α=1e-4 NOIP/MULE",
        Algo::DfsNoip,
        Algo::Mule,
        &grqc,
        1e-4,
        "4400s/25s = 176x",
    );
    add(
        "ca-GrQc α=1e-4 MULE/LARGE(t=6)",
        Algo::Mule,
        Algo::LargeMule(6),
        &grqc,
        1e-4,
        "125s/10s = 12x",
    );
    add(
        "ca-GrQc α=1e-4 MULE/LARGE(t=7)",
        Algo::Mule,
        Algo::LargeMule(7),
        &grqc,
        1e-4,
        "125s/6s = 21x",
    );
    let dblp = harness::dataset("DBLP10", seed, dblp_scale);
    // The paper's MULE pays Θ(n²) at the search root (Algorithm 1 seeds
    // Î with every vertex); our default MULE expands the root in closed
    // form and is as fast as LARGE–MULE here. The faithful cost model is
    // reproduced by the naive-root variant.
    add(
        "DBLP α=0.9 MULE(naive-root)/LARGE(t=3)",
        Algo::MuleNaiveRoot,
        Algo::LargeMule(3),
        &dblp,
        0.9,
        "76797s/32s = 2400x",
    );
    add(
        "DBLP α=0.9 MULE(naive-root)/MULE",
        Algo::MuleNaiveRoot,
        Algo::Mule,
        &dblp,
        0.9,
        "(root expansion: ours)",
    );

    report.emit(&harness::results_dir(), "headline");
}
