//! Regenerates the **headline numbers quoted in Section 5's prose**:
//!
//! * wiki-vote, α = 0.9 — paper: DFS–NOIP 64 s vs MULE 8 s (8×);
//! * wiki-vote, α = 10⁻⁴ — paper: DFS–NOIP > 11 h vs MULE 114 s (>350×);
//! * ca-GrQc, α = 10⁻⁴ — paper: DFS–NOIP 4400 s vs MULE 25 s (176×);
//! * DBLP, α = 0.9 — paper: MULE 76797 s vs LARGE–MULE(t=3) 32 s (2400×);
//! * ca-GrQc, α = 10⁻⁴ — paper: MULE 125 s vs LARGE–MULE 10 s (t=6) and
//!   6 s (t=7).
//!
//! Absolute numbers shift (2010 Java vs Rust, stand-in data); the ratios
//! and their ordering are the reproduction target recorded in
//! EXPERIMENTS.md.
//!
//! A second mode records the repo's own **perf trajectory**: `--json`
//! times the sequential and parallel default enumeration paths on
//! ER / BA / Chung–Lu graphs at the Figure 1 scales, α ∈ {0.3, 0.5,
//! 0.7}, with min/median/p95 over repeated runs, and writes a
//! machine-readable JSON artifact. Since PR 3 both paths run through
//! the preprocessing pipeline (`mule::prepare` — prune, core filter,
//! component shard); the rows keep the `MULE` / `MULE-par` labels so
//! the series stays comparable across `BENCH_pr<N>.json` artifacts.
//! Each PR that touches the hot path reruns this and checks the result
//! in, so speedups are measured against a recorded baseline instead of
//! folklore. `--min-size T` runs the suite through the size-bounded
//! pipeline instead (core filter + Modani–Dey peel engaged; parallel
//! rows included), and `--prune-report PATH` writes a JSON array of
//! per-point `PrepareReport`s. Since PR 8 each point also carries a
//! `prepare-full` / `alpha-refine` row pair: the cost of a fresh
//! `Query::prepare` at that α versus `Base::refine(α)` on a resident
//! α-generic base — the speedup one base buys a mixed-α workload.
//! Since PR 10 each point also carries a `delta-apply` row: the cost of
//! folding a one-edge mutation batch into a resident session with
//! `Prepared::apply` — compare against the same point's `prepare-full`
//! row for the incremental-vs-rebuild headline (the dedicated
//! `delta_churn` bin sweeps batch sizes).
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin headline -- [--seed 42] [--scale 1.0] [--dblp-scale 0.1] [--timeout 120]
//! cargo run -p ugraph-bench --release --bin headline -- --json [--out results/headline.json] [--repeats 5] [--scale 1.0] [--min-size T] [--prune-report PATH]
//! ```

use std::time::{Duration, Instant};
use ugraph_bench::{harness, repeated_run_with, timed_run_with, Algo, Args, Json, Report, Summary};

const USAGE: &str = "headline — the Section 5 prose speedups
options:
  --seed N           dataset seed (default 42)
  --scale X          scale for wiki-vote / ca-GrQc (default 1.0)
  --dblp-scale X     scale for DBLP10 (default 0.1)
  --timeout S        per-run budget in seconds (default 120)
  --json             run the perf-trajectory suite instead and emit JSON
  --out PATH         JSON output path (default results/headline.json)
  --repeats N        samples per (graph, alpha) point in --json mode (default 5)
  --min-size T       route the --json suite through the size-bounded pipeline
  --prune-report P   write per-point PrepareReport JSON to P (--json mode)
  --index-mode M     tiered neighborhood index: auto|always|never (default auto)
  --index-budget B   dense probability-tier budget in bytes per kernel
                     (0 = bitset membership tier only)";

/// Append the work-performed counters to the current JSON row: the
/// candidate-scan totals plus the tiered index's per-strategy probe
/// counters, so `BENCH_pr<N>.json` tracks probes avoided rather than
/// only wall-clock on a noisy single-CPU container.
fn emit_counters(json: &mut Json, stats: &mule::EnumerationStats) {
    json.key("i_candidates_scanned")
        .int(stats.i_candidates_scanned as i64);
    json.key("x_candidates_scanned")
        .int(stats.x_candidates_scanned as i64);
    json.key("dense_probes").int(stats.dense_probes as i64);
    json.key("gallop_probes").int(stats.gallop_probes as i64);
    json.key("merge_steps").int(stats.merge_steps as i64);
}

/// First vertex pair with no edge in `g` — an always-representable
/// insert for the `delta-apply` row.
fn first_absent_pair(g: &ugraph_core::UncertainGraph) -> (u32, u32) {
    let n = g.num_vertices() as u32;
    for u in 0..n {
        for v in (u + 1)..n {
            if g.edge_prob_raw(u, v).is_none() {
                return (u, v);
            }
        }
    }
    panic!("graph is complete");
}

/// One `mule::Query` per measured point: the builder is the single
/// place the suite's knobs (α, size bound, kernel config) turn into a
/// prepared session.
fn query_for<'g>(
    g: &'g ugraph_core::UncertainGraph,
    alpha: f64,
    min_size: usize,
    cfg: &mule::MuleConfig,
) -> mule::Query<'g> {
    mule::Query::new(g)
        .alpha(alpha)
        .min_size(min_size)
        .kernel_config(cfg.clone())
}

/// The perf-trajectory suite behind `--json`: sequential + parallel
/// pipeline enumeration on ER / BA / Chung–Lu inputs at the Figure 1
/// scales.
fn run_trajectory(args: &Args) {
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let repeats: usize = args.get_or("repeats", 5).max(1);
    let min_size: usize = args.get_or("min-size", 0);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 600.0));
    let mule_cfg = {
        let mut cfg = mule::MuleConfig::default();
        cfg.index_mode = args.get_or("index-mode", cfg.index_mode);
        cfg.dense_index_bytes = args.get_or("index-budget", cfg.dense_index_bytes);
        cfg
    };
    let alphas = [0.3, 0.5, 0.7];
    let thread_counts = [2usize, 4];

    // ER has no Table 1 row; synthesize it at the wiki-vote scale (the
    // largest Figure 1 input) with the same uniform-(0,1] probabilities.
    let er = {
        use rand::SeedableRng;
        let n = ((7118.0 * scale).round() as usize).max(16);
        let m = ((103_689.0 * scale).round() as usize).min(n * (n - 1) / 2);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(ugraph_gen::rng::derive_seed(
            seed,
            "ER-trajectory",
        ));
        ugraph_gen::er::gnm(
            n,
            m,
            ugraph_gen::probs::EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 },
            &mut rng,
        )
    };
    let graphs: Vec<(&str, ugraph_core::UncertainGraph)> = vec![
        ("ER-7118", er),
        ("BA5000", harness::dataset("BA5000", seed, scale)),
        // Chung–Lu stand-in for wiki-vote: the largest Figure 1 input and
        // the headline point this PR's acceptance criterion tracks.
        ("CL-wiki-vote", harness::dataset("wiki-vote", seed, scale)),
    ];

    // Row labels: min-size 0 keeps the historical MULE / MULE-par names
    // so the series diffs cleanly against earlier BENCH_pr<N>.json
    // artifacts (the *path* is the pipeline either way).
    let (seq_label, par_label) = if min_size >= 2 {
        (
            Algo::Pipeline(min_size).label(),
            format!("LARGE-pipeline-par(t={min_size})"),
        )
    } else {
        ("MULE".to_string(), "MULE-par".to_string())
    };

    let mut table = Report::new(
        "Perf trajectory: pipeline MULE on ER/BA/Chung-Lu (min/median/p95)",
        &["graph", "alpha", "algo", "threads", "time", "cliques"],
    );
    let mut json = Json::new();
    json.begin_obj();
    json.key("suite").str_val("headline-trajectory");
    json.key("seed").int(seed as i64);
    json.key("scale").num(scale);
    json.key("repeats").int(repeats as i64);
    json.key("min_size").int(min_size as i64);
    json.key("index_mode")
        .str_val(&format!("{:?}", mule_cfg.index_mode).to_lowercase());
    json.key("index_budget")
        .int(mule_cfg.dense_index_bytes as i64);
    json.key("results").begin_arr();
    let mut prune_json = Json::new();
    prune_json.begin_arr();
    for (name, g) in &graphs {
        // One α-generic base per graph: the artifact every α-refinement
        // row below derives from. Built once, like a serving process
        // would hold it resident.
        let alpha_base = mule::Query::new(g)
            .min_size(min_size)
            .kernel_config(mule_cfg.clone())
            .prepare_base()
            .expect("prepare base");
        for &alpha in &alphas {
            // Sequential pipeline enumeration: the headline series.
            let (r, s) = repeated_run_with(
                Algo::Pipeline(min_size),
                g,
                alpha,
                budget,
                repeats,
                &mule_cfg,
            );
            assert!(
                !r.timed_out && s.samples == repeats,
                "{name} α={alpha} exceeded the budget"
            );
            let cliques = r.cliques;
            table.row(&[
                name.to_string(),
                format!("{alpha}"),
                seq_label.clone(),
                "1".into(),
                s.display(),
                cliques.to_string(),
            ]);
            json.begin_obj();
            json.key("graph").str_val(name);
            json.key("n").int(g.num_vertices() as i64);
            json.key("m").int(g.num_edges() as i64);
            json.key("alpha").num(alpha);
            json.key("algo").str_val(&seq_label);
            json.key("threads").int(1);
            json.key("cliques").int(cliques as i64);
            emit_counters(&mut json, &r.stats);
            json.summary("time", &s);
            json.end_obj();
            eprintln!("done {name} α={alpha} {seq_label}: {}", s.display());

            // Catalog cold-open: how fast a persisted session comes
            // back, per point. The save is untimed (write-side cost is
            // a one-off); the timed region is `Query::open` alone —
            // read, validate every checksum and invariant, rebuild the
            // neighborhood index. Enumeration counters are zero by
            // construction: open runs no search.
            {
                let session = query_for(g, alpha, min_size, &mule_cfg)
                    .prepare()
                    .expect("valid alpha");
                let cat_path = std::env::temp_dir().join(format!(
                    "headline-{name}-{alpha}-{}.ugq",
                    std::process::id()
                ));
                session.save(&cat_path).expect("write catalog");
                let mut secs = Vec::with_capacity(repeats);
                let mut reopened_count = 0u64;
                for i in 0..repeats {
                    let start = Instant::now();
                    let mut reopened = mule::Query::open(&cat_path).expect("reopen catalog");
                    secs.push(start.elapsed().as_secs_f64());
                    if i == 0 {
                        // Equality check once, outside the timed region.
                        reopened_count = reopened
                            .count()
                            .expect("unlimited run cannot be interrupted");
                    }
                }
                let _ = std::fs::remove_file(&cat_path);
                assert_eq!(
                    reopened_count, cliques,
                    "{name} α={alpha}: catalog-open served a different result"
                );
                let s = Summary::from_samples(&secs);
                table.row(&[
                    name.to_string(),
                    format!("{alpha}"),
                    "catalog-open".into(),
                    "1".into(),
                    s.display(),
                    cliques.to_string(),
                ]);
                json.begin_obj();
                json.key("graph").str_val(name);
                json.key("n").int(g.num_vertices() as i64);
                json.key("m").int(g.num_edges() as i64);
                json.key("alpha").num(alpha);
                json.key("algo").str_val("catalog-open");
                json.key("threads").int(1);
                json.key("cliques").int(cliques as i64);
                emit_counters(&mut json, &mule::EnumerationStats::new());
                json.summary("time", &s);
                json.end_obj();
                eprintln!("done {name} α={alpha} catalog-open: {}", s.display());
            }

            // α-refinement vs full prepare at the same α: `prepare-full`
            // times `Query::prepare` alone (pipeline, no enumeration);
            // `alpha-refine` times `Base::refine(α)` on the resident
            // base — mask, local core/peel, component re-split. The
            // ratio between the two rows is the speedup one resident
            // base buys a mixed-α workload. Counts are cross-checked
            // against the sequential row outside the timed regions.
            {
                let mut prep_secs = Vec::with_capacity(repeats);
                for _ in 0..repeats {
                    let start = Instant::now();
                    let session = query_for(g, alpha, min_size, &mule_cfg)
                        .prepare()
                        .expect("valid alpha");
                    prep_secs.push(start.elapsed().as_secs_f64());
                    drop(session);
                }
                let mut refine_secs = Vec::with_capacity(repeats);
                let mut refined_count = 0u64;
                for i in 0..repeats {
                    let start = Instant::now();
                    let refined = alpha_base.refine(alpha).expect("α is above the 0 floor");
                    refine_secs.push(start.elapsed().as_secs_f64());
                    if i == 0 {
                        let mut refined = refined;
                        refined_count = refined
                            .count()
                            .expect("unlimited run cannot be interrupted");
                    }
                }
                assert_eq!(
                    refined_count, cliques,
                    "{name} α={alpha}: refinement served a different result"
                );
                for (algo, secs) in [("prepare-full", &prep_secs), ("alpha-refine", &refine_secs)] {
                    let s = Summary::from_samples(secs);
                    table.row(&[
                        name.to_string(),
                        format!("{alpha}"),
                        algo.into(),
                        "1".into(),
                        s.display(),
                        cliques.to_string(),
                    ]);
                    json.begin_obj();
                    json.key("graph").str_val(name);
                    json.key("n").int(g.num_vertices() as i64);
                    json.key("m").int(g.num_edges() as i64);
                    json.key("alpha").num(alpha);
                    json.key("algo").str_val(algo);
                    json.key("threads").int(1);
                    json.key("cliques").int(cliques as i64);
                    emit_counters(&mut json, &mule::EnumerationStats::new());
                    json.summary("time", &s);
                    json.end_obj();
                    eprintln!("done {name} α={alpha} {algo}: {}", s.display());
                }
            }

            // Incremental maintenance vs the prepare-full row above:
            // `delta-apply` times `Prepared::apply` of a one-edge
            // insert batch on a clone of the resident session (PR 10).
            // The clone (via catalog bytes) and the count check stay
            // outside the timed region. Skipped if the instance is not
            // incrementally maintainable at this min_size (lossy
            // preconditions — see `mule::delta`).
            {
                let session = query_for(g, alpha, min_size, &mule_cfg)
                    .prepare()
                    .expect("valid alpha");
                let bytes = session.to_catalog_bytes();
                let delta = mule::GraphDelta::new().insert(
                    first_absent_pair(g).0,
                    first_absent_pair(g).1,
                    0.9,
                );
                let mut secs = Vec::with_capacity(repeats);
                let mut applied_count = None;
                for i in 0..repeats {
                    let mut clone = mule::Query::open_bytes(bytes.clone()).expect("reopen clone");
                    let start = Instant::now();
                    match clone.apply(&delta) {
                        Ok(()) => secs.push(start.elapsed().as_secs_f64()),
                        Err(e) => {
                            eprintln!("skip {name} α={alpha} delta-apply: {e}");
                            secs.clear();
                            break;
                        }
                    }
                    if i == 0 {
                        applied_count =
                            Some(clone.count().expect("unlimited run cannot be interrupted"));
                    }
                }
                if !secs.is_empty() {
                    let s = Summary::from_samples(&secs);
                    let applied_count = applied_count.unwrap();
                    table.row(&[
                        name.to_string(),
                        format!("{alpha}"),
                        "delta-apply".into(),
                        "1".into(),
                        s.display(),
                        applied_count.to_string(),
                    ]);
                    json.begin_obj();
                    json.key("graph").str_val(name);
                    json.key("n").int(g.num_vertices() as i64);
                    json.key("m").int(g.num_edges() as i64);
                    json.key("alpha").num(alpha);
                    json.key("algo").str_val("delta-apply");
                    json.key("threads").int(1);
                    json.key("cliques").int(applied_count as i64);
                    emit_counters(&mut json, &mule::EnumerationStats::new());
                    json.summary("time", &s);
                    json.end_obj();
                    eprintln!("done {name} α={alpha} delta-apply: {}", s.display());
                }
            }

            if args.get("prune-report").is_some() {
                // One extra, untimed prepare per point: the report is a
                // diagnostic artifact, deliberately kept out of the
                // timed region.
                let session = query_for(g, alpha, min_size, &mule_cfg)
                    .prepare()
                    .expect("valid alpha");
                prune_json.begin_obj();
                prune_json.key("graph").str_val(name);
                prune_json.key("alpha").num(alpha);
                prune_json.key("min_size").int(min_size as i64);
                for (field, value) in session.report().fields() {
                    prune_json.key(field).int(value as i64);
                }
                prune_json.end_obj();
            }

            // Parallel pipeline enumeration: the scheduler series (the
            // timed region includes the prepare stages, matching the
            // sequential rows' whole-query timing).
            for &threads in &thread_counts {
                let mut secs = Vec::with_capacity(repeats);
                let mut count = 0usize;
                let mut par_stats = mule::EnumerationStats::new();
                for _ in 0..repeats {
                    let start = Instant::now();
                    let mut session = query_for(g, alpha, min_size, &mule_cfg)
                        .threads(threads)
                        .prepare()
                        .expect("valid alpha");
                    let pairs = session
                        .collect()
                        .expect("unlimited run cannot be interrupted");
                    secs.push(start.elapsed().as_secs_f64());
                    count = pairs.len();
                    par_stats = *session.stats();
                }
                assert_eq!(count as u64, cliques, "parallel/sequential count mismatch");
                let s = Summary::from_samples(&secs);
                table.row(&[
                    name.to_string(),
                    format!("{alpha}"),
                    par_label.clone(),
                    threads.to_string(),
                    s.display(),
                    count.to_string(),
                ]);
                json.begin_obj();
                json.key("graph").str_val(name);
                json.key("n").int(g.num_vertices() as i64);
                json.key("m").int(g.num_edges() as i64);
                json.key("alpha").num(alpha);
                json.key("algo").str_val(&par_label);
                json.key("threads").int(threads as i64);
                json.key("cliques").int(count as i64);
                emit_counters(&mut json, &par_stats);
                json.summary("time", &s);
                json.end_obj();
                eprintln!(
                    "done {name} α={alpha} {par_label}×{threads}: {}",
                    s.display()
                );
            }
        }
    }
    json.end_arr();
    json.end_obj();
    prune_json.end_arr();

    table.emit(&harness::results_dir(), "headline-trajectory");
    let out_path = args
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| harness::results_dir().join("headline.json"));
    if let Some(dir) = out_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, json.finish()).expect("write JSON artifact");
    eprintln!("wrote {}", out_path.display());
    if let Some(path) = args.get("prune-report") {
        let path = std::path::PathBuf::from(path);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, prune_json.finish()).expect("write prune-report artifact");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = Args::parse(
        &[
            "seed",
            "scale",
            "dblp-scale",
            "timeout",
            "json",
            "out",
            "repeats",
            "min-size",
            "prune-report",
            "index-mode",
            "index-budget",
        ],
        USAGE,
    );
    if args.flag("json") {
        run_trajectory(&args);
        return;
    }
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let dblp_scale: f64 = args.get_or("dblp-scale", 0.1);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 120.0));
    // The index flags apply to this mode too (DFS–NOIP stays index-free
    // by design — see the harness docs).
    let mule_cfg = {
        let mut cfg = mule::MuleConfig::default();
        cfg.index_mode = args.get_or("index-mode", cfg.index_mode);
        cfg.dense_index_bytes = args.get_or("index-budget", cfg.dense_index_bytes);
        cfg
    };

    let mut report = Report::new(
        "Section 5 headline comparisons (paper ratio in last column)",
        &["comparison", "slow", "fast", "ratio", "paper"],
    );

    let mut add = |label: &str,
                   slow_algo: Algo,
                   fast_algo: Algo,
                   g: &ugraph_core::UncertainGraph,
                   alpha: f64,
                   paper: &str| {
        let fast = timed_run_with(fast_algo, g, alpha, budget, &mule_cfg);
        let slow = timed_run_with(slow_algo, g, alpha, budget, &mule_cfg);
        let ratio = slow.seconds / fast.seconds.max(1e-9);
        let ratio = if slow.timed_out {
            format!(">{ratio:.0}x")
        } else {
            format!("{ratio:.0}x")
        };
        report.row(&[
            label.to_string(),
            slow.display_time(),
            fast.display_time(),
            ratio,
            paper.to_string(),
        ]);
        eprintln!("done {label}");
    };

    let wiki = harness::dataset("wiki-vote", seed, scale);
    add(
        "wiki-vote α=0.9 NOIP/MULE",
        Algo::DfsNoip,
        Algo::Mule,
        &wiki,
        0.9,
        "64s/8s = 8x",
    );
    add(
        "wiki-vote α=1e-4 NOIP/MULE",
        Algo::DfsNoip,
        Algo::Mule,
        &wiki,
        1e-4,
        ">11h/114s > 350x",
    );
    let grqc = harness::dataset("ca-GrQc", seed, scale);
    add(
        "ca-GrQc α=1e-4 NOIP/MULE",
        Algo::DfsNoip,
        Algo::Mule,
        &grqc,
        1e-4,
        "4400s/25s = 176x",
    );
    add(
        "ca-GrQc α=1e-4 MULE/LARGE(t=6)",
        Algo::Mule,
        Algo::LargeMule(6),
        &grqc,
        1e-4,
        "125s/10s = 12x",
    );
    add(
        "ca-GrQc α=1e-4 MULE/LARGE(t=7)",
        Algo::Mule,
        Algo::LargeMule(7),
        &grqc,
        1e-4,
        "125s/6s = 21x",
    );
    let dblp = harness::dataset("DBLP10", seed, dblp_scale);
    // The paper's MULE pays Θ(n²) at the search root (Algorithm 1 seeds
    // Î with every vertex); our default MULE expands the root in closed
    // form and is as fast as LARGE–MULE here. The faithful cost model is
    // reproduced by the naive-root variant.
    add(
        "DBLP α=0.9 MULE(naive-root)/LARGE(t=3)",
        Algo::MuleNaiveRoot,
        Algo::LargeMule(3),
        &dblp,
        0.9,
        "76797s/32s = 2400x",
    );
    add(
        "DBLP α=0.9 MULE(naive-root)/MULE",
        Algo::MuleNaiveRoot,
        Algo::Mule,
        &dblp,
        0.9,
        "(root expansion: ours)",
    );

    report.emit(&harness::results_dir(), "headline");
}
