//! Regenerates **Figure 5**: LARGE–MULE runtime as a function of the size
//! threshold `t`.
//!
//! Panels: (a) BA10000, (b) ca-GrQc — α from 0.2 down to 10⁻⁴; (c) DBLP —
//! α from 0.9 down to 0.1 (the paper's per-panel α grids differ because
//! DBLP's co-authorship probabilities are concentrated near the low end).
//!
//! Expected shape (paper): runtime falls substantially as `t` grows — the
//! shared-neighborhood filter plus the `|C'|+|I'| < t` bound prune most of
//! the search. DBLP is the headline: MULE needs 76797 s for all maximal
//! cliques at α=0.9 while LARGE–MULE needs 32 s at t=3.
//!
//! DBLP defaults to `--dblp-scale 0.1` (68k vertices / 228k edges) so the
//! whole sweep runs in minutes; pass `--dblp-scale 1.0` for paper scale.
//!
//! Each point is timed `--repeats` times and reported as a
//! min/median/p95 summary; deadline hits are not repeated and marked
//! `>`.
//!
//! ```text
//! cargo run -p ugraph-bench --release --bin fig5 -- [--seed 42] [--scale 1.0] [--dblp-scale 0.1] [--timeout 120] [--repeats 3]
//! ```

use std::time::Duration;
use ugraph_bench::{harness, repeated_run, Algo, Args, Report};

const USAGE: &str = "fig5 — LARGE-MULE runtime vs size threshold (Figure 5)
options:
  --seed N         dataset seed (default 42)
  --scale X        scale for BA10000 / ca-GrQc (default 1.0)
  --dblp-scale X   scale for DBLP10 (default 0.1)
  --timeout S      per-run budget in seconds (default 120)
  --repeats N      timing samples per point (default 3)";

fn main() {
    let args = Args::parse(
        &["seed", "scale", "dblp-scale", "timeout", "repeats"],
        USAGE,
    );
    let seed: u64 = args.get_or("seed", 42);
    let scale: f64 = args.get_or("scale", 1.0);
    let dblp_scale: f64 = args.get_or("dblp-scale", 0.1);
    let repeats: usize = args.get_or("repeats", 3);
    let budget = Duration::from_secs_f64(args.get_or("timeout", 120.0));

    let small_alphas = [0.2, 0.1, 0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001];
    let dblp_alphas = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];

    type Panel<'a> = (
        &'a str,
        &'a str,
        f64,
        &'a [f64],
        std::ops::RangeInclusive<usize>,
    );
    let panels: [Panel; 3] = [
        ("a", "BA10000", scale, &small_alphas, 2..=7),
        ("b", "ca-GrQc", scale, &small_alphas, 2..=9),
        ("c", "DBLP10", dblp_scale, &dblp_alphas, 2..=8),
    ];

    for (panel, name, s, alphas, t_range) in panels {
        let g = harness::dataset(name, seed, s);
        let mut report = Report::new(
            format!(
                "Figure 5{panel}: LARGE-MULE runtime (s, min/median/p95 over {repeats} runs) vs t on {name} (scale {s})"
            ),
            &["alpha", "t", "runtime", "cliques", "calls"],
        );
        for &alpha in alphas {
            for t in t_range.clone() {
                let (r, summary) = repeated_run(Algo::LargeMule(t), &g, alpha, budget, repeats);
                let cell = summary.display_censored(r.timed_out);
                report.row(&[
                    format!("{alpha}"),
                    t.to_string(),
                    cell,
                    r.cliques.to_string(),
                    r.calls().to_string(),
                ]);
            }
            eprintln!("done {name} α={alpha}");
        }
        report.emit(&harness::results_dir(), &format!("fig5{panel}"));
    }
}
