//! A minimal `--key value` argument parser for the harness binaries.
//!
//! Hand-rolled because no CLI crate is on the offline dependency
//! allowlist. Supports `--key value`, `--key=value`, and bare `--flag`
//! switches; unknown keys abort with the binary's usage string so typos
//! never silently run the wrong experiment.

use std::collections::BTreeMap;

/// Parsed arguments: `--key value` pairs plus bare flags.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an explicit iterator (testable); `allowed` lists every
    /// recognized key/flag name (without the `--`).
    pub fn parse_from<I: IntoIterator<Item = String>>(
        argv: I,
        allowed: &[&str],
        usage: &str,
    ) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}\n{usage}"));
            };
            if name == "help" {
                return Err(usage.to_string());
            }
            let (key, inline) = match name.split_once('=') {
                Some((k, v)) => (k.to_string(), Some(v.to_string())),
                None => (name.to_string(), None),
            };
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown option --{key}\n{usage}"));
            }
            if let Some(v) = inline {
                out.values.insert(key, v);
            } else if iter.peek().is_some_and(|next| !next.starts_with("--")) {
                out.values.insert(key, iter.next().unwrap());
            } else {
                out.flags.push(key);
            }
        }
        Ok(out)
    }

    /// Parse the process arguments; prints the message and exits on error.
    pub fn parse(allowed: &[&str], usage: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1), allowed, usage) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// A string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// A parsed value with a default. Parse errors surface their own
    /// message (e.g. `IndexMode`'s "expected auto|always|never") before
    /// exiting.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            Some(s) => s.parse().unwrap_or_else(|e| {
                eprintln!("invalid value for --{key}: {s:?} ({e})");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    const ALLOWED: &[&str] = &["seed", "scale", "quick"];

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse_from(
            argv(&["--seed", "7", "--quick", "--scale=0.5"]),
            ALLOWED,
            "u",
        )
        .unwrap();
        assert_eq!(a.get_or("seed", 0u64), 7);
        assert_eq!(a.get_or("scale", 1.0f64), 0.5);
        assert!(a.flag("quick"));
        assert!(!a.flag("seed"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse_from(argv(&[]), ALLOWED, "u").unwrap();
        assert_eq!(a.get_or("seed", 42u64), 42);
        assert!(!a.flag("quick"));
    }

    #[test]
    fn unknown_key_rejected_with_usage() {
        let err = Args::parse_from(argv(&["--sede", "7"]), ALLOWED, "USAGE").unwrap_err();
        assert!(err.contains("USAGE"));
        assert!(err.contains("sede"));
    }

    #[test]
    fn positional_rejected() {
        assert!(Args::parse_from(argv(&["7"]), ALLOWED, "u").is_err());
    }

    #[test]
    fn help_returns_usage() {
        let err = Args::parse_from(argv(&["--help"]), ALLOWED, "USAGE").unwrap_err();
        assert_eq!(err, "USAGE");
    }

    #[test]
    fn flag_followed_by_option() {
        let a = Args::parse_from(argv(&["--quick", "--seed", "3"]), ALLOWED, "u").unwrap();
        assert!(a.flag("quick"));
        assert_eq!(a.get_or("seed", 0u64), 3);
    }
}
