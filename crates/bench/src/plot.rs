//! Terminal plots: log-scale scatter/line charts rendered in ASCII, so the
//! figure binaries can show the paper's curve shapes directly in the
//! terminal (pass `--plot` to any `figN` binary).
//!
//! Deliberately minimal: fixed-size character grid, log or linear axes,
//! one glyph per series, a legend, axis tick labels. Enough to eyeball
//! "who wins and where the curves bend" without leaving the shell.

use std::fmt::Write as _;

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (all values must be positive).
    Log,
}

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// An ASCII chart under construction.
pub struct AsciiPlot {
    title: String,
    x_scale: Scale,
    y_scale: Scale,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

/// Glyphs assigned to series in order.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl AsciiPlot {
    /// Start a chart. `width`/`height` are the plotting area in cells
    /// (axes and labels are added around it).
    pub fn new(title: impl Into<String>, x_scale: Scale, y_scale: Scale) -> Self {
        AsciiPlot {
            title: title.into(),
            x_scale,
            y_scale,
            width: 64,
            height: 20,
            series: Vec::new(),
        }
    }

    /// Override the plotting-area size.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 4, "plot area too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Add a series. Points with non-positive coordinates on a log axis
    /// are skipped (they have no finite position).
    pub fn series(mut self, name: impl Into<String>, points: &[(f64, f64)]) -> Self {
        self.series.push(Series {
            name: name.into(),
            points: points.to_vec(),
        });
        self
    }

    fn transform(scale: Scale, v: f64) -> Option<f64> {
        match scale {
            Scale::Linear => Some(v),
            Scale::Log => (v > 0.0).then(|| v.log10()),
        }
    }

    /// Render the chart to a string.
    pub fn render(&self) -> String {
        // Collect transformed points per series.
        type Transformed<'a> = (char, &'a str, Vec<(f64, f64)>);
        let mut t_series: Vec<Transformed> = Vec::new();
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[i % GLYPHS.len()];
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .filter_map(|&(x, y)| {
                    Some((
                        Self::transform(self.x_scale, x)?,
                        Self::transform(self.y_scale, y)?,
                    ))
                })
                .collect();
            for &(x, y) in &pts {
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
            t_series.push((glyph, &s.name, pts));
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if !min_x.is_finite() || !min_y.is_finite() {
            let _ = writeln!(out, "(no plottable points)");
            return out;
        }
        // Avoid zero ranges.
        if (max_x - min_x).abs() < 1e-12 {
            max_x = min_x + 1.0;
        }
        if (max_y - min_y).abs() < 1e-12 {
            max_y = min_y + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, _, pts) in &t_series {
            for &(x, y) in pts {
                let cx = ((x - min_x) / (max_x - min_x) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - min_y) / (max_y - min_y) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy; // y grows upward
                grid[row][cx] = *glyph;
            }
        }

        let y_label = |v: f64| -> String {
            match self.y_scale {
                Scale::Linear => format!("{v:.3}"),
                Scale::Log => format!("1e{v:.1}"),
            }
        };
        let top = y_label(max_y);
        let bottom = y_label(min_y);
        let label_w = top.len().max(bottom.len());
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{top:>label_w$}")
            } else if i == self.height - 1 {
                format!("{bottom:>label_w$}")
            } else {
                " ".repeat(label_w)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(label_w), "-".repeat(self.width));
        let x_lo = match self.x_scale {
            Scale::Linear => format!("{min_x:.3}"),
            Scale::Log => format!("1e{min_x:.1}"),
        };
        let x_hi = match self.x_scale {
            Scale::Linear => format!("{max_x:.3}"),
            Scale::Log => format!("1e{max_x:.1}"),
        };
        let pad = self.width.saturating_sub(x_lo.len() + x_hi.len());
        let _ = writeln!(
            out,
            "{} {x_lo}{}{x_hi}",
            " ".repeat(label_w),
            " ".repeat(pad)
        );
        for (glyph, name, _) in &t_series {
            let _ = writeln!(out, "{} {glyph} = {name}", " ".repeat(label_w));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_in_correct_corners() {
        let plot = AsciiPlot::new("t", Scale::Linear, Scale::Linear)
            .size(10, 5)
            .series("a", &[(0.0, 0.0), (1.0, 1.0)]);
        let text = plot.render();
        let lines: Vec<&str> = text.lines().collect();
        // Title, 5 grid rows, axis, x labels, legend.
        assert_eq!(lines[0], "t");
        // Top row contains the (1,1) point at the right edge.
        assert!(lines[1].ends_with('*'), "{text}");
        // Bottom grid row has the (0,0) point at the left edge.
        assert!(lines[5].contains("|*"), "{text}");
        assert!(text.contains("* = a"));
    }

    #[test]
    fn log_scale_labels() {
        let plot = AsciiPlot::new("log", Scale::Log, Scale::Log)
            .series("s", &[(0.001, 10.0), (1.0, 1000.0)]);
        let text = plot.render();
        assert!(text.contains("1e3.0"), "{text}");
        assert!(text.contains("1e-3.0"), "{text}");
    }

    #[test]
    fn log_scale_skips_nonpositive() {
        let plot =
            AsciiPlot::new("log", Scale::Log, Scale::Log).series("s", &[(0.0, 5.0), (-1.0, 5.0)]);
        assert!(plot.render().contains("no plottable points"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let plot = AsciiPlot::new("multi", Scale::Linear, Scale::Linear)
            .series("first", &[(0.0, 0.0)])
            .series("second", &[(1.0, 1.0)]);
        let text = plot.render();
        assert!(text.contains("* = first"));
        assert!(text.contains("o = second"));
    }

    #[test]
    fn degenerate_single_point() {
        let plot = AsciiPlot::new("pt", Scale::Linear, Scale::Linear).series("s", &[(3.0, 7.0)]);
        let text = plot.render();
        assert!(text.contains('*'));
    }

    #[test]
    #[should_panic]
    fn too_small_area_rejected() {
        let _ = AsciiPlot::new("x", Scale::Linear, Scale::Linear).size(2, 2);
    }
}
