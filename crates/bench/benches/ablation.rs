//! Ablations of MULE's design choices (DESIGN.md "Design choices"):
//!
//! 1. dense adjacency index vs galloping binary search for the
//!    GenerateI/GenerateX neighborhood filter;
//! 2. natural vertex order vs degeneracy relabeling;
//! 3. sequential vs parallel root fan-out.
//!
//! (Choice 1 of DESIGN.md — incremental factors vs recomputation — is the
//! MULE/DFS–NOIP comparison benched in `mule_vs_noip.rs`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mule::sinks::CountSink;
use mule::{par_enumerate_maximal_cliques, IndexMode, Mule, MuleConfig};
use ugraph_bench::harness::dataset;

fn bench_ablations(c: &mut Criterion) {
    let g = dataset("wiki-vote", 42, 0.1);
    let alpha = 0.001;

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    for (label, mode) in [
        ("index-dense", IndexMode::Always),
        ("index-gallop", IndexMode::Never),
    ] {
        group.bench_function(BenchmarkId::new("neighborhood", label), |b| {
            b.iter(|| {
                let cfg = MuleConfig {
                    index_mode: mode,
                    ..Default::default()
                };
                let mut m = Mule::with_config(&g, alpha, cfg).unwrap();
                let mut sink = CountSink::new();
                m.run(&mut sink);
                sink.count
            })
        });
    }

    for (label, degeneracy) in [("natural", false), ("degeneracy", true)] {
        group.bench_function(BenchmarkId::new("ordering", label), |b| {
            b.iter(|| {
                let cfg = MuleConfig {
                    degeneracy_order: degeneracy,
                    ..Default::default()
                };
                let mut m = Mule::with_config(&g, alpha, cfg).unwrap();
                let mut sink = CountSink::new();
                m.run(&mut sink);
                sink.count
            })
        });
    }

    // Root expansion ablation on a graph big enough for Θ(n²) to show.
    {
        let big = dataset("DBLP10", 42, 0.02);
        for (label, naive) in [("closed-form", false), ("naive", true)] {
            group.bench_function(BenchmarkId::new("root", label), |b| {
                b.iter(|| {
                    let cfg = MuleConfig {
                        naive_root: naive,
                        ..Default::default()
                    };
                    let mut m = Mule::with_config(&big, 0.5, cfg).unwrap();
                    let mut sink = CountSink::new();
                    m.run(&mut sink);
                    sink.count
                })
            });
        }
    }

    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    par_enumerate_maximal_cliques(&g, alpha, threads)
                        .unwrap()
                        .cliques
                        .len()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
