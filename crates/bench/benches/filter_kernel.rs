//! Micro-benchmarks for the enumeration hot path: the arena candidate
//! filter (via full MULE runs under the index strategies — the kernel
//! itself is crate-private), a direct sweep of the three intersection
//! strategies across `|src| / deg(u)` ratios and hit densities (the
//! numbers the kernel's adaptive dispatch constants are chosen from),
//! and the word-wise bitset primitives backing the membership tier.
//!
//! Run with `CRITERION_TSV_DIR=results cargo bench -p ugraph-bench
//! --bench filter_kernel` to also record the distributions as TSV.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mule::sinks::CountSink;
use mule::{IndexMode, Mule, MuleConfig};
use rand::seq::SliceRandom;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ugraph_core::intersect::gallop_search;
use ugraph_core::{BitSet, GraphBuilder, NeighborhoodIndex, UncertainGraph};

fn er_graph(n: usize, degree: usize, seed: u64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let p = degree as f64 / n as f64;
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>() * 0.7).unwrap();
            }
        }
    }
    b.build()
}

/// The candidate filter under both membership strategies: a whole MULE
/// run is dominated by `filter_candidates_into`, so this is the
/// end-to-end cost of the arena kernel per strategy.
fn bench_filter_paths(c: &mut Criterion) {
    let g = er_graph(1200, 40, 42);
    let mut group = c.benchmark_group("filter");
    group.sample_size(10);
    for (label, mode) in [
        ("dense-index", IndexMode::Always),
        ("gallop-csr", IndexMode::Never),
    ] {
        group.bench_function(BenchmarkId::new(label, "ER1200"), |b| {
            let cfg = MuleConfig {
                index_mode: mode,
                ..Default::default()
            };
            let mut m = Mule::with_config(&g, 0.2, cfg).unwrap();
            b.iter(|| {
                let mut sink = CountSink::new();
                m.run(&mut sink);
                sink.count
            });
        });
    }
    group.finish();
}

/// Direct sweep of the intersection strategies over one neighborhood
/// row: `dense` (one load per candidate into the dense probability
/// row), `bitset-gallop` (membership-tier probe + CSR gallop on hits),
/// `gallop` (CSR gallop per candidate, the index-free fallback) and
/// `merge` (linear two-pointer). Swept across `|src| / deg(u)` ratios
/// and candidate hit densities; the TSV rows back the kernel's
/// `MERGE_FACTOR` and the dense tier's degree floor with measured
/// crossovers instead of guesses.
fn bench_intersect_strategies(c: &mut Criterion) {
    const N: usize = 4096;
    const DEG: usize = 1024;
    let mut rng = SmallRng::seed_from_u64(99);
    // A hub of degree DEG over an N-vertex universe; the real index
    // built on it supplies the dense row and the membership row the
    // kernel would use.
    let mut neighbors: Vec<u32> = {
        let mut pool: Vec<u32> = (1..N as u32).collect();
        pool.shuffle(&mut rng);
        pool.truncate(DEG);
        pool.sort_unstable();
        pool
    };
    neighbors.dedup();
    let mut b = GraphBuilder::new(N);
    for &v in &neighbors {
        b.add_edge(0, v, 1.0 - rng.gen::<f64>() * 0.7).unwrap();
    }
    let g = b.build();
    let idx = NeighborhoodIndex::build(&g, usize::MAX);
    let dense_row = idx.dense_row(0).expect("hub clears the dense floor");
    let member_row = idx.row(0);
    let nbrs = g.neighbors(0);
    let probs = g.neighbor_probs(0);

    let mut group = c.benchmark_group("intersect");
    group.sample_size(60);
    for ratio_denom in [64usize, 16, 4, 1] {
        for hit_pct in [10usize, 50, 90] {
            let s = (DEG / ratio_denom).max(1);
            // Candidate span: `s` sorted vertices, ~hit_pct% of them
            // neighbors of the hub (drawn without replacement).
            let mut rng = SmallRng::seed_from_u64(7 * ratio_denom as u64 + hit_pct as u64);
            let hits = (s * hit_pct / 100).min(neighbors.len());
            let mut src_ids: Vec<u32> = {
                let mut from_nbrs = neighbors.clone();
                from_nbrs.shuffle(&mut rng);
                from_nbrs.truncate(hits);
                from_nbrs
            };
            // Pad with non-neighbors only, so the realized hit density
            // matches the label (random pads would be hub neighbors
            // ~DEG/N of the time and silently inflate it).
            while src_ids.len() < s {
                let v = rng.gen_range(1..N as u32);
                if neighbors.binary_search(&v).is_err() && !src_ids.contains(&v) {
                    src_ids.push(v);
                }
            }
            src_ids.sort_unstable();
            let src: Vec<(u32, f64)> = src_ids.iter().map(|&v| (v, 0.9)).collect();
            let tag = format!("s{s}_hit{hit_pct}");

            group.bench_function(BenchmarkId::new("dense", &tag), |bch| {
                bch.iter(|| {
                    let mut acc = 0.0f64;
                    for &(w, r) in black_box(&src) {
                        let p = dense_row[w as usize];
                        if p > 0.0 {
                            acc += r * p;
                        }
                    }
                    acc
                });
            });
            group.bench_function(BenchmarkId::new("bitset-gallop", &tag), |bch| {
                bch.iter(|| {
                    let mut acc = 0.0f64;
                    let mut lo = 0usize;
                    for &(w, r) in black_box(&src) {
                        if member_row.contains(w as usize) {
                            let j = gallop_search(nbrs, lo, w).expect("row and CSR agree");
                            acc += r * probs[j];
                            lo = j + 1;
                        }
                    }
                    acc
                });
            });
            group.bench_function(BenchmarkId::new("gallop", &tag), |bch| {
                bch.iter(|| {
                    let mut acc = 0.0f64;
                    let mut lo = 0usize;
                    for &(w, r) in black_box(&src) {
                        if lo >= nbrs.len() {
                            break;
                        }
                        match gallop_search(nbrs, lo, w) {
                            Ok(j) => {
                                acc += r * probs[j];
                                lo = j + 1;
                            }
                            Err(j) => lo = j,
                        }
                    }
                    acc
                });
            });
            group.bench_function(BenchmarkId::new("merge", &tag), |bch| {
                bch.iter(|| {
                    let mut acc = 0.0f64;
                    let mut j = 0usize;
                    for &(w, r) in black_box(&src) {
                        while j < nbrs.len() && nbrs[j] < w {
                            j += 1;
                        }
                        if j >= nbrs.len() {
                            break;
                        }
                        if nbrs[j] == w {
                            acc += r * probs[j];
                            j += 1;
                        }
                    }
                    acc
                });
            });
        }
    }
    group.finish();
}

/// The new allocation-free bitset intersection vs the clone-based one it
/// replaces, plus the masked iterator vs materialize-then-iterate.
fn bench_bitset_primitives(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let len = 4096;
    let a = BitSet::from_iter_with_len(len, (0..len).filter(|_| rng.gen::<f64>() < 0.3));
    let b_set = BitSet::from_iter_with_len(len, (0..len).filter(|_| rng.gen::<f64>() < 0.3));
    let mut group = c.benchmark_group("bitset");
    group.sample_size(200);
    group.bench_function("clone_intersect", |bch| {
        bch.iter(|| {
            let mut out = a.clone();
            out.intersect_with(&b_set);
            out.count()
        });
    });
    group.bench_function("intersect_into", |bch| {
        let mut out = BitSet::new(len);
        bch.iter(|| {
            a.intersect_into(&b_set, &mut out);
            out.count()
        });
    });
    group.bench_function("iter_and", |bch| {
        bch.iter(|| black_box(&a).iter_and(black_box(&b_set)).sum::<usize>());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_paths,
    bench_intersect_strategies,
    bench_bitset_primitives
);
criterion_main!(benches);
