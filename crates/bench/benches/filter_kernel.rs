//! Micro-benchmarks for the enumeration hot path: the arena candidate
//! filter (via full MULE runs under both membership strategies — the
//! kernel itself is crate-private) and the word-wise bitset primitives
//! backing the dense index.
//!
//! Run with `CRITERION_TSV_DIR=results cargo bench -p ugraph-bench
//! --bench filter_kernel` to also record the distributions as TSV.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mule::sinks::CountSink;
use mule::{IndexMode, Mule, MuleConfig};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ugraph_core::{BitSet, GraphBuilder, UncertainGraph};

fn er_graph(n: usize, degree: usize, seed: u64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let p = degree as f64 / n as f64;
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>() * 0.7).unwrap();
            }
        }
    }
    b.build()
}

/// The candidate filter under both membership strategies: a whole MULE
/// run is dominated by `filter_candidates_into`, so this is the
/// end-to-end cost of the arena kernel per strategy.
fn bench_filter_paths(c: &mut Criterion) {
    let g = er_graph(1200, 40, 42);
    let mut group = c.benchmark_group("filter");
    group.sample_size(10);
    for (label, mode) in [
        ("dense-index", IndexMode::Always),
        ("gallop-csr", IndexMode::Never),
    ] {
        group.bench_function(BenchmarkId::new(label, "ER1200"), |b| {
            let cfg = MuleConfig {
                index_mode: mode,
                ..Default::default()
            };
            let mut m = Mule::with_config(&g, 0.2, cfg).unwrap();
            b.iter(|| {
                let mut sink = CountSink::new();
                m.run(&mut sink);
                sink.count
            });
        });
    }
    group.finish();
}

/// The new allocation-free bitset intersection vs the clone-based one it
/// replaces, plus the masked iterator vs materialize-then-iterate.
fn bench_bitset_primitives(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let len = 4096;
    let a = BitSet::from_iter_with_len(len, (0..len).filter(|_| rng.gen::<f64>() < 0.3));
    let b_set = BitSet::from_iter_with_len(len, (0..len).filter(|_| rng.gen::<f64>() < 0.3));
    let mut group = c.benchmark_group("bitset");
    group.sample_size(200);
    group.bench_function("clone_intersect", |bch| {
        bch.iter(|| {
            let mut out = a.clone();
            out.intersect_with(&b_set);
            out.count()
        });
    });
    group.bench_function("intersect_into", |bch| {
        let mut out = BitSet::new(len);
        bch.iter(|| {
            a.intersect_into(&b_set, &mut out);
            out.count()
        });
    });
    group.bench_function("iter_and", |bch| {
        bch.iter(|| black_box(&a).iter_and(black_box(&b_set)).sum::<usize>());
    });
    group.finish();
}

criterion_group!(benches, bench_filter_paths, bench_bitset_primitives);
criterion_main!(benches);
