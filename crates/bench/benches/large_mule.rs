//! Criterion micro-form of Figures 5–6: LARGE–MULE across the size
//! threshold `t`, against full MULE as the reference point.
//!
//! Expected: cost falls steeply with `t` (the Figure 5 shape), most
//! dramatically on the DBLP-style projection graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ugraph_bench::harness::{dataset, timed_run, Algo};

fn bench_large_mule(c: &mut Criterion) {
    let budget = Duration::from_secs(30);
    let mut group = c.benchmark_group("fig5_micro");
    group.sample_size(10);
    for (name, alpha) in [("ca-GrQc", 0.001), ("DBLP10", 0.3)] {
        let g = dataset(name, 42, 0.05);
        group.bench_function(BenchmarkId::new(format!("{name}/full-mule"), alpha), |b| {
            b.iter(|| timed_run(Algo::Mule, &g, alpha, budget))
        });
        for t in [3usize, 5, 7] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/large-mule"), t),
                &t,
                |b, &t| b.iter(|| timed_run(Algo::LargeMule(t), &g, alpha, budget)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_large_mule);
criterion_main!(benches);
