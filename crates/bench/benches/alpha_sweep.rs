//! Criterion micro-form of Figures 2–3: MULE runtime across the α grid on
//! a BA graph and a collaboration projection.
//!
//! Expected: monotone decrease in time as α grows (the Figure 2 shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ugraph_bench::harness::{dataset, timed_run, Algo};

fn bench_alpha_sweep(c: &mut Criterion) {
    let budget = Duration::from_secs(30);
    let mut group = c.benchmark_group("fig2_micro");
    group.sample_size(10);
    for name in ["BA10000", "ca-GrQc"] {
        let g = dataset(name, 42, 0.1);
        for alpha in [0.0001, 0.001, 0.01, 0.1, 0.9] {
            group.bench_with_input(BenchmarkId::new(name, alpha), &alpha, |b, &alpha| {
                b.iter(|| timed_run(Algo::Mule, &g, alpha, budget))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_alpha_sweep);
criterion_main!(benches);
