//! Scheduler benchmark: sequential MULE vs the work-stealing parallel
//! driver at several thread counts, on a deliberately *skewed* input
//! (hub vertices own most of the search tree) — the shape that stalls a
//! bare atomic-cursor fan-out and that largest-degree-first seeding plus
//! stealing is built for.
//!
//! On a single-core host the parallel rows measure scheduling overhead
//! only; on multi-core hosts they measure the actual speedup. Either
//! way the output is byte-identical to sequential (asserted here too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mule::sinks::CountSink;
use mule::{par_enumerate_maximal_cliques, Mule};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ugraph_core::{GraphBuilder, UncertainGraph};

/// A few dense hubs over a sparse periphery: root subtree costs differ
/// by orders of magnitude.
fn skewed_graph(n: usize, hubs: usize, seed: u64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for h in 0..hubs as u32 {
        for v in (h + 1)..n as u32 {
            if rng.gen::<f64>() < 0.5 {
                b.add_edge(h, v, 0.95).unwrap();
            }
        }
    }
    for u in hubs as u32..n as u32 {
        for v in (u + 1)..(u + 4).min(n as u32) {
            if rng.gen::<f64>() < 0.3 {
                b.add_edge(u, v, 0.9).unwrap();
            }
        }
    }
    b.build()
}

fn bench_scheduler(c: &mut Criterion) {
    let g = skewed_graph(1500, 6, 11);
    let alpha = 0.05;
    let expected = {
        let mut m = Mule::new(&g, alpha).unwrap();
        let mut sink = CountSink::new();
        m.run(&mut sink);
        sink.count
    };
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let mut m = Mule::new(&g, alpha).unwrap();
        b.iter(|| {
            let mut sink = CountSink::new();
            m.run(&mut sink);
            sink.count
        });
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("work-stealing", threads), |b| {
            b.iter(|| {
                let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
                assert_eq!(out.cliques.len() as u64, expected);
                out.cliques.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
