//! Criterion micro-form of Figure 1: MULE vs DFS–NOIP on scaled-down
//! Table 1 stand-ins, at a high and a low α.
//!
//! The paper's qualitative claim under measurement: incremental
//! probability maintenance beats per-candidate recomputation by one to
//! several orders of magnitude, and the gap widens as α shrinks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ugraph_bench::harness::{dataset, timed_run, Algo};

fn bench_mule_vs_noip(c: &mut Criterion) {
    let budget = Duration::from_secs(30);
    let mut group = c.benchmark_group("fig1_micro");
    group.sample_size(10);
    for name in ["wiki-vote", "BA5000", "ca-GrQc", "Fruit-Fly"] {
        // 10% scale keeps DFS–NOIP inside a criterion-friendly envelope.
        let g = dataset(name, 42, 0.1);
        for alpha in [0.9, 0.001] {
            group.bench_with_input(
                BenchmarkId::new(format!("mule/{name}"), alpha),
                &alpha,
                |b, &alpha| b.iter(|| timed_run(Algo::Mule, &g, alpha, budget)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("noip/{name}"), alpha),
                &alpha,
                |b, &alpha| b.iter(|| timed_run(Algo::DfsNoip, &g, alpha, budget)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mule_vs_noip);
criterion_main!(benches);
