//! Plain-text edge-list formats.
//!
//! Two dialects:
//!
//! * **probabilistic edge list** — one `u v p` triple per line, the native
//!   interchange format for uncertain graphs (what the PPI/DBLP datasets
//!   the paper used look like after preprocessing);
//! * **SNAP edge list** — `u v` pairs as published by the Stanford Large
//!   Network Collection; read with a caller-supplied probability assigner,
//!   reproducing the paper's "probabilities assigned uniformly at random"
//!   semi-synthetic construction.
//!
//! Both readers accept `#`-prefixed comment lines and blank lines, remap
//! arbitrary non-contiguous vertex ids to dense `0..n`, fold duplicate
//! edges by a [`DuplicatePolicy`], and report malformed input with line
//! numbers.

use std::io::{BufRead, Write};
use ugraph_core::{DuplicatePolicy, GraphBuilder, UncertainGraph, VertexId};

/// Errors from the text readers.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that does not match the expected shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Graph-level violation (self-loop, bad probability, …).
    Graph {
        /// 1-based line number.
        line: usize,
        /// The underlying graph error.
        source: ugraph_core::GraphError,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::Graph { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Graph { source, .. } => Some(source),
            ParseError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Remaps sparse external ids to dense internal ids.
#[derive(Default)]
struct IdMap {
    map: std::collections::HashMap<u64, VertexId>,
    originals: Vec<u64>,
}

impl IdMap {
    fn intern(&mut self, raw: u64) -> VertexId {
        *self.map.entry(raw).or_insert_with(|| {
            let id = self.originals.len() as VertexId;
            self.originals.push(raw);
            id
        })
    }
}

/// Result of reading a text graph: the graph plus the original vertex
/// labels (`original_ids[internal] = external`).
#[derive(Debug)]
pub struct LoadedGraph {
    /// The parsed uncertain graph with dense vertex ids.
    pub graph: UncertainGraph,
    /// External label of each internal vertex id.
    pub original_ids: Vec<u64>,
}

/// Read a probabilistic edge list (`u v p` per line).
pub fn read_prob_edgelist<R: BufRead>(
    reader: R,
    policy: DuplicatePolicy,
) -> Result<LoadedGraph, ParseError> {
    let mut ids = IdMap::default();
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v, p) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), Some(p), None) => (u, v, p),
            _ => {
                return Err(ParseError::Malformed {
                    line: lineno,
                    reason: format!("expected `u v p`, got {trimmed:?}"),
                })
            }
        };
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| ParseError::Malformed {
                line: lineno,
                reason: format!("{what} {s:?} is not an unsigned integer"),
            })
        };
        let u = parse_u64(u, "vertex")?;
        let v = parse_u64(v, "vertex")?;
        let p: f64 = p.parse().map_err(|_| ParseError::Malformed {
            line: lineno,
            reason: format!("probability {p:?} is not a number"),
        })?;
        let (ui, vi) = (ids.intern(u), ids.intern(v));
        edges.push((ui, vi, p));
        // Remember the line for graph-level error reporting below.
        if edges.len() != lineno {
            // Lines and edges diverge because of comments; tolerate by
            // reporting the *current* line on failure instead (handled in
            // the build loop by carrying lineno).
        }
    }
    build_from(ids, edges, policy)
}

/// Read a SNAP-style edge list (`u v` per line), assigning each *distinct
/// undirected* edge a probability from `assign` (called once per surviving
/// edge, in input order of first occurrence). SNAP files are directed;
/// reciprocal pairs fold into one undirected edge.
pub fn read_snap_edgelist<R: BufRead, F: FnMut() -> f64>(
    reader: R,
    mut assign: F,
) -> Result<LoadedGraph, ParseError> {
    let mut ids = IdMap::default();
    let mut seen = std::collections::HashSet::new();
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(ParseError::Malformed {
                    line: lineno,
                    reason: format!("expected `u v`, got {trimmed:?}"),
                })
            }
        };
        let parse = |s: &str| {
            s.parse::<u64>().map_err(|_| ParseError::Malformed {
                line: lineno,
                reason: format!("vertex {s:?} is not an unsigned integer"),
            })
        };
        let (u, v) = (parse(u)?, parse(v)?);
        if u == v {
            continue; // SNAP files occasionally carry self-loops; drop them
        }
        let (ui, vi) = (ids.intern(u), ids.intern(v));
        let key = if ui < vi { (ui, vi) } else { (vi, ui) };
        if seen.insert(key) {
            edges.push((key.0, key.1, assign()));
        }
    }
    build_from(ids, edges, DuplicatePolicy::Error)
}

fn build_from(
    ids: IdMap,
    edges: Vec<(VertexId, VertexId, f64)>,
    policy: DuplicatePolicy,
) -> Result<LoadedGraph, ParseError> {
    let n = ids.originals.len();
    let mut b = GraphBuilder::with_capacity(n, edges.len()).duplicate_policy(policy);
    for (i, (u, v, p)) in edges.into_iter().enumerate() {
        b.add_edge(u, v, p).map_err(|source| ParseError::Graph {
            line: i + 1,
            source,
        })?;
    }
    let graph = b
        .try_build()
        .map_err(|source| ParseError::Graph { line: 0, source })?;
    Ok(LoadedGraph {
        graph,
        original_ids: ids.originals,
    })
}

/// Write a probabilistic edge list (`u v p` per line, full `f64`
/// round-trip precision), preceded by a comment header with `n`, `m` and
/// the dataset name.
pub fn write_prob_edgelist<W: Write>(g: &UncertainGraph, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "# uncertain graph{}{} n={} m={}",
        if g.name().is_empty() { "" } else { " " },
        g.name(),
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v, p) in g.edges() {
        // `{:?}` on f64 prints the shortest representation that round-trips.
        writeln!(w, "{u} {v} {p:?}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use ugraph_core::builder::from_edges;

    #[test]
    fn round_trip_preserves_graph() {
        let g = from_edges(4, &[(0, 1, 0.5), (1, 2, 0.123456789012345), (2, 3, 1.0)])
            .unwrap()
            .with_name("rt");
        let mut buf = Vec::new();
        write_prob_edgelist(&g, &mut buf).unwrap();
        let loaded = read_prob_edgelist(Cursor::new(buf), DuplicatePolicy::Error).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 4);
        assert_eq!(loaded.graph.num_edges(), 3);
        for (u, v, p) in g.edges() {
            // Internal ids may be permuted; translate through original_ids.
            let iu = loaded
                .original_ids
                .iter()
                .position(|&x| x == u as u64)
                .unwrap();
            let iv = loaded
                .original_ids
                .iter()
                .position(|&x| x == v as u64)
                .unwrap();
            assert_eq!(
                loaded.graph.edge_prob_raw(iu as u32, iv as u32),
                Some(p),
                "edge ({u},{v})"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0 1 0.5\n   \n# more\n1 2 0.25\n";
        let loaded = read_prob_edgelist(Cursor::new(text), DuplicatePolicy::Error).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
    }

    #[test]
    fn sparse_ids_are_remapped_densely() {
        let text = "1000000 5 0.5\n5 999 0.25\n";
        let loaded = read_prob_edgelist(Cursor::new(text), DuplicatePolicy::Error).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.original_ids, vec![1000000, 5, 999]);
        assert_eq!(loaded.graph.edge_prob_raw(0, 1), Some(0.5));
    }

    #[test]
    fn malformed_lines_reported_with_numbers() {
        let err =
            read_prob_edgelist(Cursor::new("0 1 0.5\n0 1\n"), DuplicatePolicy::Error).unwrap_err();
        match err {
            ParseError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        let err = read_prob_edgelist(Cursor::new("0 x 0.5\n"), DuplicatePolicy::Error).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }));
        let err =
            read_prob_edgelist(Cursor::new("0 1 banana\n"), DuplicatePolicy::Error).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn graph_errors_surface() {
        let err = read_prob_edgelist(Cursor::new("7 7 0.5\n"), DuplicatePolicy::Error).unwrap_err();
        assert!(matches!(err, ParseError::Graph { .. }));
        let err = read_prob_edgelist(Cursor::new("0 1 1.5\n"), DuplicatePolicy::Error).unwrap_err();
        assert!(matches!(err, ParseError::Graph { .. }));
    }

    #[test]
    fn duplicate_policy_applies() {
        let text = "0 1 0.5\n1 0 0.75\n";
        assert!(read_prob_edgelist(Cursor::new(text), DuplicatePolicy::Error).is_err());
        let loaded = read_prob_edgelist(Cursor::new(text), DuplicatePolicy::KeepMax).unwrap();
        assert_eq!(loaded.graph.edge_prob_raw(0, 1), Some(0.75));
    }

    #[test]
    fn snap_reader_assigns_and_folds_reciprocals() {
        let text = "# Directed graph\n10 20\n20 10\n20 30\n30 30\n";
        let mut next = 0.0;
        let loaded = read_snap_edgelist(Cursor::new(text), || {
            next += 0.25;
            next
        })
        .unwrap();
        // 10–20 folded once, 20–30 once, self-loop dropped.
        assert_eq!(loaded.graph.num_edges(), 2);
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.edge_prob_raw(0, 1), Some(0.25));
        assert_eq!(loaded.graph.edge_prob_raw(1, 2), Some(0.5));
    }

    #[test]
    fn snap_malformed_line() {
        let err = read_snap_edgelist(Cursor::new("1 2 3\n"), || 0.5).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_prob_edgelist(Cursor::new("0 1\n"), DuplicatePolicy::Error).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
