//! Text format for enumerated clique lists.
//!
//! One clique per line: the clique probability followed by the sorted
//! vertex ids, whitespace-separated —
//!
//! ```text
//! # alpha=0.5 count=2
//! 0.729 0 1 2
//! 0.6 2 3
//! ```
//!
//! This is the interchange point between the CLI / harness and external
//! analysis (plotting, diffing two runs, feeding a verifier).

use std::io::{BufRead, Write};
use ugraph_core::VertexId;

/// Errors from the clique-list reader.
#[derive(Debug)]
pub enum CliqueListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that does not parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for CliqueListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliqueListError::Io(e) => write!(f, "I/O error: {e}"),
            CliqueListError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CliqueListError {}

impl From<std::io::Error> for CliqueListError {
    fn from(e: std::io::Error) -> Self {
        CliqueListError::Io(e)
    }
}

/// Write cliques with their probabilities, preceded by a header comment.
pub fn write_clique_list<W: Write>(
    mut w: W,
    alpha: f64,
    cliques: &[(Vec<VertexId>, f64)],
) -> std::io::Result<()> {
    writeln!(w, "# alpha={alpha} count={}", cliques.len())?;
    for (c, p) in cliques {
        write!(w, "{p:?}")?;
        for v in c {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a clique list written by [`write_clique_list`] (comments and blank
/// lines are skipped; vertex ids are validated to be sorted).
pub fn read_clique_list<R: BufRead>(
    reader: R,
) -> Result<Vec<(Vec<VertexId>, f64)>, CliqueListError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let prob: f64 = parts
            .next()
            .expect("split of non-empty line yields at least one token")
            .parse()
            .map_err(|_| CliqueListError::Malformed {
                line: lineno,
                reason: "first token must be the clique probability".into(),
            })?;
        if !(prob > 0.0 && prob <= 1.0) {
            return Err(CliqueListError::Malformed {
                line: lineno,
                reason: format!("probability {prob} out of (0, 1]"),
            });
        }
        let mut clique = Vec::new();
        for tok in parts {
            let v: VertexId = tok.parse().map_err(|_| CliqueListError::Malformed {
                line: lineno,
                reason: format!("vertex {tok:?} is not an unsigned integer"),
            })?;
            clique.push(v);
        }
        if !clique.windows(2).all(|w| w[0] < w[1]) {
            return Err(CliqueListError::Malformed {
                line: lineno,
                reason: "vertex ids must be strictly increasing".into(),
            });
        }
        out.push((clique, prob));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let cliques = vec![(vec![0, 1, 2], 0.729), (vec![2, 3], 0.6), (vec![7], 1.0)];
        let mut buf = Vec::new();
        write_clique_list(&mut buf, 0.5, &cliques).unwrap();
        let back = read_clique_list(Cursor::new(buf)).unwrap();
        assert_eq!(back, cliques);
    }

    #[test]
    fn empty_list_round_trips() {
        let mut buf = Vec::new();
        write_clique_list(&mut buf, 0.5, &[]).unwrap();
        assert!(read_clique_list(Cursor::new(buf)).unwrap().is_empty());
    }

    #[test]
    fn full_precision_probabilities() {
        let cliques = vec![(vec![0, 1], 0.123_456_789_012_345_68)];
        let mut buf = Vec::new();
        write_clique_list(&mut buf, 0.5, &cliques).unwrap();
        let back = read_clique_list(Cursor::new(buf)).unwrap();
        assert_eq!(back[0].1, cliques[0].1); // bit-exact via {:?}
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, what) in [
            ("abc 1 2\n", "bad prob"),
            ("0.5 1 x\n", "bad vertex"),
            ("1.5 1 2\n", "prob out of range"),
            ("0.5 2 1\n", "unsorted"),
            ("0.5 1 1\n", "duplicate vertex"),
        ] {
            assert!(
                read_clique_list(Cursor::new(text)).is_err(),
                "{what}: {text:?}"
            );
        }
    }

    #[test]
    fn empty_clique_line_is_probability_only() {
        // The empty clique (maximal in the empty graph) serializes as a
        // bare probability.
        let back = read_clique_list(Cursor::new("1.0\n")).unwrap();
        assert_eq!(back, vec![(vec![], 1.0)]);
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = read_clique_list(Cursor::new("0.5 1 2\nbogus\n")).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
