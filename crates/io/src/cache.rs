//! Filesystem cache for generated datasets.
//!
//! The benchmark harness synthesizes the Table 1 stand-ins once per
//! `(name, seed, scale)` and caches them as UGB1 files, so figure sweeps
//! do not pay generation cost repeatedly.

use crate::binfmt::{read_binary, write_binary, BinError};
use std::fs;
use std::path::{Path, PathBuf};
use ugraph_core::UncertainGraph;

/// Cache key → stable file name (`{label}.ugb`); label is sanitized to
/// keep the cache portable across filesystems.
pub fn cache_path(dir: &Path, label: &str) -> PathBuf {
    let safe: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}.ugb"))
}

/// Load from cache or build and store. Any cache read/write failure falls
/// back to (re)building — the cache is an optimization, never a
/// correctness dependency.
pub fn load_or_build<F: FnOnce() -> UncertainGraph>(
    dir: &Path,
    label: &str,
    build: F,
) -> UncertainGraph {
    let path = cache_path(dir, label);
    if let Ok(file) = fs::File::open(&path) {
        match read_binary(std::io::BufReader::new(file)) {
            Ok(g) => return g,
            Err(BinError::Corrupt(why)) => {
                eprintln!("warning: discarding corrupt cache {path:?}: {why}");
                let _ = fs::remove_file(&path);
            }
            Err(BinError::Io(_)) => {}
        }
    }
    let g = build();
    if fs::create_dir_all(dir).is_ok() {
        if let Ok(file) = fs::File::create(&path) {
            let _ = write_binary(&g, std::io::BufWriter::new(file));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_core::builder::from_edges;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ugraph-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fixture() -> UncertainGraph {
        from_edges(3, &[(0, 1, 0.5), (1, 2, 0.25)])
            .unwrap()
            .with_name("c")
    }

    #[test]
    fn builds_then_hits_cache() {
        let dir = tmp_dir("hit");
        let mut builds = 0;
        let g1 = load_or_build(&dir, "fix", || {
            builds += 1;
            fixture()
        });
        let g2 = load_or_build(&dir, "fix", || {
            builds += 1;
            fixture()
        });
        assert_eq!(builds, 1, "second load must come from cache");
        assert_eq!(g1, g2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_is_rebuilt() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(cache_path(&dir, "bad"), b"garbage").unwrap();
        let g = load_or_build(&dir, "bad", fixture);
        assert_eq!(g, fixture());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn labels_are_sanitized() {
        let p = cache_path(Path::new("/tmp"), "DBLP10@0.1/evil");
        let s = p.to_string_lossy();
        assert!(!s[5..].contains('/'), "{s}");
        assert!(!s.contains('@'));
    }
}
