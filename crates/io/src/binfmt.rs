//! Compact binary graph format ("UGB1").
//!
//! Dataset stand-ins at full paper scale (DBLP: 2.28M edges) take a while
//! to synthesize; the binary cache makes re-runs instant. Layout (all
//! little-endian):
//!
//! ```text
//! magic   4 bytes  "UGB1"
//! name    u32 length + UTF-8 bytes
//! n       u64
//! m       u64
//! edges   m × (u32 u, u32 v, f64 p), u < v, lexicographic order
//! ```
//!
//! The reader validates the magic, bounds, ordering and probabilities, so
//! a truncated or corrupted file fails loudly instead of producing a
//! malformed graph. (Hand-rolled rather than a serde format because no
//! serde serializer crate is on the offline allowlist — see DESIGN.md.)

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use ugraph_core::{GraphBuilder, UncertainGraph};

const MAGIC: &[u8; 4] = b"UGB1";

/// How many vertices beyond the edge-justified bound (`2·m`, every
/// endpoint distinct) a header may claim before the reader calls it
/// hostile. Real datasets carry some isolated vertices (sampled
/// generators leave gaps in the id space), but a tiny file claiming
/// billions of vertices is an allocation attack, not a graph: `n` is
/// read *before* the edge payload exists, and building the CSR costs
/// `O(n)` memory, so the reader must bound `n` by something the file's
/// own size justifies. 4M spare vertices caps the damage of a
/// minimal hostile file at a few tens of MB while clearing every
/// paper-scale dataset by orders of magnitude.
pub const EDGELESS_VERTEX_ALLOWANCE: usize = 1 << 22;

/// Errors from the binary reader.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content.
    Corrupt(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::Corrupt(why) => write!(f, "corrupt UGB1 data: {why}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

/// Serialize a graph to the UGB1 byte layout.
pub fn to_bytes(g: &UncertainGraph) -> Bytes {
    let name = g.name().as_bytes();
    let mut buf = BytesMut::with_capacity(4 + 4 + name.len() + 16 + g.num_edges() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    for (u, v, p) in g.edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
        buf.put_f64_le(p);
    }
    buf.freeze()
}

/// Deserialize a graph from UGB1 bytes.
pub fn from_bytes(mut data: Bytes) -> Result<UncertainGraph, BinError> {
    let need = |data: &Bytes, n: usize, what: &str| {
        if data.remaining() < n {
            Err(BinError::Corrupt(format!("truncated while reading {what}")))
        } else {
            Ok(())
        }
    };
    need(&data, 4, "magic")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(BinError::Corrupt(format!("bad magic {magic:?}")));
    }
    need(&data, 4, "name length")?;
    let name_len = data.get_u32_le() as usize;
    need(&data, name_len, "name")?;
    let name_bytes = data.copy_to_bytes(name_len);
    let name = std::str::from_utf8(&name_bytes)
        .map_err(|_| BinError::Corrupt("name is not UTF-8".into()))?
        .to_string();
    need(&data, 16, "header counts")?;
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    if n > u32::MAX as usize {
        return Err(BinError::Corrupt(format!("vertex count {n} exceeds u32")));
    }
    need(
        &data,
        m.checked_mul(16)
            .ok_or_else(|| BinError::Corrupt("edge count overflow".into()))?,
        "edges",
    )?;
    // Length sanity *before* allocation: `m` is now bounded by the real
    // payload, but `n` is a bare header claim that try_build turns into
    // O(n) memory — bound it by what the edges can justify plus a
    // generous isolated-vertex allowance, so a hostile few-byte header
    // cannot reserve gigabytes.
    if n > 2 * m + EDGELESS_VERTEX_ALLOWANCE {
        return Err(BinError::Corrupt(format!(
            "vertex count {n} implausible for {m} edges"
        )));
    }
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut prev: Option<(u32, u32)> = None;
    for i in 0..m {
        let u = data.get_u32_le();
        let v = data.get_u32_le();
        let p = data.get_f64_le();
        if u >= v {
            return Err(BinError::Corrupt(format!(
                "edge {i}: not normalized ({u} ≥ {v})"
            )));
        }
        if let Some(prev) = prev {
            if (u, v) <= prev {
                return Err(BinError::Corrupt(format!("edge {i}: out of order")));
            }
        }
        prev = Some((u, v));
        b.add_edge(u, v, p)
            .map_err(|e| BinError::Corrupt(format!("edge {i}: {e}")))?;
    }
    Ok(b.try_build()
        .map_err(|e| BinError::Corrupt(e.to_string()))?
        .with_name(name))
}

/// Write UGB1 to any writer.
pub fn write_binary<W: Write>(g: &UncertainGraph, mut w: W) -> std::io::Result<()> {
    w.write_all(&to_bytes(g))
}

/// Read UGB1 from any reader.
pub fn read_binary<R: Read>(mut r: R) -> Result<UncertainGraph, BinError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    from_bytes(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_core::builder::from_edges;

    fn fixture() -> UncertainGraph {
        from_edges(5, &[(0, 1, 0.5), (0, 4, 1.0), (2, 3, 0.125)])
            .unwrap()
            .with_name("bin-fixture")
    }

    #[test]
    fn round_trip_exact() {
        let g = fixture();
        let back = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.name(), "bin-fixture");
    }

    #[test]
    fn round_trip_through_io() {
        let g = fixture();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = ugraph_core::GraphBuilder::new(0).build();
        assert_eq!(from_bytes(to_bytes(&g)).unwrap(), g);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&fixture()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(Bytes::from(bytes)),
            Err(BinError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let full = to_bytes(&fixture()).to_vec();
        for cut in [0, 3, 5, 10, full.len() - 1] {
            let res = from_bytes(Bytes::from(full[..cut].to_vec()));
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unnormalized_edges_rejected() {
        // Hand-craft a file with a (v, u) swapped edge.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(0); // empty name
        buf.put_u64_le(3);
        buf.put_u64_le(1);
        buf.put_u32_le(2);
        buf.put_u32_le(1); // 2 ≥ 1: not normalized
        buf.put_f64_le(0.5);
        assert!(matches!(
            from_bytes(buf.freeze()),
            Err(BinError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_probability_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(0);
        buf.put_u64_le(2);
        buf.put_u64_le(1);
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_f64_le(1.5);
        assert!(matches!(
            from_bytes(buf.freeze()),
            Err(BinError::Corrupt(_))
        ));
    }

    /// A hostile header claiming `u32::MAX` vertices over a 1-edge
    /// payload must fail the plausibility check cheaply — before
    /// `try_build` turns the claim into gigabytes of CSR arrays.
    #[test]
    fn hostile_vertex_count_rejected_before_allocation() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(0);
        buf.put_u64_le(u32::MAX as u64); // n: absurd for one edge
        buf.put_u64_le(1); // m
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_f64_le(0.5);
        let err = from_bytes(buf.freeze()).unwrap_err();
        assert!(
            err.to_string().contains("implausible"),
            "wrong rejection: {err}"
        );
    }

    /// A hostile edge count with no payload behind it fails the length
    /// check (including at the `m · 16` overflow boundary) without
    /// reserving edge capacity.
    #[test]
    fn hostile_edge_count_rejected_before_allocation() {
        for m in [u64::MAX, u64::MAX / 16 + 1, 1 << 40] {
            let mut buf = BytesMut::new();
            buf.put_slice(MAGIC);
            buf.put_u32_le(0);
            buf.put_u64_le(3);
            buf.put_u64_le(m);
            assert!(
                matches!(from_bytes(buf.freeze()), Err(BinError::Corrupt(_))),
                "m = {m} accepted"
            );
        }
    }

    /// A hostile name length over a short file fails the bounds check
    /// before the name buffer is copied out.
    #[test]
    fn hostile_name_length_rejected_before_allocation() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(u32::MAX); // 4 GiB name in an 8-byte file
        let err = from_bytes(buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("name"), "wrong rejection: {err}");
    }

    /// The allowance still admits graphs that really are mostly
    /// isolated vertices.
    #[test]
    fn sparse_graph_with_many_isolated_vertices_loads() {
        let g = from_edges(50_000, &[(0, 49_999, 0.5)]).unwrap();
        assert_eq!(from_bytes(to_bytes(&g)).unwrap(), g);
    }

    #[test]
    fn out_of_order_edges_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(0);
        buf.put_u64_le(4);
        buf.put_u64_le(2);
        for (u, v) in [(2u32, 3u32), (0, 1)] {
            buf.put_u32_le(u);
            buf.put_u32_le(v);
            buf.put_f64_le(0.5);
        }
        assert!(matches!(
            from_bytes(buf.freeze()),
            Err(BinError::Corrupt(_))
        ));
    }
}
