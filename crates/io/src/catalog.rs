//! The sectioned catalog container ("UGQ1") — the on-disk sibling of
//! [`crate::binfmt`]'s UGB1, holding a *prepared* query instance rather
//! than a raw graph.
//!
//! This module is deliberately application-agnostic: it knows headers,
//! sections and checksums, not cliques. The `mule` crate defines what
//! goes *into* the sections (per-component CSR kernels, id maps, the
//! root schedule, the prepare report) and how they are validated
//! semantically; this layer guarantees that what comes back out is
//! byte-for-byte what was written — or a typed error, never garbage.
//!
//! # On-disk layout, byte for byte
//!
//! All integers are little-endian. The file is `header ‖ TOC ‖
//! toc_crc ‖ payloads`, with nothing else: no padding, no trailing
//! bytes.
//!
//! ```text
//! HEADER — fixed 92 bytes
//!  off size field
//!    0    4 magic               "UGQ1"
//!    4    4 version             u32, currently 1
//!    8    4 flags               u32 stage bits (FLAG_*); undefined bits must be 0
//!   12    1 index_mode          u8, app-defined (mule: 0 auto / 1 always / 2 never)
//!   13    3 reserved            must be 0
//!   16    8 alpha_bits          f64 bit pattern of the α threshold
//!   24    8 min_size            u64
//!   32    8 dense_index_bytes   u64
//!   40    8 max_index_bytes     u64
//!   48    8 original_vertices   u64 (fingerprint of the source graph)
//!   56    8 original_edges      u64 (fingerprint of the source graph)
//!   64    8 content_hash        u64 FNV-1a 64 over all section payloads, TOC order
//!   72    4 section_count       u32
//!   76    4 toc_len             u32, byte length of the TOC entries (crc excluded)
//!   80    8 reserved2           must be 0
//!   88    4 header_crc          crc32 (IEEE) of bytes [0, 88)
//!
//! TOC — `section_count` entries packed into exactly `toc_len` bytes
//!   name_len u16 ‖ name (UTF-8) ‖ offset u64 ‖ length u64 ‖ crc32 u32
//! followed by
//!   toc_crc  u32 — crc32 of the `toc_len` TOC-entry bytes
//!
//! PAYLOADS — section bytes concatenated in TOC order, starting at
//! `92 + toc_len + 4`. Section offsets are absolute file offsets.
//! ```
//!
//! # Integrity and strictness
//!
//! Every byte of the file is covered by a check:
//!
//! * header bytes by `header_crc` (reserved fields additionally must be
//!   zero),
//! * TOC bytes by `toc_crc`,
//! * each payload by its per-section crc32, and all payloads again by
//!   the header's `content_hash` (a second, structurally independent
//!   net: a forged section crc still has to match the FNV chain).
//!
//! The reader is strict far beyond the checksums: sections must be
//! **contiguous, in TOC order, and exactly fill the file** — no gaps,
//! no overlaps, no trailing bytes, no out-of-order offsets. Duplicate
//! section names are rejected. Every length is bounds-checked with
//! overflow-safe arithmetic *before* any allocation, so a hostile
//! header cannot request a huge buffer. Single-byte corruption anywhere
//! in the file is therefore always detected (crc32 catches all burst
//! errors up to 32 bits), and `tests/catalog_corruption.rs` at the
//! workspace root drives an adversarial matrix over exactly these
//! cases.
//!
//! # Durability &amp; recovery
//!
//! Detection (above) is only half of robustness; the other half is
//! never *producing* a torn file. [`CatalogWriter::write_to_path`] —
//! and through it every `Prepared::save` / `Base::save` in `mule` —
//! uses the atomic-durable recipe in [`crate::fault::write_atomic`]:
//!
//! 1. the serialized catalog is written to a sibling temp file named
//!    `<file>.tmp` (same directory, so the rename below cannot cross
//!    filesystems),
//! 2. the temp file is fsynced,
//! 3. the temp is renamed over the final path (atomic on POSIX), and
//! 4. the parent directory is fsynced (best-effort) so the rename
//!    itself survives power loss.
//!
//! A crash, full disk, or failed fsync at **any** byte boundary
//! therefore leaves the final path either untouched (prior catalog
//! intact) or fully replaced — never half-written. The only possible
//! debris is an orphan `<file>.tmp`, which [`Catalog::open`] removes
//! before reading. `tests/crash_battery.rs` at the workspace root
//! proves this by injecting every [`crate::fault::FaultPlan`] at every
//! byte-prefix cut point of a save and reopening after each.
//!
//! # Appended mutation batches: `delta.{i}` sections
//!
//! A catalog may carry committed mutation batches as trailing sections
//! named `delta.0`, `delta.1`, … — gap-free, strictly after every core
//! section (the `mule` layer rejects any other arrangement as
//! corruption). The container treats them like any other section
//! (crc32'd payload, content-hashed, contiguous tiling); appending one
//! re-serializes the whole file through [`CatalogWriter`] and commits
//! it with the same atomic-durable recipe, so the crash contract above
//! covers delta appends and compaction unchanged. The header
//! fingerprint keeps describing the *pre-delta* core artifact; readers
//! replay the batches in order after validating it.
//!
//! Each `delta.{i}` payload, byte for byte (all integers
//! little-endian):
//!
//! ```text
//!  off        size field
//!    0           8 count    u64 — number of op records
//!    8 + 17·k    1 tag      u8: 1 insert ‖ 2 delete ‖ 3 set-prob
//!    9 + 17·k    4 u        u32 endpoint (u < v not required on disk)
//!   13 + 17·k    4 v        u32 endpoint
//!   17 + 17·k    8 p        f64 bit pattern; **must be 0 for delete**
//! ```
//!
//! The payload length must equal `8 + 17·count` exactly; unknown tags,
//! non-zero delete probability bits, and count/length disagreement are
//! typed errors on open (decoded and validated by `mule::GraphDelta`).
//!
//! # Versioning / compatibility policy
//!
//! `version` is a hard gate: readers reject any version they were not
//! built for (there is no "ignore what you don't understand" path —
//! for a file whose purpose is to bypass recomputation, serving a
//! half-understood catalog is worse than recomputing). Additions must
//! bump the version; the reserved header fields and undefined flag
//! bits must stay zero so a future version can use them while v1
//! readers still fail loudly.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::path::Path;

/// A bounds-checked little-endian cursor over a byte slice: every read
/// returns `None` past the end instead of panicking, which is the
/// property the corruption battery leans on — *no* input, however
/// mangled, may take down the reader. Section decoders in `mule` reuse
/// it for their payloads.
pub struct ByteReader<'a> {
    data: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wrap a slice.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data }
    }

    /// Bytes left to consume.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The next `n` bytes, advancing past them.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.data.len() < n {
            return None;
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Some(head)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16_le(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32_le(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64_le(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

/// Magic bytes opening every catalog file.
pub const MAGIC: &[u8; 4] = b"UGQ1";
/// The one on-disk version this reader/writer speaks.
pub const VERSION: u32 = 1;
/// Fixed byte length of the header.
pub const HEADER_LEN: usize = 92;

/// Header flag: pipeline stage 2 (expected-degree core filter) was on.
pub const FLAG_CORE_FILTER: u32 = 1;
/// Header flag: pipeline stage 3 (shared-neighborhood peel) was on.
pub const FLAG_SHARED_NEIGHBORHOOD: u32 = 1 << 1;
/// Header flag: pipeline stage 4 (component sharding) was on.
pub const FLAG_SHARD_COMPONENTS: u32 = 1 << 2;
/// Header flag: the catalog stores an α-generic **base artifact**
/// (floor-pruned components, no per-α pipeline output) rather than a
/// fully prepared instance. `alpha_bits` then carries the α-*floor*
/// (which, unlike a query α, may be `0.0`), and the section layout is
/// the base variant documented in `mule::catalog`.
pub const FLAG_ALPHA_BASE: u32 = 1 << 3;
/// Every flag bit defined in version 1; others must be zero.
pub const FLAGS_KNOWN: u32 =
    FLAG_CORE_FILTER | FLAG_SHARED_NEIGHBORHOOD | FLAG_SHARD_COMPONENTS | FLAG_ALPHA_BASE;

/// Errors from the catalog reader/writer.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content — the message names the first
    /// violated rule.
    Corrupt(String),
    /// The file is a catalog, but of a version this build does not
    /// speak.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
    },
    /// A section the application requires is absent from the TOC.
    MissingSection(String),
    /// The file is a valid catalog of the *other* kind: a fixed-α
    /// instance opened through the base path, or an α-generic base
    /// opened through the fixed path. The caller should retry through
    /// the matching entry point.
    WrongKind {
        /// What the catalog actually holds.
        found: &'static str,
        /// What the open path expected.
        expected: &'static str,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "I/O error: {e}"),
            CatalogError::Corrupt(why) => write!(f, "corrupt UGQ1 catalog: {why}"),
            CatalogError::UnsupportedVersion { found } => write!(
                f,
                "unsupported UGQ1 version {found} (this build reads version {VERSION})"
            ),
            CatalogError::MissingSection(name) => {
                write!(f, "catalog is missing required section {name:?}")
            }
            CatalogError::WrongKind { found, expected } => write!(
                f,
                "catalog holds {found} but this open path expected {expected}"
            ),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> CatalogError {
    CatalogError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Checksums (hand-rolled: no checksum crate on the offline allowlist).
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
/// variant `cksum`-adjacent tools, zlib and PNG use. Guarantees
/// detection of any single burst error up to 32 bits, which is what
/// makes the corruption battery's "every single-byte flip errors"
/// claim provable rather than probabilistic.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Incremental FNV-1a 64 — the content hash chained over every section
/// payload (TOC order) into the header.
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv64 {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Fold `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// The fixed-size catalog header: version/flags, the α-and-stage
/// configuration the catalog was prepared under, the source-graph
/// fingerprint, and the whole-payload content hash.
///
/// The field semantics beyond the container rules (what `index_mode`
/// values mean, how the fingerprint is computed) belong to the
/// application layer (`mule::catalog`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogHeader {
    /// Stage bits (`FLAG_*`); bits outside [`FLAGS_KNOWN`] must be zero.
    pub flags: u32,
    /// Application-defined index-mode discriminant.
    pub index_mode: u8,
    /// Bit pattern of the `f64` α threshold (bit-exact round trip).
    pub alpha_bits: u64,
    /// The size threshold the instance was prepared with.
    pub min_size: u64,
    /// Dense probability-tier budget (bytes per kernel).
    pub dense_index_bytes: u64,
    /// Bitset membership-tier budget (bytes).
    pub max_index_bytes: u64,
    /// Vertex count of the *source* graph (fingerprint).
    pub original_vertices: u64,
    /// Edge count of the *source* graph (fingerprint).
    pub original_edges: u64,
    /// FNV-1a 64 over all section payloads in TOC order. Writers leave
    /// this as any value — [`CatalogWriter::finish`] computes it.
    pub content_hash: u64,
}

impl CatalogHeader {
    fn encode(&self, section_count: u32, toc_len: u32) -> [u8; HEADER_LEN] {
        let mut buf = BytesMut::with_capacity(HEADER_LEN);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.flags);
        buf.put_u8(self.index_mode);
        buf.put_slice(&[0u8; 3]);
        buf.put_u64_le(self.alpha_bits);
        buf.put_u64_le(self.min_size);
        buf.put_u64_le(self.dense_index_bytes);
        buf.put_u64_le(self.max_index_bytes);
        buf.put_u64_le(self.original_vertices);
        buf.put_u64_le(self.original_edges);
        buf.put_u64_le(self.content_hash);
        buf.put_u32_le(section_count);
        buf.put_u32_le(toc_len);
        buf.put_u64_le(0); // reserved2
        debug_assert_eq!(buf.len(), HEADER_LEN - 4);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        let mut out = [0u8; HEADER_LEN];
        out.copy_from_slice(&buf);
        out
    }

    /// Parse and validate the header region, returning the header and
    /// `(section_count, toc_len)`.
    fn decode(data: &[u8]) -> Result<(Self, u32, u32), CatalogError> {
        if data.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "file too short for header ({} < {HEADER_LEN} bytes)",
                data.len()
            )));
        }
        let mut h = ByteReader::new(&data[..HEADER_LEN]);
        let magic = h.take(4).unwrap();
        if magic != MAGIC {
            return Err(corrupt(format!("bad magic {magic:?}")));
        }
        let version = h.u32_le().unwrap();
        // CRC before trusting anything else: a flipped version byte must
        // read as corruption, not as a mysterious future version.
        let stored_crc = u32::from_le_bytes(data[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap());
        if crc32(&data[..HEADER_LEN - 4]) != stored_crc {
            return Err(corrupt("header crc32 mismatch"));
        }
        if version != VERSION {
            return Err(CatalogError::UnsupportedVersion { found: version });
        }
        let flags = h.u32_le().unwrap();
        if flags & !FLAGS_KNOWN != 0 {
            return Err(corrupt(format!("undefined flag bits set: {flags:#x}")));
        }
        let index_mode = h.u8().unwrap();
        if h.take(3).unwrap() != [0, 0, 0] {
            return Err(corrupt("reserved header bytes are not zero"));
        }
        let header = CatalogHeader {
            flags,
            index_mode,
            alpha_bits: h.u64_le().unwrap(),
            min_size: h.u64_le().unwrap(),
            dense_index_bytes: h.u64_le().unwrap(),
            max_index_bytes: h.u64_le().unwrap(),
            original_vertices: h.u64_le().unwrap(),
            original_edges: h.u64_le().unwrap(),
            content_hash: h.u64_le().unwrap(),
        };
        let section_count = h.u32_le().unwrap();
        let toc_len = h.u32_le().unwrap();
        if h.u64_le().unwrap() != 0 {
            return Err(corrupt("reserved2 header field is not zero"));
        }
        Ok((header, section_count, toc_len))
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Builds a catalog byte image: collect named sections, then
/// [`CatalogWriter::finish`] computes offsets, checksums and the
/// content hash and emits the file.
pub struct CatalogWriter {
    header: CatalogHeader,
    sections: Vec<(String, Vec<u8>)>,
}

impl CatalogWriter {
    /// Start a catalog with the given header (its `content_hash` is
    /// recomputed at [`Self::finish`]).
    pub fn new(header: CatalogHeader) -> Self {
        CatalogWriter {
            header,
            sections: Vec::new(),
        }
    }

    /// Append a named section. Order is preserved and meaningful: the
    /// reader enforces that payloads are laid out in TOC order.
    ///
    /// # Panics
    /// Panics if `name` exceeds `u16::MAX` bytes — section names are
    /// writer-chosen constants, not data.
    pub fn add_section(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        let name = name.into();
        assert!(name.len() <= u16::MAX as usize, "section name too long");
        self.sections.push((name, bytes));
    }

    /// Assemble the final byte image.
    pub fn finish(mut self) -> Vec<u8> {
        let mut hasher = Fnv64::new();
        for (_, bytes) in &self.sections {
            hasher.update(bytes);
        }
        self.header.content_hash = hasher.finish();

        let toc_len: usize = self
            .sections
            .iter()
            .map(|(name, _)| 2 + name.len() + 8 + 8 + 4)
            .sum();
        let payload_start = HEADER_LEN + toc_len + 4;

        let mut toc = BytesMut::with_capacity(toc_len);
        let mut offset = payload_start as u64;
        for (name, bytes) in &self.sections {
            toc.put_slice(&(name.len() as u16).to_le_bytes());
            toc.put_slice(name.as_bytes());
            toc.put_u64_le(offset);
            toc.put_u64_le(bytes.len() as u64);
            toc.put_u32_le(crc32(bytes));
            offset += bytes.len() as u64;
        }
        debug_assert_eq!(toc.len(), toc_len);

        let header = self
            .header
            .encode(self.sections.len() as u32, toc_len as u32);

        let total = payload_start + self.sections.iter().map(|(_, b)| b.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&header);
        out.extend_from_slice(&toc);
        out.extend_from_slice(&crc32(&toc).to_le_bytes());
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
        }
        debug_assert_eq!(out.len(), total);
        out
    }

    /// [`Self::finish`] straight to a file, atomically and durably:
    /// the bytes land in a sibling `<file>.tmp`, are fsynced, and only
    /// then renamed over `path` (see [`crate::fault::write_atomic`]).
    /// On error the prior contents of `path`, if any, are intact.
    pub fn write_to_path(self, path: impl AsRef<Path>) -> Result<(), CatalogError> {
        crate::fault::write_atomic(path.as_ref(), &self.finish())?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One TOC row: a named, checksummed byte range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section name (unique within a catalog).
    pub name: String,
    /// Absolute file offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub length: u64,
    /// crc32 of the payload.
    pub crc32: u32,
}

/// A parsed, structurally validated catalog: header and TOC are fully
/// checked at [`Catalog::from_bytes`]; payload checksums are verified
/// on access ([`Catalog::section`]) or all at once ([`Catalog::verify`]),
/// so a reader can inspect the TOC without touching every payload byte.
pub struct Catalog {
    data: Bytes,
    header: CatalogHeader,
    toc: Vec<SectionEntry>,
}

impl Catalog {
    /// Read and validate a catalog file. Before reading, any orphan
    /// temp file a crashed save may have left next to `path` is
    /// removed (see [`crate::fault::cleanup_orphan`]) — a crashed save
    /// never touches the final path, so the catalog itself is intact.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CatalogError> {
        let path = path.as_ref();
        crate::fault::cleanup_orphan(path);
        let data = std::fs::read(path)?;
        Self::from_bytes(Bytes::from(data))
    }

    /// Parse a catalog from bytes: validates the header (magic, crc,
    /// version, reserved-zero), the TOC (crc, exact packing, UTF-8
    /// unique names) and the layout (sections contiguous in TOC order,
    /// exactly filling the file). Payload checksums are *not* checked
    /// here — see [`Catalog::section`] / [`Catalog::verify`].
    pub fn from_bytes(data: Bytes) -> Result<Self, CatalogError> {
        let (header, section_count, toc_len) = CatalogHeader::decode(&data)?;
        let toc_end = HEADER_LEN
            .checked_add(toc_len as usize)
            .and_then(|v| v.checked_add(4))
            .ok_or_else(|| corrupt("TOC length overflows"))?;
        if data.len() < toc_end {
            return Err(corrupt(format!(
                "file too short for TOC ({} < {toc_end} bytes)",
                data.len()
            )));
        }
        let toc_bytes = &data[HEADER_LEN..HEADER_LEN + toc_len as usize];
        let stored_toc_crc = u32::from_le_bytes(data[toc_end - 4..toc_end].try_into().unwrap());
        if crc32(toc_bytes) != stored_toc_crc {
            return Err(corrupt("TOC crc32 mismatch"));
        }

        let mut toc = Vec::new();
        let mut rest = ByteReader::new(toc_bytes);
        for i in 0..section_count {
            let truncated = || corrupt(format!("TOC truncated in entry {i}"));
            let name_len = rest.u16_le().ok_or_else(truncated)? as usize;
            let name_bytes = rest.take(name_len).ok_or_else(truncated)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| corrupt(format!("section name {i} is not UTF-8")))?
                .to_string();
            if toc.iter().any(|e: &SectionEntry| e.name == name) {
                return Err(corrupt(format!("duplicate section name {name:?}")));
            }
            toc.push(SectionEntry {
                name,
                offset: rest.u64_le().ok_or_else(truncated)?,
                length: rest.u64_le().ok_or_else(truncated)?,
                crc32: rest.u32_le().ok_or_else(truncated)?,
            });
        }
        if !rest.is_empty() {
            return Err(corrupt(format!(
                "{} unused bytes after the last TOC entry",
                rest.remaining()
            )));
        }

        // Layout strictness: payloads contiguous, in TOC order, exactly
        // filling the file — with overflow-safe arithmetic, so a hostile
        // length fails here, before anyone allocates or slices.
        let mut expected = toc_end as u64;
        for e in &toc {
            if e.offset != expected {
                return Err(corrupt(format!(
                    "section {:?} offset {} does not follow the previous section (expected {expected})",
                    e.name, e.offset
                )));
            }
            expected = expected
                .checked_add(e.length)
                .ok_or_else(|| corrupt(format!("section {:?} length overflows", e.name)))?;
        }
        if expected != data.len() as u64 {
            return Err(corrupt(format!(
                "sections end at byte {expected} but the file has {} bytes",
                data.len()
            )));
        }

        Ok(Catalog { data, header, toc })
    }

    /// The validated header.
    pub fn header(&self) -> &CatalogHeader {
        &self.header
    }

    /// The TOC, in file order.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.toc
    }

    /// Total size of the catalog image in bytes.
    pub fn file_len(&self) -> usize {
        self.data.len()
    }

    fn payload(&self, e: &SectionEntry) -> &[u8] {
        // Bounds were fully validated in from_bytes.
        &self.data[e.offset as usize..(e.offset + e.length) as usize]
    }

    /// Whether the named payload matches its TOC checksum (powers the
    /// CLI's `stat --list` CRC column without failing the whole dump).
    pub fn section_crc_ok(&self, e: &SectionEntry) -> bool {
        crc32(self.payload(e)) == e.crc32
    }

    /// A section's payload, checksum-verified on every call. Returns
    /// [`CatalogError::MissingSection`] when absent.
    pub fn section(&self, name: &str) -> Result<&[u8], CatalogError> {
        let e = self
            .toc
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| CatalogError::MissingSection(name.to_string()))?;
        let payload = self.payload(e);
        if crc32(payload) != e.crc32 {
            return Err(corrupt(format!("section {name:?} crc32 mismatch")));
        }
        Ok(payload)
    }

    /// Verify every payload checksum and the header's whole-payload
    /// content hash — the "trust nothing" pass `Query::open` and
    /// `mule stat` run before serving data.
    pub fn verify(&self) -> Result<(), CatalogError> {
        let mut hasher = Fnv64::new();
        for e in &self.toc {
            let payload = self.payload(e);
            if crc32(payload) != e.crc32 {
                return Err(corrupt(format!("section {:?} crc32 mismatch", e.name)));
            }
            hasher.update(payload);
        }
        if hasher.finish() != self.header.content_hash {
            return Err(corrupt("content hash mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> CatalogHeader {
        CatalogHeader {
            flags: FLAG_CORE_FILTER | FLAG_SHARD_COMPONENTS,
            index_mode: 0,
            alpha_bits: 0.5f64.to_bits(),
            min_size: 3,
            dense_index_bytes: 4 << 20,
            max_index_bytes: 64 << 20,
            original_vertices: 9,
            original_edges: 7,
            content_hash: 0,
        }
    }

    fn sample() -> Vec<u8> {
        let mut w = CatalogWriter::new(header());
        w.add_section("alpha", vec![1, 2, 3, 4, 5]);
        w.add_section("beta", vec![]);
        w.add_section("gamma", (0..=255).collect());
        w.finish()
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fnv1a64_known_vectors() {
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        // Chained updates equal one concatenated update.
        let mut split = Fnv64::new();
        split.update(b"foo");
        split.update(b"bar");
        let mut whole = Fnv64::new();
        whole.update(b"foobar");
        assert_eq!(split.finish(), whole.finish());
    }

    #[test]
    fn round_trip_preserves_everything() {
        let bytes = sample();
        let cat = Catalog::from_bytes(Bytes::from(bytes)).unwrap();
        cat.verify().unwrap();
        let h = cat.header();
        assert_eq!(h.flags, FLAG_CORE_FILTER | FLAG_SHARD_COMPONENTS);
        assert_eq!(f64::from_bits(h.alpha_bits), 0.5);
        assert_eq!(h.min_size, 3);
        assert_eq!(h.original_vertices, 9);
        assert_eq!(cat.sections().len(), 3);
        assert_eq!(cat.section("alpha").unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(cat.section("beta").unwrap(), &[] as &[u8]);
        assert_eq!(cat.section("gamma").unwrap().len(), 256);
        assert!(matches!(
            cat.section("delta"),
            Err(CatalogError::MissingSection(_))
        ));
    }

    #[test]
    fn empty_catalog_round_trips() {
        let bytes = CatalogWriter::new(header()).finish();
        assert_eq!(bytes.len(), HEADER_LEN + 4);
        let cat = Catalog::from_bytes(Bytes::from(bytes)).unwrap();
        cat.verify().unwrap();
        assert!(cat.sections().is_empty());
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("ugq1-io-unit-test.ugq");
        let mut w = CatalogWriter::new(header());
        w.add_section("only", b"payload".to_vec());
        w.write_to_path(&path).unwrap();
        let cat = Catalog::open(&path).unwrap();
        assert_eq!(cat.section("only").unwrap(), b"payload");
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(Catalog::open(&path), Err(CatalogError::Io(_))));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let detected = match Catalog::from_bytes(Bytes::from(bad)) {
                Err(_) => true,
                Ok(cat) => cat.verify().is_err(),
            };
            assert!(detected, "flip at byte {i} went unnoticed");
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let res = Catalog::from_bytes(Bytes::from(bytes[..cut].to_vec()));
            assert!(res.is_err(), "truncation to {cut} bytes accepted");
        }
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut bytes = sample();
        bytes[4] = 2; // version 2
                      // Re-seal the header so only the version differs.
        let crc = crc32(&bytes[..HEADER_LEN - 4]);
        bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Catalog::from_bytes(Bytes::from(bytes)),
            Err(CatalogError::UnsupportedVersion { found: 2 })
        ));
    }

    #[test]
    fn undefined_flag_bits_rejected() {
        let bytes = CatalogWriter::new(CatalogHeader {
            flags: 1 << 7,
            ..header()
        })
        .finish();
        assert!(matches!(
            Catalog::from_bytes(Bytes::from(bytes)),
            Err(CatalogError::Corrupt(_))
        ));
    }

    #[test]
    fn duplicate_section_names_rejected() {
        let mut w = CatalogWriter::new(header());
        w.add_section("twin", vec![1]);
        w.add_section("twin", vec![2]);
        assert!(matches!(
            Catalog::from_bytes(Bytes::from(w.finish())),
            Err(CatalogError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            Catalog::from_bytes(Bytes::from(bytes)),
            Err(CatalogError::Corrupt(_))
        ));
    }

    #[test]
    fn error_display_and_sources() {
        use std::error::Error;
        let io: CatalogError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(io.source().is_some());
        assert!(corrupt("x").to_string().contains("corrupt UGQ1"));
        assert!(CatalogError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains("version 9"));
        assert!(CatalogError::MissingSection("s".into())
            .to_string()
            .contains("missing"));
    }
}
