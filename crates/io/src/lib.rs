//! # ugraph-io — serialization for uncertain graphs
//!
//! * [`edgelist`] — text formats: probabilistic `u v p` lists and SNAP
//!   `u v` lists (with caller-assigned probabilities, reproducing the
//!   paper's semi-synthetic construction);
//! * [`binfmt`] — the compact validated UGB1 binary format;
//! * [`catalog`] — the sectioned UGQ1 container (header + checksummed
//!   TOC) that persists prepared query instances;
//! * [`fault`] — the atomic-durable write path every catalog save goes
//!   through, plus the injectable fault seam ([`fault::FaultPlan`])
//!   that the crash-boundary battery drives over it;
//! * [`cache`] — a filesystem cache used by the experiment harness.
//!
//! Formats are hand-rolled: no serde *format* crate (serde_json etc.) is
//! on the offline dependency allowlist, so `serde` is used only for
//! derives on public model types in `ugraph-core`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binfmt;
pub mod cache;
pub mod catalog;
pub mod cliques;
pub mod edgelist;
pub mod fault;

pub use binfmt::{read_binary, write_binary, BinError};
pub use bytes::Bytes;
pub use catalog::{Catalog, CatalogError, CatalogHeader, CatalogWriter, SectionEntry};
pub use cliques::{read_clique_list, write_clique_list};
pub use edgelist::{read_prob_edgelist, read_snap_edgelist, write_prob_edgelist, ParseError};
pub use fault::FaultPlan;
