//! IO fault injection and the atomic-durable write path it proves
//! correct.
//!
//! Every catalog save in the workspace funnels through
//! [`write_atomic`]: bytes go to a sibling temp file
//! (`<file>.tmp`), the temp is fsynced, renamed over the final path,
//! and the parent directory is fsynced. A crash at *any* byte boundary
//! therefore leaves either the prior file intact (rename not reached)
//! or the new file complete (rename is atomic on POSIX) — never a torn
//! final file. The only debris a crash can leave is an orphan temp,
//! which [`cleanup_orphan`] removes on the next open.
//!
//! The guarantee is not taken on faith: [`FaultPlan`] is an injectable
//! seam that the crash-at-every-boundary battery
//! (`tests/crash_battery.rs` at the workspace root) drives over every
//! byte-prefix cut point of a save. Arm a plan with [`arm`] (or
//! [`arm_from_env`] for CLI/CI use via `MULE_FAULT_PLAN`) and the next
//! [`write_atomic`] on the calling thread hits the planned fault:
//!
//! * `fail-at:N` — the write syscall errors once `N` bytes of the
//!   payload have been accepted;
//! * `enospc:N` — same cut point, surfaced as an out-of-space error;
//! * `short-writes:K` — every write accepts at most `K` bytes (the
//!   save must still succeed byte-identically through its retry loop);
//! * `fsync-fail` — the data is written but the fsync of the temp file
//!   errors;
//! * `crash-after:N` — the process "dies" after an `N`-byte prefix:
//!   the error is returned **and the temp file is left behind**,
//!   exactly as a real crash would, so the orphan-cleanup path is
//!   exercised too.
//!
//! Plans are thread-local and one-shot per [`arm`]; production code
//! never arms one, so the seam compiles to a thread-local `None` check
//! per chunk.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One planned IO fault, applied to the next [`write_atomic`] call on
/// the thread that [`arm`]ed it. Byte counts refer to the payload
/// prefix accepted before the fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// The write syscall fails after exactly `N` payload bytes have
    /// been accepted (generic I/O error).
    FailAtByte(u64),
    /// Like [`FaultPlan::FailAtByte`] but surfaced as "no space left
    /// on device" — the classic full-disk mid-save.
    Enospc(u64),
    /// Every write call accepts at most this many bytes (never fails).
    /// A correct writer loops and the save succeeds byte-identically.
    ShortWrites(usize),
    /// Writes succeed but the fsync of the temp file fails.
    FsyncFail,
    /// The process "crashes" after an `N`-byte prefix reached the temp
    /// file: an error is returned, and — unlike every other plan — the
    /// temp file is deliberately **not** cleaned up, simulating a real
    /// power cut so open-time orphan cleanup is exercised. `N` past
    /// the payload end models a crash between the last write and the
    /// rename.
    CrashAfterPrefix(u64),
}

impl FaultPlan {
    /// Parse a plan from its CLI/CI spec string (the `MULE_FAULT_PLAN`
    /// format): `fail-at:N`, `enospc:N`, `short-writes:K`,
    /// `fsync-fail`, `crash-after:N`.
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let spec = spec.trim();
        if spec == "fsync-fail" {
            return Some(FaultPlan::FsyncFail);
        }
        let (kind, num) = spec.split_once(':')?;
        let n: u64 = num.trim().parse().ok()?;
        match kind.trim() {
            "fail-at" => Some(FaultPlan::FailAtByte(n)),
            "enospc" => Some(FaultPlan::Enospc(n)),
            "short-writes" if n > 0 => Some(FaultPlan::ShortWrites(n as usize)),
            "crash-after" => Some(FaultPlan::CrashAfterPrefix(n)),
            _ => None,
        }
    }
}

struct Armed {
    plan: FaultPlan,
    /// Payload bytes accepted so far under this plan.
    written: u64,
}

thread_local! {
    static ARMED: RefCell<Option<Armed>> = const { RefCell::new(None) };
}

/// Process-wide count of injected faults that actually fired — a
/// telemetry hook for batteries and the chaos smoke ("did the plan
/// trigger, or did the save dodge it?").
static FAULTS_FIRED: AtomicU64 = AtomicU64::new(0);

/// Arm `plan` for the next [`write_atomic`] on this thread, replacing
/// any previously armed plan. The plan stays armed (with its running
/// byte count) until [`disarm`] — a battery arming `crash-after:N`
/// then saving twice will see the second save fail at byte 0.
pub fn arm(plan: FaultPlan) {
    ARMED.with(|a| *a.borrow_mut() = Some(Armed { plan, written: 0 }));
}

/// Disarm this thread's fault plan. Returns the plan that was armed,
/// if any. Always call this after a battery step: plans are
/// deliberately sticky so a single save can hit multiple faults.
pub fn disarm() -> Option<FaultPlan> {
    ARMED.with(|a| a.borrow_mut().take().map(|s| s.plan))
}

/// True when a plan is armed on this thread.
pub fn armed() -> bool {
    ARMED.with(|a| a.borrow().is_some())
}

/// Arm from an environment variable holding a [`FaultPlan::parse`]
/// spec (the CLI uses `MULE_FAULT_PLAN`). Returns the armed plan, or
/// `None` when the variable is unset or unparsable — a bad spec is
/// ignored rather than fatal so a stale variable cannot brick the
/// tool.
pub fn arm_from_env(var: &str) -> Option<FaultPlan> {
    let spec = std::env::var(var).ok()?;
    let plan = FaultPlan::parse(&spec)?;
    arm(plan);
    Some(plan)
}

/// Number of injected faults that have fired process-wide.
pub fn faults_fired() -> u64 {
    FAULTS_FIRED.load(Ordering::Relaxed)
}

fn fired() {
    FAULTS_FIRED.fetch_add(1, Ordering::Relaxed);
}

/// How many of `want` bytes the armed plan lets through, or the
/// injected error. Advances the plan's byte count by the allowance.
fn check_write(want: usize) -> io::Result<usize> {
    ARMED.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(armed) = slot.as_mut() else {
            return Ok(want);
        };
        let allow = match armed.plan {
            FaultPlan::ShortWrites(k) => want.min(k),
            FaultPlan::FailAtByte(n) | FaultPlan::Enospc(n) | FaultPlan::CrashAfterPrefix(n) => {
                let left = n.saturating_sub(armed.written);
                if left == 0 {
                    fired();
                    return Err(injected_error(armed.plan, armed.written));
                }
                want.min(left.min(usize::MAX as u64) as usize)
            }
            FaultPlan::FsyncFail => want,
        };
        armed.written += allow as u64;
        Ok(allow)
    })
}

/// The armed plan's verdict on fsyncing the temp file.
fn check_fsync() -> io::Result<()> {
    ARMED.with(|a| {
        let slot = a.borrow();
        match slot.as_ref().map(|s| (s.plan, s.written)) {
            Some((plan @ FaultPlan::FsyncFail, w))
            | Some((plan @ FaultPlan::CrashAfterPrefix(_), w)) => {
                // crash-after with a cut past the payload end: the
                // write loop never errored, so the "crash" lands here,
                // between the last write and the fsync/rename.
                fired();
                Err(injected_error(plan, w))
            }
            _ => Ok(()),
        }
    })
}

/// True when the armed plan simulates a process death (temp file must
/// be left behind, as a real crash would).
fn crash_mode() -> bool {
    ARMED.with(|a| {
        matches!(
            a.borrow().as_ref().map(|s| s.plan),
            Some(FaultPlan::CrashAfterPrefix(_))
        )
    })
}

fn injected_error(plan: FaultPlan, written: u64) -> io::Error {
    match plan {
        FaultPlan::FailAtByte(n) => io::Error::other(format!("injected write failure at byte {n}")),
        FaultPlan::Enospc(n) => io::Error::other(format!(
            "injected ENOSPC: no space left on device after {n} bytes"
        )),
        FaultPlan::FsyncFail => io::Error::other("injected fsync failure on temp file"),
        FaultPlan::CrashAfterPrefix(_) => io::Error::other(format!(
            "injected crash: process died after a {written}-byte prefix reached the temp file"
        )),
        FaultPlan::ShortWrites(_) => unreachable!("short writes never error"),
    }
}

/// The sibling temp path a save writes through: `<file>.tmp`, in the
/// same directory so the final rename cannot cross filesystems.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Remove the orphan temp a crashed save may have left next to
/// `path`, best-effort. Readers call this before opening so debris
/// from a prior crash never accumulates and can never be mistaken for
/// a catalog.
pub fn cleanup_orphan(path: &Path) {
    let _ = std::fs::remove_file(tmp_path(path));
}

/// Write `bytes` to `path` atomically and durably: temp file in the
/// same directory → fsync → rename over `path` → fsync the parent
/// directory. On any error the final path is untouched (prior
/// contents, if any, remain intact) and the temp file is removed —
/// except under a [`FaultPlan::CrashAfterPrefix`] simulation, which
/// leaves the orphan exactly as a real crash would.
///
/// The payload is fed through the fault seam in bounded chunks so an
/// armed byte-count plan fires at its exact cut point regardless of
/// how the OS batches writes.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    match write_tmp(&tmp, bytes) {
        Ok(()) => {}
        Err(e) => {
            if !crash_mode() {
                let _ = std::fs::remove_file(&tmp);
            }
            return Err(e);
        }
    }
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself. Directory fsync is best-effort:
    // not every platform/filesystem permits opening a directory for
    // sync, and at this point the rename has already committed a
    // complete file — failing the save now would report an error for a
    // state that is in fact fully valid.
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

const CHUNK: usize = 4096;

fn write_tmp(tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(tmp)?;
    let mut off = 0usize;
    while off < bytes.len() {
        let want = (bytes.len() - off).min(CHUNK);
        let allow = check_write(want)?;
        f.write_all(&bytes[off..off + allow])?;
        off += allow;
    }
    check_fsync()?;
    f.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ugq-fault-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn plan_spec_round_trip() {
        assert_eq!(
            FaultPlan::parse("fail-at:7"),
            Some(FaultPlan::FailAtByte(7))
        );
        assert_eq!(FaultPlan::parse("enospc:0"), Some(FaultPlan::Enospc(0)));
        assert_eq!(
            FaultPlan::parse(" short-writes:3 "),
            Some(FaultPlan::ShortWrites(3))
        );
        assert_eq!(FaultPlan::parse("fsync-fail"), Some(FaultPlan::FsyncFail));
        assert_eq!(
            FaultPlan::parse("crash-after:120"),
            Some(FaultPlan::CrashAfterPrefix(120))
        );
        for bad in ["", "fail-at", "fail-at:x", "short-writes:0", "nope:1"] {
            assert_eq!(FaultPlan::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn unarmed_write_is_plain_and_atomic() {
        let d = tdir("plain");
        let p = d.join("a.bin");
        write_atomic(&p, b"hello").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"hello");
        assert!(!tmp_path(&p).exists());
        write_atomic(&p, b"replaced").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"replaced");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn fail_at_byte_preserves_prior_and_cleans_tmp() {
        let d = tdir("failat");
        let p = d.join("a.bin");
        write_atomic(&p, b"old contents").unwrap();
        arm(FaultPlan::FailAtByte(3));
        let err = write_atomic(&p, b"new contents that will not land").unwrap_err();
        disarm();
        assert!(err.to_string().contains("injected write failure"));
        assert_eq!(std::fs::read(&p).unwrap(), b"old contents");
        assert!(
            !tmp_path(&p).exists(),
            "non-crash faults must clean the temp"
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn crash_leaves_orphan_and_cleanup_removes_it() {
        let d = tdir("crash");
        let p = d.join("a.bin");
        write_atomic(&p, b"old contents").unwrap();
        arm(FaultPlan::CrashAfterPrefix(4));
        let err = write_atomic(&p, b"new contents").unwrap_err();
        disarm();
        assert!(err.to_string().contains("injected crash"));
        assert_eq!(std::fs::read(&p).unwrap(), b"old contents");
        let orphan = tmp_path(&p);
        assert!(
            orphan.exists(),
            "crash simulation must leave the temp behind"
        );
        assert_eq!(std::fs::read(&orphan).unwrap(), b"new ");
        cleanup_orphan(&p);
        assert!(!orphan.exists());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn crash_past_payload_end_fires_before_rename() {
        let d = tdir("crashend");
        let p = d.join("a.bin");
        write_atomic(&p, b"old").unwrap();
        arm(FaultPlan::CrashAfterPrefix(u64::MAX));
        let err = write_atomic(&p, b"new").unwrap_err();
        disarm();
        assert!(err.to_string().contains("injected crash"));
        assert_eq!(std::fs::read(&p).unwrap(), b"old");
        assert_eq!(std::fs::read(tmp_path(&p)).unwrap(), b"new");
        cleanup_orphan(&p);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn short_writes_still_complete_byte_identically() {
        let d = tdir("short");
        let p = d.join("a.bin");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        arm(FaultPlan::ShortWrites(7));
        write_atomic(&p, &payload).unwrap();
        disarm();
        assert_eq!(std::fs::read(&p).unwrap(), payload);
        assert!(!tmp_path(&p).exists());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn fsync_failure_preserves_prior() {
        let d = tdir("fsync");
        let p = d.join("a.bin");
        write_atomic(&p, b"old").unwrap();
        arm(FaultPlan::FsyncFail);
        let err = write_atomic(&p, b"new").unwrap_err();
        disarm();
        assert!(err.to_string().contains("injected fsync failure"));
        assert_eq!(std::fs::read(&p).unwrap(), b"old");
        assert!(!tmp_path(&p).exists());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn enospc_at_zero_accepts_nothing() {
        let d = tdir("enospc");
        let p = d.join("a.bin");
        arm(FaultPlan::Enospc(0));
        let err = write_atomic(&p, b"anything").unwrap_err();
        disarm();
        assert!(err.to_string().contains("no space left"));
        assert!(!p.exists());
        assert!(!tmp_path(&p).exists());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn arm_from_env_parses_and_arms() {
        // Env mutation is process-global; use a variable name unique to
        // this test to stay independent of parallel tests.
        let var = "UGQ_FAULT_TEST_PLAN_UNIT";
        std::env::set_var(var, "fail-at:9");
        assert_eq!(arm_from_env(var), Some(FaultPlan::FailAtByte(9)));
        assert!(armed());
        assert_eq!(disarm(), Some(FaultPlan::FailAtByte(9)));
        std::env::set_var(var, "garbage");
        assert_eq!(arm_from_env(var), None);
        assert!(!armed());
        std::env::remove_var(var);
    }
}
