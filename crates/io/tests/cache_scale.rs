//! Multi-million-edge round-trip + reuse test for the dataset cache
//! (`io::cache`), closing the ROADMAP open item "the dataset cache is
//! untested at multi-million-edge scale".
//!
//! The workload is a generated Chung–Lu power-law graph at roughly the
//! scale of the paper's larger SNAP inputs: 2,000,000 distinct edges
//! over 300,000 vertices with uniform-(0, 1] probabilities. The test
//! pins three properties at that scale:
//!
//! * the first `load_or_build` builds and persists a UGB1 file;
//! * the second `load_or_build` **reuses** the cache (the build closure
//!   must not run again) and the decoded graph equals the original
//!   exactly — same CSR arrays, same probability bits (`PartialEq` on
//!   `UncertainGraph` compares them all);
//! * the cached file has the expected UGB1 size shape (header + 2 edge
//!   endpoints + 1 probability per edge), so nothing was silently
//!   truncated.

use std::fs;
use std::path::PathBuf;
use ugraph_core::UncertainGraph;
use ugraph_gen::chung_lu::{chung_lu, ChungLuParams};
use ugraph_gen::probs::EdgeProbModel;
use ugraph_io::cache::{cache_path, load_or_build};

const N: usize = 300_000;
const M: usize = 2_000_000;

fn big_chung_lu() -> UncertainGraph {
    let mut rng = ugraph_gen::rng::rng_from_seed(0xCAFE);
    chung_lu(
        ChungLuParams {
            n: N,
            m: M,
            gamma: 2.5,
            rank_offset: 50.0,
        },
        EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 },
        &mut rng,
    )
    .with_name("cache-scale-CL")
}

#[test]
fn multi_million_edge_round_trip_and_reuse() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("ugraph-cache-scale-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let mut builds = 0usize;
    let g1 = load_or_build(&dir, "cl-2m", || {
        builds += 1;
        big_chung_lu()
    });
    assert_eq!(builds, 1);
    assert_eq!(g1.num_vertices(), N);
    assert_eq!(g1.num_edges(), M);

    // The cache file exists and is at least as large as the payload it
    // must hold: per edge two u32 endpoints + one f64 probability.
    let path = cache_path(&dir, "cl-2m");
    let size = fs::metadata(&path).expect("cache file written").len();
    assert!(
        size >= (M * (2 * 4 + 8)) as u64,
        "cache file suspiciously small: {size} bytes"
    );

    // Reuse: the second load must come from disk, bit-identical.
    let g2 = load_or_build(&dir, "cl-2m", || {
        builds += 1;
        big_chung_lu()
    });
    assert_eq!(builds, 1, "second load rebuilt instead of reusing");
    assert_eq!(g1, g2, "decoded graph differs from the built one");
    assert_eq!(g2.name(), "cache-scale-CL");

    // Spot-check the probability bits survived the binary round trip on
    // a few high-degree rows (hubs have the longest adjacency slices,
    // the most likely place for an offset bug at this scale).
    for v in 0..16u32 {
        assert_eq!(g1.neighbors(v), g2.neighbors(v), "row {v}");
        let a: Vec<u64> = g1.neighbor_probs(v).iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = g2.neighbor_probs(v).iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b, "probability bits differ in row {v}");
    }

    let _ = fs::remove_dir_all(&dir);
}
