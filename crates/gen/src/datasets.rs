//! The Table 1 dataset registry: deterministic stand-ins for every input
//! graph of the paper's evaluation.
//!
//! We do not ship the original data (STRING/BioGRID, DBLP, SNAP); each
//! dataset is synthesized at the paper's vertex/edge scale with a
//! generator matching its formation mechanism — see DESIGN.md's
//! substitution table for the rationale per dataset. All stand-ins are
//! deterministic given `(name, seed)`.
//!
//! Large datasets (DBLP with 685k vertices / 2.28M edges) accept a
//! `scale ∈ (0, 1]` so the full Figure 5/6 sweeps run in minutes; scale
//! 1.0 reproduces the paper's sizes.

use crate::affiliation::{affiliation, AffiliationParams, AffiliationProbs};
use crate::ba::barabasi_albert;
use crate::chung_lu::{chung_lu, ChungLuParams};
use crate::probs::EdgeProbModel;
use crate::rng::{derive_seed, rng_from_seed};
use ugraph_core::UncertainGraph;

/// Uniform-(0,1] probabilities — the paper's semi-synthetic assignment.
const UNIFORM: EdgeProbModel = EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 };

/// Which generator realizes a dataset.
#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Barabási–Albert with the given attachment count.
    Ba { m_attach: usize },
    /// Chung–Lu power law.
    ChungLu { gamma: f64, rank_offset: f64 },
    /// Affiliation / team projection.
    Affiliation {
        team_size_mean: f64,
        popularity_skew: f64,
        team_repeat: f64,
        probs: AffiliationProbs,
    },
}

/// One row of Table 1: the dataset's identity, the paper's reported size,
/// and the recipe that synthesizes our stand-in.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as used throughout the paper's figures.
    pub name: &'static str,
    /// Table 1 "Category" column.
    pub category: &'static str,
    /// Table 1 "Description" column.
    pub description: &'static str,
    /// Vertex count reported in Table 1.
    pub paper_n: usize,
    /// Edge count reported in Table 1.
    pub paper_m: usize,
    kind: Kind,
}

impl DatasetSpec {
    /// Build the stand-in at full paper scale.
    pub fn build(&self, seed: u64) -> UncertainGraph {
        self.build_scaled(seed, 1.0)
    }

    /// Build the stand-in with vertex and edge counts scaled by `scale`
    /// (clamped below at a 16-vertex floor). BA attachment counts are kept,
    /// so BA edge counts scale with `n` automatically.
    pub fn build_scaled(&self, seed: u64, scale: f64) -> UncertainGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let seed = derive_seed(seed, self.name);
        let mut rng = rng_from_seed(seed);
        let n = ((self.paper_n as f64 * scale).round() as usize).max(16);
        let m = ((self.paper_m as f64 * scale).round() as usize).min(n * (n - 1) / 2);
        let g = match self.kind {
            Kind::Ba { m_attach } => barabasi_albert(n, m_attach, UNIFORM, &mut rng),
            Kind::ChungLu { gamma, rank_offset } => chung_lu(
                ChungLuParams {
                    n,
                    m,
                    gamma,
                    rank_offset,
                },
                UNIFORM,
                &mut rng,
            ),
            Kind::Affiliation {
                team_size_mean,
                popularity_skew,
                team_repeat,
                probs,
            } => affiliation(
                AffiliationParams {
                    n,
                    m,
                    team_size_min: 2,
                    team_size_mean,
                    popularity_skew,
                    team_repeat,
                },
                probs,
                &mut rng,
            ),
        };
        let label = if scale < 1.0 {
            format!("{}@{scale}", self.name)
        } else {
            self.name.to_string()
        };
        g.with_name(label)
    }
}

/// All thirteen Table 1 datasets, in the paper's order.
pub fn table1() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Fruit-Fly",
            category: "Protein Protein Interaction network",
            description: "PPI for Fruit Fly from STRING Database (stand-in)",
            paper_n: 3751,
            paper_m: 3692,
            kind: Kind::Affiliation {
                team_size_mean: 2.4,
                popularity_skew: 0.6,
                team_repeat: 0.0,
                probs: AffiliationProbs::PerEdge(EdgeProbModel::StringLike),
            },
        },
        DatasetSpec {
            name: "DBLP10",
            category: "Social network",
            description: "Collaboration network from DBLP (stand-in)",
            paper_n: 684_911,
            paper_m: 2_284_991,
            // Heavy team repetition: stable groups publishing dozens of
            // papers drive co-authorship counts (and thus probabilities
            // 1 − e^{−c/10}) into the 0.9+ range the Figure 5c/6c sweeps
            // probe.
            kind: Kind::Affiliation {
                team_size_mean: 3.2,
                popularity_skew: 0.85,
                team_repeat: 0.85,
                probs: AffiliationProbs::CoAuthorship,
            },
        },
        DatasetSpec {
            name: "p2p-Gnutella08",
            category: "Internet peer-to-peer networks",
            description: "Gnutella network August 8 2002 (stand-in)",
            paper_n: 6301,
            paper_m: 20777,
            kind: Kind::ChungLu {
                gamma: 2.6,
                rank_offset: 20.0,
            },
        },
        DatasetSpec {
            name: "p2p-Gnutella04",
            category: "Internet peer-to-peer networks",
            description: "Gnutella network August 4 2003 (stand-in)",
            paper_n: 10879,
            paper_m: 39994,
            kind: Kind::ChungLu {
                gamma: 2.6,
                rank_offset: 20.0,
            },
        },
        DatasetSpec {
            name: "p2p-Gnutella09",
            category: "Internet peer-to-peer networks",
            description: "Gnutella network August 9 2003 (stand-in)",
            paper_n: 8114,
            paper_m: 26013,
            kind: Kind::ChungLu {
                gamma: 2.6,
                rank_offset: 20.0,
            },
        },
        DatasetSpec {
            name: "ca-GrQc",
            category: "Collaboration networks",
            description: "Arxiv General Relativity (stand-in)",
            paper_n: 5242,
            paper_m: 28980,
            // Large mean team size: GR collaborations are big (the real
            // ca-GrQc contains a 44-clique), which is what makes it the
            // most clique-rich input of the paper's Figure 3b.
            kind: Kind::Affiliation {
                team_size_mean: 5.0,
                popularity_skew: 0.8,
                team_repeat: 0.0,
                probs: AffiliationProbs::PerEdge(UNIFORM),
            },
        },
        DatasetSpec {
            name: "wiki-vote",
            category: "Social networks",
            description: "wikipedia who-votes-whom network (stand-in)",
            paper_n: 7118,
            paper_m: 103_689,
            kind: Kind::ChungLu {
                gamma: 2.1,
                rank_offset: 8.0,
            },
        },
        ba_spec("BA5000", 5000, 50032),
        ba_spec("BA6000", 6000, 60129),
        ba_spec("BA7000", 7000, 70204),
        ba_spec("BA8000", 8000, 80185),
        ba_spec("BA9000", 9000, 90418),
        ba_spec("BA10000", 10000, 99194),
    ]
}

fn ba_spec(name: &'static str, n: usize, paper_m: usize) -> DatasetSpec {
    DatasetSpec {
        name,
        category: "Barabási−Albert random graphs",
        description: "Random graph (Barabási–Albert, 10 edges per vertex)",
        paper_n: n,
        paper_m,
        // The paper's BA graphs average ~10 edges per vertex; attachment 10
        // reproduces m within ~0.3% (ours is exactly 45 + (n−10)·10).
        kind: Kind::Ba { m_attach: 10 },
    }
}

/// Look a dataset up by its Table 1 name (case-insensitive).
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    table1()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_thirteen_rows_like_table1() {
        assert_eq!(table1().len(), 13);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("wiki-vote").is_some());
        assert!(by_name("WIKI-VOTE").is_some());
        assert!(by_name("no-such-graph").is_none());
    }

    #[test]
    fn ba_graphs_match_paper_sizes_closely() {
        let spec = by_name("BA5000").unwrap();
        let g = spec.build(42);
        assert_eq!(g.num_vertices(), 5000);
        let m = g.num_edges() as f64;
        assert!(
            (m - spec.paper_m as f64).abs() / (spec.paper_m as f64) < 0.01,
            "BA5000 m = {m} vs paper {}",
            spec.paper_m
        );
    }

    #[test]
    fn chung_lu_standins_hit_table1_sizes_exactly() {
        for name in ["p2p-Gnutella08", "wiki-vote"] {
            let spec = by_name(name).unwrap();
            let g = spec.build(42);
            assert_eq!(g.num_vertices(), spec.paper_n, "{name}");
            assert_eq!(g.num_edges(), spec.paper_m, "{name}");
        }
    }

    #[test]
    fn affiliation_standins_hit_table1_sizes_approximately() {
        let spec = by_name("ca-GrQc").unwrap();
        let g = spec.build(42);
        assert_eq!(g.num_vertices(), spec.paper_n);
        let m = g.num_edges() as f64;
        assert!(
            (m - spec.paper_m as f64) / (spec.paper_m as f64) < 0.05,
            "ca-GrQc m = {m}"
        );
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let spec = by_name("p2p-Gnutella09").unwrap();
        assert_eq!(spec.build(7), spec.build(7));
        assert_ne!(spec.build(7), spec.build(8));
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let spec = by_name("ca-GrQc").unwrap();
        let g = spec.build_scaled(42, 0.1);
        assert_eq!(g.num_vertices(), 524);
        assert!(g.num_edges() >= 2898);
        assert!(g.name().contains("@0.1"));
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let _ = by_name("BA5000").unwrap().build_scaled(1, 0.0);
    }

    #[test]
    fn fruit_fly_is_sparse_like_the_paper() {
        let spec = by_name("Fruit-Fly").unwrap();
        let g = spec.build(42);
        assert_eq!(g.num_vertices(), 3751);
        // m < n in the paper (3692 < 3751): extremely sparse.
        let m = g.num_edges() as f64;
        assert!((m - 3692.0).abs() / 3692.0 < 0.1, "m = {m}");
    }
}
