//! Planted-clique workloads: graphs with *known* α-maximal cliques.
//!
//! Evaluating a miner on real data only shows counts and runtimes; a
//! planted workload additionally gives ground truth to recover. The
//! generator embeds vertex-disjoint cliques with controlled internal edge
//! probabilities into a background of random noise edges, and reports the
//! plants so a test can assert each is found (or correctly rejected at
//! thresholds above its clique probability).

use crate::probs::EdgeProbModel;
use rand::Rng;
use std::collections::HashSet;
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// Parameters for [`planted_cliques`].
#[derive(Debug, Clone, Copy)]
pub struct PlantedParams {
    /// Total vertices.
    pub n: usize,
    /// Number of planted cliques (vertex-disjoint).
    pub num_plants: usize,
    /// Vertices per plant.
    pub plant_size: usize,
    /// Edge probability inside each plant (high ⇒ reliable community).
    pub plant_prob: f64,
    /// Number of random background edges (pairs not inside a plant).
    pub noise_edges: usize,
    /// Probability model for background edges (keep the values *below*
    /// `plant_prob` if you want a threshold that isolates the plants).
    pub noise_model: EdgeProbModel,
}

/// A generated planted-clique instance.
#[derive(Debug, Clone)]
pub struct PlantedInstance {
    /// The graph.
    pub graph: UncertainGraph,
    /// The planted vertex sets (each sorted ascending).
    pub plants: Vec<Vec<VertexId>>,
    /// The clique probability of each plant (`plant_prob^C(size,2)`).
    pub plant_clique_prob: f64,
}

/// Generate a planted-clique instance. Plants occupy the lowest
/// `num_plants · plant_size` vertex ids (disjoint, contiguous); noise
/// edges avoid plant-internal pairs but may touch plant vertices.
///
/// # Panics
/// Panics if the plants do not fit in `n` or sizes are degenerate.
pub fn planted_cliques<R: Rng + ?Sized>(params: PlantedParams, rng: &mut R) -> PlantedInstance {
    let PlantedParams {
        n,
        num_plants,
        plant_size,
        plant_prob,
        noise_edges,
        noise_model,
    } = params;
    assert!(plant_size >= 2, "plants must have at least 2 vertices");
    assert!(
        num_plants * plant_size <= n,
        "plants do not fit: {num_plants}×{plant_size} > {n}"
    );
    assert!(plant_prob > 0.0 && plant_prob <= 1.0, "invalid plant_prob");

    let mut b = GraphBuilder::new(n);
    let mut plants = Vec::with_capacity(num_plants);
    let mut plant_of = vec![usize::MAX; n];
    for k in 0..num_plants {
        let base = (k * plant_size) as VertexId;
        let members: Vec<VertexId> = (base..base + plant_size as VertexId).collect();
        for (i, &u) in members.iter().enumerate() {
            plant_of[u as usize] = k;
            for &v in &members[i + 1..] {
                b.add_edge(u, v, plant_prob).expect("plant edges valid");
            }
        }
        plants.push(members);
    }

    // Background noise: uniformly random pairs, skipping pairs internal to
    // one plant (those already exist) and duplicates.
    let mut used: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(noise_edges * 2);
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = 100 * noise_edges + 1000;
    while placed < noise_edges && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        let same_plant =
            plant_of[u as usize] != usize::MAX && plant_of[u as usize] == plant_of[v as usize];
        if same_plant || !used.insert(key) {
            continue;
        }
        b.add_edge(key.0, key.1, noise_model.sample(rng))
            .expect("noise edges valid");
        placed += 1;
    }

    let pairs = plant_size * (plant_size - 1) / 2;
    let plant_clique_prob = plant_prob.powi(pairs as i32);
    PlantedInstance {
        graph: b.build().with_name(format!(
            "planted(n={n}, {num_plants}x{plant_size}@{plant_prob})"
        )),
        plants,
        plant_clique_prob,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn params() -> PlantedParams {
        PlantedParams {
            n: 200,
            num_plants: 4,
            plant_size: 6,
            plant_prob: 0.95,
            noise_edges: 300,
            noise_model: EdgeProbModel::Uniform { lo: 0.0, hi: 0.5 },
        }
    }

    #[test]
    fn structure_is_as_declared() {
        let mut rng = rng_from_seed(1);
        let inst = planted_cliques(params(), &mut rng);
        assert_eq!(inst.plants.len(), 4);
        for plant in &inst.plants {
            assert_eq!(plant.len(), 6);
            for (i, &u) in plant.iter().enumerate() {
                for &v in &plant[i + 1..] {
                    assert_eq!(inst.graph.edge_prob_raw(u, v), Some(0.95));
                }
            }
        }
        let expected = 0.95f64.powi(15);
        assert!((inst.plant_clique_prob - expected).abs() < 1e-12);
        inst.graph.check_invariants().unwrap();
    }

    #[test]
    fn plants_are_disjoint() {
        let mut rng = rng_from_seed(2);
        let inst = planted_cliques(params(), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for plant in &inst.plants {
            for &v in plant {
                assert!(seen.insert(v), "vertex {v} in two plants");
            }
        }
    }

    #[test]
    fn noise_respects_model_bounds() {
        let mut rng = rng_from_seed(3);
        let inst = planted_cliques(params(), &mut rng);
        for (u, v, p) in inst.graph.edges() {
            let internal = inst
                .plants
                .iter()
                .any(|pl| pl.contains(&u) && pl.contains(&v));
            if !internal {
                assert!(p <= 0.5, "noise edge ({u},{v}) has p={p}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn oversized_plants_rejected() {
        let mut rng = rng_from_seed(4);
        let _ = planted_cliques(
            PlantedParams {
                n: 10,
                num_plants: 3,
                plant_size: 4,
                ..params()
            },
            &mut rng,
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = planted_cliques(params(), &mut rng_from_seed(9));
        let b = planted_cliques(params(), &mut rng_from_seed(9));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.plants, b.plants);
    }
}
