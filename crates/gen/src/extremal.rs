//! Extremal constructions from Section 3.
//!
//! * [`lemma1_graph`] — the witness of the lower bound in Lemma 1: the
//!   complete uncertain graph `K_n` with uniform probability
//!   `q = α^{1/κ}`, `κ = C(⌊n/2⌋, 2)`. Every ⌊n/2⌋-subset has clique
//!   probability exactly α, every larger set falls below α, so the
//!   α-maximal cliques are exactly the `C(n, ⌊n/2⌋)` half-size subsets.
//! * [`moon_moser_graph`] — the deterministic extremal family: complete
//!   multipartite graphs with parts of size 3 (adjusted for `n mod 3`),
//!   attaining Moon–Moser's `3^{n/3}` maximal cliques.

use ugraph_core::{GraphBuilder, Prob, UncertainGraph, VertexId};

/// Build the Lemma 1 extremal uncertain graph for `n ≥ 2` vertices and
/// `0 < α < 1`. Its α-maximal cliques are exactly the subsets of size
/// `⌊n/2⌋`, of which there are `C(n, ⌊n/2⌋)` — the maximum possible
/// (Theorem 1).
///
/// For `n ∈ {2, 3}` the half-size subsets are singletons, realized by
/// making every edge fail the threshold (`q = α/2`).
///
/// # Panics
/// Panics unless `n ≥ 2` and `0 < α < 1` (at `α = 1` the bound is the
/// smaller Moon–Moser number; see [`moon_moser_graph`]).
pub fn lemma1_graph(n: usize, alpha: f64) -> UncertainGraph {
    assert!(n >= 2, "extremal construction needs n ≥ 2");
    assert!(alpha > 0.0 && alpha < 1.0, "Lemma 1 requires 0 < α < 1");
    let half = n / 2;
    let kappa = half * half.saturating_sub(1) / 2; // C(⌊n/2⌋, 2)
    let q = if kappa == 0 {
        // Half-size sets are singletons/pairs with no internal edges to
        // tune; suppress every edge below the threshold instead.
        alpha / 2.0
    } else {
        // powf rounding can leave the κ-fold product a few ULPs below α —
        // and different enumerators multiply the κ factors in different
        // orders (the oracle goes pairwise left-to-right, MULE accumulates
        // per-vertex factors), each with its own rounding. A relative nudge
        // of 10⁻¹² inflates the product by ~κ·10⁻¹², far above the ~κ·ε
        // spread between orderings and far below the q^⌊n/2⌋ gap to the
        // next clique size, so *every* ordering classifies the half-size
        // sets as α-cliques and their supersets as not.
        let mut q = alpha.powf(1.0 / kappa as f64) * (1.0 + 1e-12);
        while seq_pow(q, kappa) < alpha {
            q = next_up(q);
        }
        q.min(1.0 - f64::EPSILON)
    };
    let q = Prob::new(q).expect("α^(1/κ) ∈ (0, 1) for 0 < α < 1");
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v, q.get())
                .expect("complete graph edges valid");
        }
    }
    b.build().with_name(format!("lemma1(n={n}, alpha={alpha})"))
}

/// `q` multiplied by itself `k` times, in the same left-to-right order the
/// clique-probability oracle uses — FP-exact agreement matters here.
fn seq_pow(q: f64, k: usize) -> f64 {
    let mut acc = 1.0f64;
    for _ in 0..k {
        acc *= q;
    }
    acc
}

/// Smallest `f64` strictly greater than `x` (for positive finite `x`).
fn next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

/// Build the Moon–Moser extremal deterministic graph on `n ≥ 2` vertices:
/// complete multipartite with independent parts of size 3 (one part of
/// size 2 when `n ≡ 2 (mod 3)`, two parts of size 2 when `n ≡ 1`). All
/// edges have probability 1, so its maximal cliques — one vertex per part —
/// are exactly the Moon–Moser number [`mule-bounds`-style `3^{n/3}` etc.].
pub fn moon_moser_graph(n: usize) -> UncertainGraph {
    assert!(n >= 2, "need n ≥ 2");
    // Part sizes: as many 3s as possible, remainder as 2s.
    let mut sizes = Vec::new();
    match n % 3 {
        0 => sizes.extend(std::iter::repeat_n(3, n / 3)),
        1 => {
            // n ≥ 4 here (n=1 excluded by assert).
            sizes.extend(std::iter::repeat_n(3, n / 3 - 1));
            sizes.push(2);
            sizes.push(2);
        }
        _ => {
            sizes.extend(std::iter::repeat_n(3, n / 3));
            sizes.push(2);
        }
    }
    // part[v] = index of v's independent part.
    let mut part = Vec::with_capacity(n);
    for (pi, &s) in sizes.iter().enumerate() {
        part.extend(std::iter::repeat_n(pi, s));
    }
    debug_assert_eq!(part.len(), n);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if part[u as usize] != part[v as usize] {
                b.add_edge(u, v, 1.0).expect("valid edge");
            }
        }
    }
    b.build().with_name(format!("moon-moser(n={n})"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_core::clique;

    #[test]
    fn lemma1_half_sets_sit_exactly_at_alpha() {
        for (n, alpha) in [(6usize, 0.3f64), (7, 0.5), (8, 0.01), (5, 0.9)] {
            let g = lemma1_graph(n, alpha);
            let half = n / 2;
            let set: Vec<u32> = (0..half as u32).collect();
            let q = clique::clique_probability(&g, &set).unwrap();
            assert!(
                (q - alpha).abs() < 1e-9,
                "n={n}, α={alpha}: half-set prob {q}"
            );
            let bigger: Vec<u32> = (0..(half + 1) as u32).collect();
            assert!(clique::clique_probability(&g, &bigger).unwrap() < alpha);
        }
    }

    #[test]
    fn lemma1_half_sets_are_maximal() {
        let g = lemma1_graph(6, 0.4);
        assert!(clique::is_alpha_maximal(&g, &[0, 1, 2], 0.4));
        assert!(clique::is_alpha_maximal(&g, &[1, 3, 5], 0.4));
        assert!(!clique::is_alpha_maximal(&g, &[0, 1], 0.4)); // extendable
        assert!(!clique::is_alpha_clique(&g, &[0, 1, 2, 3], 0.4));
    }

    #[test]
    fn lemma1_small_n_degenerates_to_singletons() {
        for n in [2usize, 3] {
            let g = lemma1_graph(n, 0.5);
            for v in 0..n as u32 {
                assert!(clique::is_alpha_maximal(&g, &[v], 0.5), "n={n}, v={v}");
            }
            assert!(!clique::is_alpha_clique(&g, &[0, 1], 0.5));
        }
    }

    #[test]
    #[should_panic]
    fn lemma1_rejects_alpha_one() {
        let _ = lemma1_graph(5, 1.0);
    }

    #[test]
    fn moon_moser_structure() {
        let g = moon_moser_graph(6); // K(3,3)
        assert_eq!(g.num_vertices(), 6);
        // Parts {0,1,2} and {3,4,5}: no intra-part edges.
        assert!(!g.contains_edge(0, 1));
        assert!(!g.contains_edge(3, 5));
        assert!(g.contains_edge(0, 3));
        assert_eq!(g.num_edges(), 9);
    }

    #[test]
    fn moon_moser_remainder_handling() {
        assert_eq!(moon_moser_graph(4).num_vertices(), 4); // 2 + 2
        assert_eq!(moon_moser_graph(5).num_vertices(), 5); // 3 + 2
        assert_eq!(moon_moser_graph(7).num_vertices(), 7); // 3 + 2 + 2

        // K(2,2): 4 edges.
        assert_eq!(moon_moser_graph(4).num_edges(), 4);
    }
}
