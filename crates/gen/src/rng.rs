//! Seeded RNG helpers: every generator in this crate is deterministic
//! given a seed, so datasets and experiments are exactly reproducible.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A fast, seedable RNG for graph generation. `SmallRng` (xoshiro-family)
/// is not cryptographic — exactly right for workload synthesis.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a stream-specific seed from a base seed and a label, so that
/// e.g. each Table-1 dataset gets an independent, stable stream.
/// (FNV-1a over the label, folded into the seed.)
pub fn derive_seed(base: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    base ^ h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_different_seeds() {
        let s1 = derive_seed(1, "ba5000");
        let s2 = derive_seed(1, "ba6000");
        assert_ne!(s1, s2);
        assert_eq!(s1, derive_seed(1, "ba5000"));
    }
}
