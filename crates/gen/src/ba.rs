//! Barabási–Albert preferential-attachment graphs — the paper's synthetic
//! family (`BA5000` … `BA10000`, Table 1), generated "using the
//! Barabási−Albert model" with edge probabilities assigned uniformly at
//! random.
//!
//! Standard construction: start from a small complete seed of `m0 = m`
//! vertices; each subsequent vertex attaches to `m` distinct existing
//! vertices chosen proportionally to their degree. Preferential selection
//! uses the classic repeated-endpoints trick (every edge endpoint is
//! appended to a list; uniform draws from the list are degree-biased).

use crate::probs::EdgeProbModel;
use rand::Rng;
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// Generate a BA graph on `n` vertices with `m_attach` edges per new
/// vertex, assigning edge probabilities from `probs`.
///
/// # Panics
/// Panics unless `1 ≤ m_attach < n`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m_attach: usize,
    probs: EdgeProbModel,
    rng: &mut R,
) -> UncertainGraph {
    assert!(m_attach >= 1 && m_attach < n, "need 1 ≤ m_attach < n");
    let m0 = m_attach; // complete seed on m_attach vertices
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m_attach);
    // Degree-biased endpoint pool.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    for u in 0..m0 as VertexId {
        for v in (u + 1)..m0 as VertexId {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    // Seed of size 1 has no edges; make sure the pool is non-empty so the
    // first attachment can happen (attach uniformly in that case).
    if pool.is_empty() {
        pool.push(0);
    }
    let mut targets: Vec<VertexId> = Vec::with_capacity(m_attach);
    for v in m0..n {
        let v = v as VertexId;
        targets.clear();
        // Draw m distinct targets by preferential attachment; rejection on
        // duplicates terminates fast because m ≪ current vertex count.
        while targets.len() < m_attach {
            let cand = pool[rng.gen_range(0..pool.len())];
            if cand != v && !targets.contains(&cand) {
                targets.push(cand);
            }
        }
        for &t in &targets {
            edges.push((t, v));
            pool.push(t);
            pool.push(v);
        }
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v, probs.sample(rng))
            .expect("generated edges are valid");
    }
    b.build()
}

/// Number of edges the construction yields: `C(m,2)` seed edges plus `m`
/// per attached vertex.
pub fn ba_edge_count(n: usize, m_attach: usize) -> usize {
    m_attach * (m_attach - 1) / 2 + (n - m_attach) * m_attach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn edge_count_is_deterministic_formula() {
        let mut rng = rng_from_seed(1);
        for (n, m) in [(50, 3), (100, 10), (200, 1)] {
            let g = barabasi_albert(n, m, EdgeProbModel::Fixed(0.5), &mut rng);
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), ba_edge_count(n, m), "n={n}, m={m}");
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn minimum_degree_is_attachment_count() {
        let mut rng = rng_from_seed(2);
        let g = barabasi_albert(100, 5, EdgeProbModel::Fixed(0.5), &mut rng);
        for v in g.vertices() {
            assert!(g.degree(v) >= 5, "vertex {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn produces_skewed_degrees() {
        let mut rng = rng_from_seed(3);
        let g = barabasi_albert(2000, 4, EdgeProbModel::Fixed(0.5), &mut rng);
        // Preferential attachment: the hub should far exceed the median.
        let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(max >= 5 * median, "max {max} vs median {median}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = barabasi_albert(
            80,
            3,
            EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 },
            &mut rng_from_seed(9),
        );
        let g2 = barabasi_albert(
            80,
            3,
            EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 },
            &mut rng_from_seed(9),
        );
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_attachment() {
        let mut rng = rng_from_seed(1);
        let _ = barabasi_albert(5, 5, EdgeProbModel::Fixed(0.5), &mut rng);
    }

    #[test]
    fn m_attach_one_builds_tree_plus_seed() {
        let mut rng = rng_from_seed(4);
        let g = barabasi_albert(64, 1, EdgeProbModel::Fixed(0.5), &mut rng);
        assert_eq!(g.num_edges(), 63); // a random recursive tree
    }
}
