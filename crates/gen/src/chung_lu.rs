//! Chung–Lu style power-law graphs: stand-ins for the SNAP topologies
//! (wiki-vote, p2p-Gnutella) whose raw data we do not ship.
//!
//! The generator targets a vertex count `n`, an edge count `m`, and a
//! power-law exponent `gamma` for the degree tail. Vertices get weights
//! `w_i ∝ (i + i₀)^{−1/(γ−1)}` (a Zipf ranking); edges are formed by
//! drawing both endpoints weight-proportionally and rejecting self-loops
//! and duplicates. Expected degrees are proportional to the weights, which
//! reproduces the heavy-tailed degree sequence and — crucially for the
//! paper's experiments — the dense high-degree core that makes maximal
//! clique enumeration expensive on wiki-vote.

use crate::probs::EdgeProbModel;
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use std::collections::HashSet;
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// Parameters for [`chung_lu`].
#[derive(Debug, Clone, Copy)]
pub struct ChungLuParams {
    /// Number of vertices.
    pub n: usize,
    /// Target number of distinct edges (achieved exactly unless the weight
    /// distribution cannot support it; see `max_attempts`).
    pub m: usize,
    /// Power-law exponent of the degree distribution (2 < γ ≤ 3.5 typical;
    /// smaller γ → heavier tail → denser core).
    pub gamma: f64,
    /// Rank offset `i₀` damping the largest weights (larger → flatter).
    pub rank_offset: f64,
}

/// Generate a Chung–Lu style graph. Deterministic given the RNG state.
pub fn chung_lu<R: Rng + ?Sized>(
    params: ChungLuParams,
    probs: EdgeProbModel,
    rng: &mut R,
) -> UncertainGraph {
    let ChungLuParams {
        n,
        m,
        gamma,
        rank_offset,
    } = params;
    assert!(n >= 2, "need at least two vertices");
    assert!(gamma > 1.0, "gamma must exceed 1");
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "m = {m} exceeds C({n},2)");

    let exponent = 1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..n)
        .map(|i| (i as f64 + rank_offset).powf(-exponent))
        .collect();
    let dist = WeightedIndex::new(&weights).expect("positive weights");

    let mut used: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    // Rejection cap: heavy-tailed weights occasionally make the last few
    // edges hard to place; fall back to uniform pairs so the target m is
    // always met (a tiny fraction of edges, shape unaffected).
    let mut attempts = 0usize;
    let max_attempts = 50 * m + 1000;
    while used.len() < m {
        attempts += 1;
        let (u, v) = if attempts <= max_attempts {
            (dist.sample(rng) as VertexId, dist.sample(rng) as VertexId)
        } else {
            (
                rng.gen_range(0..n as VertexId),
                rng.gen_range(0..n as VertexId),
            )
        };
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if used.insert(key) {
            b.add_edge(key.0, key.1, probs.sample(rng))
                .expect("valid pair");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn params(n: usize, m: usize) -> ChungLuParams {
        ChungLuParams {
            n,
            m,
            gamma: 2.3,
            rank_offset: 10.0,
        }
    }

    #[test]
    fn hits_exact_edge_target() {
        let mut rng = rng_from_seed(1);
        for (n, m) in [(100, 300), (500, 1500), (50, 0)] {
            let g = chung_lu(params(n, m), EdgeProbModel::Fixed(0.5), &mut rng);
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), m);
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn low_ranks_are_hubs() {
        let mut rng = rng_from_seed(2);
        let g = chung_lu(params(2000, 8000), EdgeProbModel::Fixed(0.5), &mut rng);
        let head: usize = (0..20u32).map(|v| g.degree(v)).sum();
        let tail: usize = (1980..2000u32).map(|v| g.degree(v)).sum();
        assert!(
            head > 5 * tail.max(1),
            "head degree {head} should dwarf tail {tail}"
        );
    }

    #[test]
    fn heavier_tail_with_smaller_gamma() {
        let mut r1 = rng_from_seed(3);
        let mut r2 = rng_from_seed(3);
        let heavy = chung_lu(
            ChungLuParams {
                n: 1000,
                m: 5000,
                gamma: 2.05,
                rank_offset: 5.0,
            },
            EdgeProbModel::Fixed(0.5),
            &mut r1,
        );
        let light = chung_lu(
            ChungLuParams {
                n: 1000,
                m: 5000,
                gamma: 3.2,
                rank_offset: 5.0,
            },
            EdgeProbModel::Fixed(0.5),
            &mut r2,
        );
        assert!(heavy.max_degree() > light.max_degree());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = chung_lu(
            params(200, 600),
            EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 },
            &mut rng_from_seed(9),
        );
        let b = chung_lu(
            params(200, 600),
            EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 },
            &mut rng_from_seed(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn dense_request_still_terminates() {
        let mut rng = rng_from_seed(4);
        // m close to the maximum forces the uniform fallback path.
        let g = chung_lu(params(20, 180), EdgeProbModel::Fixed(0.5), &mut rng);
        assert_eq!(g.num_edges(), 180);
    }

    #[test]
    #[should_panic]
    fn rejects_impossible_m() {
        let mut rng = rng_from_seed(5);
        let _ = chung_lu(params(10, 46), EdgeProbModel::Fixed(0.5), &mut rng);
    }
}
