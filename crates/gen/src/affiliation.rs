//! Affiliation (team-projection) graphs: the stand-in for collaboration
//! networks (ca-GrQc, DBLP) and protein complexes (the Fruit-Fly PPI).
//!
//! Collaboration networks are projections of a bipartite author–paper
//! structure: every paper contributes a clique over its authors. That
//! projection is precisely why such networks teem with maximal cliques
//! (the paper's Figure 3b shows ca-GrQc topping 1.6M α-maximal cliques)
//! and why LARGE–MULE's size filtering shines on DBLP. The generator
//! reproduces the mechanism directly:
//!
//! 1. draw teams (papers / complexes) with sizes from a shifted geometric
//!    distribution;
//! 2. fill each team with distinct members chosen by a Zipf popularity
//!    weighting (prolific authors appear in many teams);
//! 3. project: members of a team are pairwise connected; repeated
//!    co-membership accumulates a count `c` per pair;
//! 4. assign probabilities per edge — either an [`EdgeProbModel`] or the
//!    DBLP formula `1 − e^{−c/10}` on the co-membership counts.

use crate::probs::{coauthorship_prob, EdgeProbModel};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use std::collections::HashMap;
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// Parameters for [`affiliation`].
#[derive(Debug, Clone, Copy)]
pub struct AffiliationParams {
    /// Number of vertices (authors / proteins).
    pub n: usize,
    /// Target number of distinct projected edges; generation stops at the
    /// first team that reaches it (so the realized count overshoots by at
    /// most one team's worth of pairs).
    pub m: usize,
    /// Smallest team size (≥ 2 — singleton teams project nothing).
    pub team_size_min: usize,
    /// Mean team size (shifted geometric above `team_size_min`).
    pub team_size_mean: f64,
    /// Zipf exponent for member popularity (0 = uniform membership;
    /// ~0.7–1.0 reproduces collaboration-network degree skew).
    pub popularity_skew: f64,
    /// Probability that a new team is a *repeat* of an earlier team
    /// (chosen by a Pólya urn, so repeat counts are heavy-tailed). Real
    /// collaborations are stable: the same group publishes again and
    /// again, which is what drives DBLP's co-authorship counts — and
    /// hence `1 − e^{−c/10}` probabilities — up to the 0.9+ range the
    /// paper's Figure 5c/6c sweeps rely on. 0 disables repetition.
    pub team_repeat: f64,
}

/// How to assign probabilities to projected edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AffiliationProbs {
    /// Independent draw per edge (the paper's semi-synthetic style).
    PerEdge(EdgeProbModel),
    /// DBLP co-authorship strength `1 − e^{−c/10}` from the accumulated
    /// co-membership count `c`.
    CoAuthorship,
}

/// Generate an affiliation-projection uncertain graph.
pub fn affiliation<R: Rng + ?Sized>(
    params: AffiliationParams,
    prob_mode: AffiliationProbs,
    rng: &mut R,
) -> UncertainGraph {
    let AffiliationParams {
        n,
        m,
        team_size_min,
        team_size_mean,
        popularity_skew,
        team_repeat,
    } = params;
    assert!(n >= 2, "need at least two vertices");
    assert!(
        (0.0..1.0).contains(&team_repeat),
        "team_repeat must be in [0, 1)"
    );
    assert!(team_size_min >= 2, "teams of size < 2 project no edges");
    assert!(
        team_size_mean >= team_size_min as f64,
        "mean team size below the minimum"
    );
    assert!(m <= n * (n - 1) / 2, "m exceeds C(n,2)");

    // Shifted geometric: extra = failures before success at rate q, so
    // E[size] = min + (1−q)/q.
    let mean_extra = team_size_mean - team_size_min as f64;
    let q = 1.0 / (1.0 + mean_extra);

    let weights: Vec<f64> = (0..n)
        .map(|i| (i as f64 + 10.0).powf(-popularity_skew))
        .collect();
    let member_dist = WeightedIndex::new(&weights).expect("positive weights");

    let mut co_counts: HashMap<(VertexId, VertexId), u32> = HashMap::with_capacity(m * 2);
    // Fresh teams are remembered so later "papers" can come from the same
    // group; the urn holds one entry per emission, so sampling it picks a
    // team with probability proportional to how often it already published
    // (preferential repetition → heavy-tailed co-authorship counts).
    let mut teams: Vec<Vec<VertexId>> = Vec::new();
    let mut urn: Vec<usize> = Vec::new();
    let mut fresh: Vec<VertexId> = Vec::new();
    while co_counts.len() < m {
        let team: &[VertexId] = if !teams.is_empty() && rng.gen::<f64>() < team_repeat {
            let idx = urn[rng.gen_range(0..urn.len())];
            urn.push(idx);
            &teams[idx]
        } else {
            // Team size: shifted geometric.
            let mut size = team_size_min;
            while rng.gen::<f64>() >= q && size < n.min(team_size_min + 50) {
                size += 1;
            }
            // Distinct members by popularity.
            fresh.clear();
            while fresh.len() < size {
                let cand = member_dist.sample(rng) as VertexId;
                if !fresh.contains(&cand) {
                    fresh.push(cand);
                }
            }
            teams.push(fresh.clone());
            urn.push(teams.len() - 1);
            teams.last().expect("just pushed")
        };
        // Project the team clique.
        for i in 0..team.len() {
            for j in (i + 1)..team.len() {
                let (a, b) = if team[i] < team[j] {
                    (team[i], team[j])
                } else {
                    (team[j], team[i])
                };
                *co_counts.entry((a, b)).or_insert(0) += 1;
            }
        }
    }

    let mut builder = GraphBuilder::with_capacity(n, co_counts.len());
    // Deterministic edge order for reproducible probability streams.
    let mut entries: Vec<((VertexId, VertexId), u32)> = co_counts.into_iter().collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    for ((u, v), c) in entries {
        let p = match prob_mode {
            AffiliationProbs::PerEdge(model) => model.sample(rng),
            AffiliationProbs::CoAuthorship => coauthorship_prob(c),
        };
        builder
            .add_edge(u, v, p)
            .expect("projected edges are valid");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use ugraph_core::stats::global_clustering;

    fn params(n: usize, m: usize) -> AffiliationParams {
        AffiliationParams {
            n,
            m,
            team_size_min: 2,
            team_size_mean: 3.0,
            popularity_skew: 0.8,
            team_repeat: 0.0,
        }
    }

    #[test]
    fn reaches_edge_target_with_bounded_overshoot() {
        let mut rng = rng_from_seed(1);
        let g = affiliation(params(500, 1500), AffiliationProbs::CoAuthorship, &mut rng);
        assert!(g.num_edges() >= 1500);
        // Overshoot bounded by one team's pair count (≤ C(52,2)).
        assert!(
            g.num_edges() < 1500 + 1326,
            "overshoot too large: {}",
            g.num_edges()
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn projection_is_clique_rich() {
        // Team projections must have far higher clustering than an ER graph
        // of the same density (which is ~m / C(n,2) ≈ 0.012).
        let mut rng = rng_from_seed(2);
        let g = affiliation(params(500, 1500), AffiliationProbs::CoAuthorship, &mut rng);
        assert!(
            global_clustering(&g) > 0.15,
            "clustering {} too low for a projection graph",
            global_clustering(&g)
        );
    }

    #[test]
    fn coauthorship_probs_take_formula_values() {
        let mut rng = rng_from_seed(3);
        let g = affiliation(params(300, 900), AffiliationProbs::CoAuthorship, &mut rng);
        // Every probability is 1 − e^{−c/10} for integer c ≥ 1.
        for (_, _, p) in g.edges() {
            let c = -10.0 * (1.0 - p).ln();
            let rounded = c.round();
            assert!(
                (c - rounded).abs() < 1e-9 && rounded >= 1.0,
                "probability {p} not of co-authorship form"
            );
        }
    }

    #[test]
    fn per_edge_model_respected() {
        let mut rng = rng_from_seed(4);
        let g = affiliation(
            params(200, 500),
            AffiliationProbs::PerEdge(EdgeProbModel::Fixed(0.42)),
            &mut rng,
        );
        for (_, _, p) in g.edges() {
            assert_eq!(p, 0.42);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = affiliation(
            params(150, 400),
            AffiliationProbs::CoAuthorship,
            &mut rng_from_seed(7),
        );
        let b = affiliation(
            params(150, 400),
            AffiliationProbs::CoAuthorship,
            &mut rng_from_seed(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn popular_members_have_higher_degree() {
        let mut rng = rng_from_seed(5);
        let g = affiliation(
            AffiliationParams {
                popularity_skew: 1.0,
                ..params(1000, 4000)
            },
            AffiliationProbs::CoAuthorship,
            &mut rng,
        );
        let head: usize = (0..20u32).map(|v| g.degree(v)).sum();
        let tail: usize = (980..1000u32).map(|v| g.degree(v)).sum();
        assert!(head > 3 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn team_repetition_creates_heavy_coauthorship_counts() {
        let mut plain_rng = rng_from_seed(8);
        let mut repeat_rng = rng_from_seed(8);
        let plain = affiliation(
            params(300, 800),
            AffiliationProbs::CoAuthorship,
            &mut plain_rng,
        );
        let repeated = affiliation(
            AffiliationParams {
                team_repeat: 0.8,
                ..params(300, 800)
            },
            AffiliationProbs::CoAuthorship,
            &mut repeat_rng,
        );
        // With p = 1 − e^{−c/10}, heavy counts mean high max probability.
        let max_p =
            |g: &ugraph_core::UncertainGraph| g.edges().map(|(_, _, p)| p).fold(0.0f64, f64::max);
        assert!(
            max_p(&repeated) > max_p(&plain),
            "repetition should create heavier edges: {} vs {}",
            max_p(&repeated),
            max_p(&plain)
        );
        assert!(max_p(&repeated) > 0.6, "some group should publish a lot");
    }

    #[test]
    #[should_panic]
    fn rejects_repeat_probability_one() {
        let mut rng = rng_from_seed(10);
        let _ = affiliation(
            AffiliationParams {
                team_repeat: 1.0,
                ..params(10, 5)
            },
            AffiliationProbs::CoAuthorship,
            &mut rng,
        );
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_teams() {
        let mut rng = rng_from_seed(6);
        let _ = affiliation(
            AffiliationParams {
                team_size_min: 1,
                ..params(10, 5)
            },
            AffiliationProbs::CoAuthorship,
            &mut rng,
        );
    }
}
