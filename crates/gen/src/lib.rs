//! # ugraph-gen — workload generators and dataset stand-ins
//!
//! Synthesizes every input of the paper's evaluation (Section 5, Table 1):
//!
//! * [`ba`] — Barabási–Albert graphs (`BA5000` … `BA10000`);
//! * [`chung_lu`] — power-law stand-ins for the SNAP topologies
//!   (wiki-vote, p2p-Gnutella);
//! * [`affiliation`] — team-projection stand-ins for collaboration and
//!   protein-complex networks (ca-GrQc, DBLP, Fruit-Fly PPI);
//! * [`er`] — Erdős–Rényi graphs for randomized testing;
//! * [`extremal`] — the Lemma 1 and Moon–Moser extremal constructions;
//! * [`probs`] — edge-probability models (uniform, STRING-like,
//!   co-authorship `1 − e^{−c/10}`);
//! * [`datasets`] — the Table 1 registry tying it all together.
//!
//! Everything is deterministic given a seed.
//!
//! ```
//! use ugraph_gen::datasets;
//! let g = datasets::by_name("BA5000").unwrap().build_scaled(42, 0.01);
//! assert!(g.num_vertices() >= 16);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affiliation;
pub mod ba;
pub mod chung_lu;
pub mod datasets;
pub mod er;
pub mod extremal;
pub mod planted;
pub mod probs;
pub mod rng;

pub use affiliation::{AffiliationParams, AffiliationProbs};
pub use chung_lu::ChungLuParams;
pub use datasets::DatasetSpec;
pub use planted::{PlantedInstance, PlantedParams};
pub use probs::EdgeProbModel;
