//! Erdős–Rényi random graphs: `G(n, m)` (exactly `m` edges) and
//! `G(n, p)` (each pair independently).
//!
//! Not part of the paper's evaluation, but the workhorse for randomized
//! cross-checking (small dense graphs exercise every branch of the
//! enumeration kernels) and for extra workloads.

use crate::probs::EdgeProbModel;
use rand::Rng;
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// `G(n, m)`: exactly `m` distinct edges sampled uniformly from all pairs.
///
/// # Panics
/// Panics if `m` exceeds `C(n, 2)`.
pub fn gnm<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    probs: EdgeProbModel,
    rng: &mut R,
) -> UncertainGraph {
    let max_m = n * n.saturating_sub(1) / 2;
    assert!(m <= max_m, "m = {m} exceeds C({n},2) = {max_m}");
    let mut b = GraphBuilder::with_capacity(n, m);
    if m == 0 {
        return b.build();
    }
    if m * 3 >= max_m {
        // Dense: enumerate all pairs and sample m of them (reservoir).
        let mut chosen: Vec<(VertexId, VertexId)> = Vec::with_capacity(m);
        let mut seen = 0usize;
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                seen += 1;
                if chosen.len() < m {
                    chosen.push((u, v));
                } else {
                    let j = rng.gen_range(0..seen);
                    if j < m {
                        chosen[j] = (u, v);
                    }
                }
            }
        }
        for (u, v) in chosen {
            b.add_edge(u, v, probs.sample(rng)).expect("valid pair");
        }
    } else {
        // Sparse: rejection-sample distinct pairs.
        let mut used = std::collections::HashSet::with_capacity(m * 2);
        while used.len() < m {
            let u = rng.gen_range(0..n as VertexId);
            let v = rng.gen_range(0..n as VertexId);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if used.insert(key) {
                b.add_edge(key.0, key.1, probs.sample(rng))
                    .expect("valid pair");
            }
        }
    }
    b.build()
}

/// `G(n, p)`: each of the `C(n, 2)` pairs independently with probability
/// `p_edge`. Quadratic scan — intended for small test graphs.
pub fn gnp<R: Rng + ?Sized>(
    n: usize,
    p_edge: f64,
    probs: EdgeProbModel,
    rng: &mut R,
) -> UncertainGraph {
    assert!(
        (0.0..=1.0).contains(&p_edge),
        "p_edge must be a probability"
    );
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen::<f64>() < p_edge {
                b.add_edge(u, v, probs.sample(rng)).expect("valid pair");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn gnm_exact_edge_count_sparse_and_dense() {
        let mut rng = rng_from_seed(1);
        for (n, m) in [(30, 10), (30, 400), (30, 435), (30, 0), (10, 45)] {
            let g = gnm(n, m, EdgeProbModel::Fixed(0.5), &mut rng);
            assert_eq!(g.num_edges(), m, "n={n}, m={m}");
            assert_eq!(g.num_vertices(), n);
            g.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn gnm_too_many_edges_panics() {
        let mut rng = rng_from_seed(1);
        let _ = gnm(5, 11, EdgeProbModel::Fixed(0.5), &mut rng);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = rng_from_seed(2);
        let empty = gnp(20, 0.0, EdgeProbModel::Fixed(0.5), &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = gnp(20, 1.0, EdgeProbModel::Fixed(0.5), &mut rng);
        assert_eq!(full.num_edges(), 190);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = rng_from_seed(3);
        let g = gnp(100, 0.3, EdgeProbModel::Fixed(0.5), &mut rng);
        let expected = 0.3 * 4950.0;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 200.0,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gnm(
            40,
            100,
            EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 },
            &mut rng_from_seed(5),
        );
        let b = gnm(
            40,
            100,
            EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 },
            &mut rng_from_seed(5),
        );
        assert_eq!(a, b);
    }
}
