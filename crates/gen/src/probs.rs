//! Edge-probability models.
//!
//! The paper constructs uncertain graphs three ways (Section 5):
//!
//! * real probabilities (the STRING-scored PPI network),
//! * *semi-synthetic*: a real topology with probabilities "assigned
//!   uniformly at random" — [`EdgeProbModel::Uniform`];
//! * *derived*: DBLP co-authorship strength `p = 1 − e^{−c/10}` where `c`
//!   is the number of co-authored papers — [`coauthorship_prob`].
//!
//! Sampled values are clamped into `(0, 1]` (a probability of exactly zero
//! would contradict the model `p : E → (0, 1]`; the chance of drawing the
//! endpoint is zero anyway, the clamp just makes the invariant total).

use rand::Rng;

/// Smallest probability the models will emit (keeps values inside `(0,1]`).
pub const MIN_PROB: f64 = 1e-12;

/// A distribution over edge probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeProbModel {
    /// Uniform on `(lo, hi]` — the paper's semi-synthetic assignment is
    /// `Uniform { lo: 0.0, hi: 1.0 }`.
    Uniform {
        /// Exclusive lower bound (≥ 0).
        lo: f64,
        /// Inclusive upper bound (≤ 1).
        hi: f64,
    },
    /// Every edge gets the same probability.
    Fixed(f64),
    /// STRING-database-like confidence scores: a mixture of a broad
    /// low-confidence mass and a high-confidence mode, mimicking the
    /// bimodal score histograms of interaction databases. Used by the
    /// Fruit-Fly PPI stand-in.
    StringLike,
}

impl EdgeProbModel {
    /// Draw one probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match *self {
            EdgeProbModel::Uniform { lo, hi } => {
                assert!(
                    (0.0..=1.0).contains(&lo) && lo < hi && hi <= 1.0,
                    "bad uniform range"
                );
                // gen::<f64>() is [0, 1); flip to (0, 1] so lo itself is excluded.
                lo + (hi - lo) * (1.0 - rng.gen::<f64>())
            }
            EdgeProbModel::Fixed(p) => p,
            EdgeProbModel::StringLike => {
                if rng.gen::<f64>() < 0.35 {
                    // High-confidence mode concentrated near 0.9.
                    0.75 + 0.25 * (1.0 - rng.gen::<f64>())
                } else {
                    // Broad low/medium confidence tail in (0.15, 0.75].
                    0.15 + 0.60 * (1.0 - rng.gen::<f64>())
                }
            }
        };
        v.clamp(MIN_PROB, 1.0)
    }
}

/// DBLP co-authorship strength: `1 − e^{−c/10}` for `c` co-authored papers
/// (the exact formula the paper quotes for the DBLP dataset).
pub fn coauthorship_prob(papers: u32) -> f64 {
    let p = 1.0 - (-(papers as f64) / 10.0).exp();
    p.clamp(MIN_PROB, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = rng_from_seed(1);
        let m = EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 };
        for _ in 0..10_000 {
            let p = m.sample(&mut rng);
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn uniform_subrange() {
        let mut rng = rng_from_seed(2);
        let m = EdgeProbModel::Uniform { lo: 0.4, hi: 0.6 };
        for _ in 0..1_000 {
            let p = m.sample(&mut rng);
            assert!(p > 0.4 && p <= 0.6);
        }
    }

    #[test]
    #[should_panic]
    fn uniform_bad_range_panics() {
        let mut rng = rng_from_seed(3);
        let _ = EdgeProbModel::Uniform { lo: 0.9, hi: 0.5 }.sample(&mut rng);
    }

    #[test]
    fn fixed_is_fixed() {
        let mut rng = rng_from_seed(4);
        assert_eq!(EdgeProbModel::Fixed(0.7).sample(&mut rng), 0.7);
    }

    #[test]
    fn string_like_in_unit_interval_and_bimodal() {
        let mut rng = rng_from_seed(5);
        let m = EdgeProbModel::StringLike;
        let mut high = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let p = m.sample(&mut rng);
            assert!(p > 0.0 && p <= 1.0);
            if p > 0.75 {
                high += 1;
            }
        }
        let frac = high as f64 / N as f64;
        assert!((frac - 0.35).abs() < 0.02, "high-confidence mass {frac}");
    }

    #[test]
    fn coauthorship_formula_values() {
        assert!((coauthorship_prob(1) - (1.0 - (-0.1f64).exp())).abs() < 1e-12);
        assert!((coauthorship_prob(10) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(coauthorship_prob(0) >= MIN_PROB); // clamped, not zero
        assert!(coauthorship_prob(1000) <= 1.0);
        // Monotone in the number of papers.
        for c in 1..50 {
            assert!(coauthorship_prob(c + 1) > coauthorship_prob(c));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = rng_from_seed(6);
        let m = EdgeProbModel::Uniform { lo: 0.0, hi: 1.0 };
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
